//! Uniform storage front-end: one simulated SSD or a RAIS array.

use edc_flash::ssd::Completion;
use edc_flash::{
    ArrayError, ArrayIntegrityError, DeviceStats, FaultStats, FtlStats, HddDevice, HddTiming,
    IoKind, RaisArray, RaisLevel, SsdConfig, SsdDevice, WearStats,
};

/// The storage backing a scheme: the paper evaluates a single SSD
/// (Fig. 10) and a five-device RAIS5 (Fig. 11); an HDD backend covers the
/// paper's §VI future-work experiments on disk-based systems.
// A handful of Storage values exist per simulation; the variant size gap
// (SsdDevice vs HddDevice) is not worth a Box indirection on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Storage {
    /// One simulated SSD.
    Single(SsdDevice),
    /// A RAIS array.
    Array(RaisArray),
    /// One simulated hard disk (future work #2).
    Hdd(HddDevice),
}

impl Storage {
    /// A single device with `cfg`.
    pub fn single(cfg: SsdConfig) -> Self {
        Storage::Single(SsdDevice::new(cfg))
    }

    /// A RAIS array of `n` devices with `cfg` each and 64 KiB chunks.
    /// Shape problems (member count, chunk alignment, member config) come
    /// back as typed [`ArrayError`]s.
    pub fn rais(level: RaisLevel, n: usize, cfg: SsdConfig) -> Result<Self, ArrayError> {
        Ok(Storage::Array(RaisArray::new(level, n, cfg, 64 * 1024)?))
    }

    /// A single hard disk of `logical_bytes` capacity.
    pub fn hdd(logical_bytes: u64, timing: HddTiming) -> Self {
        Storage::Hdd(HddDevice::new(logical_bytes, timing))
    }

    /// Exported logical capacity in bytes.
    pub fn logical_bytes(&self) -> u64 {
        match self {
            Storage::Single(d) => d.logical_bytes(),
            Storage::Array(a) => a.logical_bytes(),
            Storage::Hdd(d) => d.logical_bytes(),
        }
    }

    /// Submit one I/O; see [`SsdDevice::submit`].
    pub fn submit(&mut self, now_ns: u64, kind: IoKind, offset: u64, len: u32) -> Completion {
        match self {
            Storage::Single(d) => d.submit(now_ns, kind, offset, len),
            Storage::Array(a) => a.submit(now_ns, kind, offset, len),
            Storage::Hdd(d) => d.submit(now_ns, kind, offset, len),
        }
    }

    /// Aggregate host statistics.
    pub fn stats(&self) -> DeviceStats {
        match self {
            Storage::Single(d) => d.stats(),
            Storage::Array(a) => a.stats(),
            Storage::Hdd(d) => d.stats(),
        }
    }

    /// Aggregate FTL statistics (an HDD has no FTL: all zeroes).
    pub fn ftl_stats(&self) -> FtlStats {
        match self {
            Storage::Single(d) => d.ftl_stats(),
            Storage::Array(a) => a.ftl_stats(),
            Storage::Hdd(_) => FtlStats::default(),
        }
    }

    /// Wear statistics across all member flash devices (empty for HDDs).
    pub fn wear_stats(&self) -> WearStats {
        match self {
            Storage::Single(d) => WearStats::from_counts(d.erase_counts()),
            Storage::Array(a) => {
                let counts: Vec<u32> = (0..a.width())
                    .flat_map(|i| a.device(i).erase_counts().to_vec())
                    .collect();
                WearStats::from_counts(&counts)
            }
            Storage::Hdd(_) => WearStats::from_counts(&[]),
        }
    }

    /// TRIM a byte range, where the backing device supports it (single
    /// SSDs; arrays and HDDs ignore the hint). Returns the completion when
    /// a command was actually issued.
    pub fn trim(&mut self, now_ns: u64, offset: u64, len: u32) -> Option<Completion> {
        match self {
            Storage::Single(d) => Some(d.trim(now_ns, offset, len)),
            Storage::Array(_) | Storage::Hdd(_) => None,
        }
    }

    /// Precondition the backing device(s); see [`SsdDevice::precondition`].
    /// No-op for HDDs (no FTL state to warm).
    pub fn precondition(&mut self, fraction: f64) {
        match self {
            Storage::Single(d) => d.precondition(fraction),
            Storage::Array(a) => a.precondition(fraction),
            Storage::Hdd(_) => {}
        }
    }

    /// Injected-fault counters: a single device's own, an array's summed
    /// over every member (per-member decorrelated plans included), zero
    /// for HDDs (no fault model).
    pub fn fault_stats(&self) -> FaultStats {
        match self {
            Storage::Single(d) => d.fault_stats(),
            Storage::Array(a) => a.fault_stats(),
            Storage::Hdd(_) => FaultStats::default(),
        }
    }

    /// Check backing-store integrity: the single device's FTL invariants,
    /// or every array member's FTL plus the array's chunk/parity metadata.
    /// HDDs have no FTL and always pass.
    pub fn verify_integrity(&self) -> Result<(), ArrayIntegrityError> {
        match self {
            Storage::Single(d) => d
                .verify_integrity()
                .map_err(|error| ArrayIntegrityError::Member { member: 0, error }),
            Storage::Array(a) => a.verify_integrity(),
            Storage::Hdd(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SsdConfig {
        SsdConfig {
            logical_bytes: 16 << 20,
            overprovision: 0.25,
            sectors_per_block: 64,
            gc_low_watermark: 3,
            ..SsdConfig::default()
        }
    }

    #[test]
    fn single_and_array_share_interface() {
        let mut s = Storage::single(cfg());
        let mut a = Storage::rais(RaisLevel::Rais5, 5, cfg()).unwrap();
        for st in [&mut s, &mut a] {
            let c = st.submit(0, IoKind::Write, 0, 4096);
            assert!(c.finish_ns > 0);
            assert!(st.stats().writes >= 1);
            assert!(st.logical_bytes() > 0);
        }
        assert_eq!(a.logical_bytes(), 4 * s.logical_bytes());
    }

    #[test]
    fn hdd_backend_shares_interface() {
        let mut h = Storage::hdd(1 << 30, HddTiming::default());
        let c = h.submit(0, IoKind::Write, 0, 4096);
        assert!(c.finish_ns > 0);
        assert_eq!(h.stats().writes, 1);
        assert_eq!(h.ftl_stats(), FtlStats::default());
        assert_eq!(h.wear_stats().total_erases, 0);
        h.precondition(0.9); // no-op, must not panic
    }

    #[test]
    fn wear_stats_aggregate_array_members() {
        let mut a = Storage::rais(RaisLevel::Rais0, 3, cfg()).unwrap();
        // Enough random overwrites to trigger GC somewhere.
        let mut x = 3u64;
        let mut now = 0;
        a.precondition(1.0);
        for _ in 0..30_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let off = (x % (a.logical_bytes() / 4096)) * 4096;
            let c = a.submit(now, IoKind::Write, off, 4096);
            now = c.finish_ns;
        }
        let w = a.wear_stats();
        assert!(w.blocks > 0);
        assert_eq!(w.total_erases, a.ftl_stats().erases);
    }

    #[test]
    fn rais_shape_errors_are_typed() {
        assert!(matches!(
            Storage::rais(RaisLevel::Rais5, 2, cfg()),
            Err(ArrayError::TooFewMembers { .. })
        ));
    }

    #[test]
    fn fault_and_integrity_thread_through_every_backend() {
        let s = Storage::single(cfg());
        assert_eq!(s.fault_stats(), FaultStats::default());
        s.verify_integrity().unwrap();
        let a = Storage::rais(RaisLevel::Rais5, 3, cfg()).unwrap();
        assert_eq!(a.fault_stats(), FaultStats::default());
        a.verify_integrity().unwrap();
        let h = Storage::hdd(1 << 30, HddTiming::default());
        assert_eq!(h.fault_stats(), FaultStats::default());
        h.verify_integrity().unwrap();
    }

    #[test]
    fn precondition_passes_through() {
        let mut s = Storage::single(cfg());
        s.precondition(0.5);
        // Preconditioning writes sectors but not host stats.
        assert_eq!(s.stats().writes, 0);
        assert!(s.ftl_stats().user_sectors_written > 0);
    }
}
