//! Energy accounting — the paper's §VI future work #3: "investigate EDC's
//! impact on system energy consumption, given its dichotomy of
//! compression/decompression that consumes additional energy and data
//! reduction that decreases data movement and thus energy consumption."
//!
//! The model charges: CPU energy for the (de)compression workers' busy
//! time, flash transfer energy per byte moved, erase energy per GC erase,
//! and device background power over the replay horizon. All inputs come
//! from the deterministic replay statistics, so energy numbers are as
//! reproducible as the latency numbers.

use crate::replay::ReplayReport;

/// Energy-model coefficients. Defaults approximate a 2010s Xeon core plus
/// an SLC SATA SSD (ballpark figures from device datasheets; the *shape* —
/// CPU vs data movement — is what the experiment compares).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Power of one busy compression core (W).
    pub cpu_active_w: f64,
    /// Flash read energy (nJ per byte transferred).
    pub read_nj_per_byte: f64,
    /// Flash program energy (nJ per byte written).
    pub write_nj_per_byte: f64,
    /// Erase energy per block (µJ).
    pub erase_uj: f64,
    /// Device background power while busy (controller + interface, W).
    pub device_active_w: f64,
    /// Device idle power (W).
    pub device_idle_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            cpu_active_w: 15.0,
            read_nj_per_byte: 0.6,
            write_nj_per_byte: 2.0,
            erase_uj: 260.0,
            device_active_w: 2.4,
            device_idle_w: 0.6,
        }
    }
}

/// Energy consumed over one replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Compression/decompression CPU energy (J).
    pub cpu_j: f64,
    /// Flash data-movement energy (J).
    pub transfer_j: f64,
    /// GC erase energy (J).
    pub erase_j: f64,
    /// Device busy/idle background energy (J).
    pub background_j: f64,
}

impl EnergyReport {
    /// Total energy (J).
    pub fn total_j(&self) -> f64 {
        self.cpu_j + self.transfer_j + self.erase_j + self.background_j
    }

    /// Energy per logical gigabyte moved (J/GB); `logical_bytes` is the
    /// host-visible traffic (reads + writes before compression).
    pub fn j_per_gb(&self, logical_bytes: u64) -> f64 {
        if logical_bytes == 0 {
            return 0.0;
        }
        self.total_j() / (logical_bytes as f64 / 1e9)
    }
}

impl EnergyModel {
    /// Assess the energy of a finished replay. `duration_ns` is the replay
    /// horizon (for background power).
    pub fn assess(&self, report: &ReplayReport, duration_ns: u64) -> EnergyReport {
        let cpu_j = report.cpu_busy_ns as f64 / 1e9 * self.cpu_active_w;
        let transfer_j = (report.device.bytes_read as f64 * self.read_nj_per_byte
            + report.device.bytes_written as f64 * self.write_nj_per_byte
            // GC migrations move data internally too (1 KiB sectors).
            + report.ftl.migrated_sectors as f64
                * 1024.0
                * (self.read_nj_per_byte + self.write_nj_per_byte))
            / 1e9;
        let erase_j = report.ftl.erases as f64 * self.erase_uj / 1e6;
        let busy_s = (report.device.busy_ns.min(duration_ns)) as f64 / 1e9;
        let idle_s = (duration_ns as f64 / 1e9 - busy_s).max(0.0);
        let background_j = busy_s * self.device_active_w + idle_s * self.device_idle_w;
        EnergyReport { cpu_j, transfer_j, erase_j, background_j }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LatencySummary;
    use crate::replay::SpaceReport;
    use edc_flash::{DeviceStats, FtlStats, WearStats};

    fn report(bytes_written: u64, erases: u64, cpu_busy_ns: u64, busy_ns: u64) -> ReplayReport {
        ReplayReport {
            scheme: "x".into(),
            trace: "y".into(),
            reads: LatencySummary::default(),
            writes: LatencySummary::default(),
            overall: LatencySummary::default(),
            space: SpaceReport { logical_bytes: bytes_written, physical_bytes: bytes_written },
            device: DeviceStats { bytes_written, busy_ns, ..DeviceStats::default() },
            ftl: FtlStats { erases, ..FtlStats::default() },
            wear: WearStats::from_counts(&[]),
            cpu_busy_ns,
            timeline: Vec::new(),
        }
    }

    #[test]
    fn component_accounting() {
        let m = EnergyModel::default();
        let r = report(1_000_000_000, 100, 2_000_000_000, 1_000_000_000);
        let e = m.assess(&r, 10_000_000_000);
        // CPU: 2 s × 15 W = 30 J.
        assert!((e.cpu_j - 30.0).abs() < 1e-9);
        // Transfer: 1 GB × 2 nJ/B = 2 J.
        assert!((e.transfer_j - 2.0).abs() < 1e-9);
        // Erase: 100 × 260 µJ = 0.026 J.
        assert!((e.erase_j - 0.026).abs() < 1e-12);
        // Background: 1 s busy × 2.4 + 9 s idle × 0.6 = 7.8 J.
        assert!((e.background_j - 7.8).abs() < 1e-9);
        assert!((e.total_j() - 39.826).abs() < 1e-9);
    }

    #[test]
    fn j_per_gb_normalization() {
        let e = EnergyReport { cpu_j: 5.0, transfer_j: 3.0, erase_j: 1.0, background_j: 1.0 };
        assert!((e.j_per_gb(2_000_000_000) - 5.0).abs() < 1e-12);
        assert_eq!(e.j_per_gb(0), 0.0);
    }

    #[test]
    fn less_data_written_costs_less_transfer_energy() {
        let m = EnergyModel::default();
        let full = m.assess(&report(1_000_000_000, 50, 0, 0), 1_000_000_000);
        let half = m.assess(&report(500_000_000, 25, 0, 0), 1_000_000_000);
        assert!(half.transfer_j < full.transfer_j);
        assert!(half.erase_j < full.erase_j);
    }

    #[test]
    fn compression_cpu_energy_can_outweigh_savings() {
        // The dichotomy the paper calls out: heavy CPU (Bzip2-style) can
        // cost more energy than the data-movement it saves.
        let m = EnergyModel::default();
        let native = m.assess(&report(1_000_000_000, 100, 0, 0), 1_000_000_000);
        let heavy = m.assess(
            &report(500_000_000, 50, 120_000_000_000, 0), // 120 s of CPU
            1_000_000_000,
        );
        assert!(heavy.total_j() > native.total_j());
    }

    #[test]
    fn busy_time_clamped_to_duration() {
        let m = EnergyModel::default();
        // Device busy longer than the horizon (queue drained after the
        // last arrival): background energy must not go negative.
        let e = m.assess(&report(0, 0, 0, 50_000_000_000), 1_000_000_000);
        assert!(e.background_j > 0.0);
        assert!((e.background_j - 2.4).abs() < 1e-9);
    }
}
