//! Trace replay: drive a storage scheme with a trace and account latency.
//!
//! The replay driver pops arrival events from the [`EventQueue`], hands
//! each request to the scheme, and collects the completions the scheme
//! reports. A scheme may complete a request immediately (Native, fixed
//! compression) or defer it (EDC's Sequentiality Detector holds contiguous
//! writes until the merge buffer flushes), which is why completions flow
//! back as a list rather than a single return value.

use crate::event::EventQueue;
use crate::metrics::{LatencyRecorder, LatencySummary};
use crate::storage::Storage;
use edc_flash::{DeviceStats, FtlStats, WearStats};
use edc_trace::{OpType, Request, Trace};

/// One finished I/O as reported by a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedIo {
    /// Operation type of the original request.
    pub op: OpType,
    /// When the request arrived.
    pub arrival_ns: u64,
    /// When it completed (≥ arrival).
    pub completion_ns: u64,
}

impl CompletedIo {
    /// Response time of this I/O.
    pub fn latency_ns(&self) -> u64 {
        self.completion_ns - self.arrival_ns
    }
}

/// Space accounting for the compression-ratio measure (paper Fig. 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceReport {
    /// User bytes written by the host (pre-compression).
    pub logical_bytes: u64,
    /// Bytes of flash space actually allocated (post-compression, after
    /// EDC's quantized allocation).
    pub physical_bytes: u64,
}

impl SpaceReport {
    /// The paper's compression ratio: original size / stored size
    /// (≥ 1 is a saving; Native is exactly 1).
    pub fn compression_ratio(&self) -> f64 {
        if self.physical_bytes == 0 {
            return 1.0;
        }
        self.logical_bytes as f64 / self.physical_bytes as f64
    }

    /// Space saving fraction: 1 − stored/original.
    pub fn space_saving(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        1.0 - self.physical_bytes as f64 / self.logical_bytes as f64
    }
}

/// A storage scheme under evaluation: Native, a fixed-compression scheme,
/// or EDC (implemented in `edc-core`).
pub trait StorageScheme {
    /// Scheme display name ("Native", "Lzf", "Gzip", "Bzip2", "EDC").
    fn name(&self) -> String;

    /// Handle one arriving request; push any completions (of this or
    /// earlier requests) into `out`.
    fn on_request(&mut self, req: &Request, out: &mut Vec<CompletedIo>);

    /// End of trace: flush buffers and report remaining completions.
    fn finalize(&mut self, out: &mut Vec<CompletedIo>);

    /// The storage backing this scheme.
    fn storage(&self) -> &Storage;

    /// Space accounting so far.
    fn space(&self) -> SpaceReport;

    /// Total (de)compression CPU time consumed so far (ns). Schemes
    /// without a compression engine report 0.
    fn cpu_busy_ns(&self) -> u64 {
        0
    }
}

/// One second of the latency timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelinePoint {
    /// Bucket start (seconds from trace start, by arrival time).
    pub t_s: f64,
    /// Requests arriving in this second.
    pub count: u64,
    /// Mean response time of those requests (ms).
    pub mean_ms: f64,
}

/// The outcome of replaying one trace under one scheme.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Scheme name.
    pub scheme: String,
    /// Trace name.
    pub trace: String,
    /// Read-latency summary.
    pub reads: LatencySummary,
    /// Write-latency summary.
    pub writes: LatencySummary,
    /// All-request latency summary (the paper's "average response time").
    pub overall: LatencySummary,
    /// Space accounting.
    pub space: SpaceReport,
    /// Device host-level statistics.
    pub device: DeviceStats,
    /// FTL statistics (GC, erases, write amplification).
    pub ftl: FtlStats,
    /// Flash wear distribution (endurance analysis; empty for HDDs).
    pub wear: WearStats,
    /// Compression-engine CPU busy time (ns) — energy-model input.
    pub cpu_busy_ns: u64,
    /// Per-second latency timeline (queue build-up during bursts).
    pub timeline: Vec<TimelinePoint>,
}

impl ReplayReport {
    /// Mean response time in milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        self.overall.mean_ms()
    }

    /// The composite benefit metric of the paper's Fig. 9:
    /// compression-ratio divided by response-time (higher is better).
    pub fn composite(&self) -> f64 {
        let ms = self.mean_response_ms();
        if ms <= 0.0 {
            return 0.0;
        }
        self.space.compression_ratio() / ms
    }

    /// Device utilization over a horizon: fraction of time the device was
    /// busy (can exceed 1.0 for multi-device arrays, whose busy times sum).
    pub fn device_utilization(&self, duration_ns: u64) -> f64 {
        if duration_ns == 0 {
            return 0.0;
        }
        self.device.busy_ns as f64 / duration_ns as f64
    }

    /// Compression-engine utilization over a horizon, per worker.
    pub fn cpu_utilization(&self, duration_ns: u64, workers: usize) -> f64 {
        if duration_ns == 0 || workers == 0 {
            return 0.0;
        }
        self.cpu_busy_ns as f64 / duration_ns as f64 / workers as f64
    }
}

/// Replay `trace` against `scheme` and summarize.
///
/// # Panics
/// Panics if a scheme reports a completion earlier than its arrival
/// (causality violation — always a scheme bug).
pub fn replay<S: StorageScheme>(trace: &Trace, scheme: &mut S) -> ReplayReport {
    let mut queue = EventQueue::new();
    for (i, req) in trace.requests.iter().enumerate() {
        queue.push(req.arrival_ns, i);
    }
    let mut reads = LatencyRecorder::new();
    let mut writes = LatencyRecorder::new();
    let mut overall = LatencyRecorder::new();
    // Per-second (sum_ns, count) buckets keyed by arrival time.
    let horizon_s = (trace.duration_ns() / 1_000_000_000 + 1) as usize;
    let mut buckets = vec![(0u128, 0u64); horizon_s.min(1_000_000)];
    let mut completions = Vec::with_capacity(16);
    let mut account = |c: &CompletedIo| {
        assert!(
            c.completion_ns >= c.arrival_ns,
            "scheme reported completion before arrival"
        );
        let l = c.latency_ns();
        overall.record(l);
        match c.op {
            OpType::Read => reads.record(l),
            OpType::Write => writes.record(l),
        }
        let b = (c.arrival_ns / 1_000_000_000) as usize;
        if let Some(slot) = buckets.get_mut(b) {
            slot.0 += u128::from(l);
            slot.1 += 1;
        }
    };
    while let Some((_, idx)) = queue.pop() {
        completions.clear();
        scheme.on_request(&trace.requests[idx], &mut completions);
        for c in &completions {
            account(c);
        }
    }
    completions.clear();
    scheme.finalize(&mut completions);
    for c in &completions {
        account(c);
    }
    let timeline = buckets
        .iter()
        .enumerate()
        .map(|(i, &(sum, count))| TimelinePoint {
            t_s: i as f64,
            count,
            mean_ms: if count == 0 { 0.0 } else { sum as f64 / count as f64 / 1e6 },
        })
        .collect();
    ReplayReport {
        scheme: scheme.name(),
        trace: trace.name.clone(),
        reads: reads.summary(),
        writes: writes.summary(),
        overall: overall.summary(),
        space: scheme.space(),
        device: scheme.storage().stats(),
        ftl: scheme.storage().ftl_stats(),
        wear: scheme.storage().wear_stats(),
        cpu_busy_ns: scheme.cpu_busy_ns(),
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_flash::{IoKind, SsdConfig};

    /// Minimal pass-through scheme used to exercise the driver.
    struct Passthrough {
        storage: Storage,
        logical: u64,
    }

    impl Passthrough {
        fn new() -> Self {
            let cfg = SsdConfig {
                logical_bytes: 16 << 20,
                overprovision: 0.25,
                sectors_per_block: 64,
                gc_low_watermark: 3,
                ..SsdConfig::default()
            };
            Passthrough { storage: Storage::single(cfg), logical: 0 }
        }
    }

    impl StorageScheme for Passthrough {
        fn name(&self) -> String {
            "Passthrough".into()
        }

        fn on_request(&mut self, req: &Request, out: &mut Vec<CompletedIo>) {
            let kind = match req.op {
                OpType::Read => IoKind::Read,
                OpType::Write => IoKind::Write,
            };
            if req.op == OpType::Write {
                self.logical += u64::from(req.len);
            }
            let c = self.storage.submit(req.arrival_ns, kind, req.offset, req.len);
            out.push(CompletedIo {
                op: req.op,
                arrival_ns: req.arrival_ns,
                completion_ns: c.finish_ns,
            });
        }

        fn finalize(&mut self, _out: &mut Vec<CompletedIo>) {}

        fn storage(&self) -> &Storage {
            &self.storage
        }

        fn space(&self) -> SpaceReport {
            SpaceReport { logical_bytes: self.logical, physical_bytes: self.logical }
        }
    }

    fn mk(at_ms: u64, op: OpType, len: u32) -> Request {
        Request { arrival_ns: at_ms * 1_000_000, op, offset: (at_ms % 64) * 8192, len }
    }

    #[test]
    fn replay_accounts_every_request() {
        let t = Trace::new(
            "t",
            vec![
                mk(0, OpType::Write, 4096),
                mk(1, OpType::Read, 4096),
                mk(2, OpType::Write, 8192),
            ],
        );
        let mut s = Passthrough::new();
        let report = replay(&t, &mut s);
        assert_eq!(report.overall.count, 3);
        assert_eq!(report.reads.count, 1);
        assert_eq!(report.writes.count, 2);
        assert_eq!(report.scheme, "Passthrough");
        assert_eq!(report.trace, "t");
    }

    #[test]
    fn latencies_are_positive_and_load_dependent() {
        // Back-to-back arrivals at t=0 queue behind each other.
        let reqs: Vec<Request> = (0..50)
            .map(|i| Request {
                arrival_ns: 0,
                op: OpType::Write,
                offset: i * 8192,
                len: 4096,
            })
            .collect();
        let t = Trace::new("burst", reqs);
        let mut s = Passthrough::new();
        let report = replay(&t, &mut s);
        assert!(report.overall.max_ns > report.overall.p50_ns);
        assert!(report.overall.mean_ns > 0);
        // 50 queued writes: the worst latency is ~50 service times.
        assert!(report.overall.max_ns > 40 * (report.overall.p50_ns / 25).max(1));
    }

    #[test]
    fn space_report_native_identity() {
        let t = Trace::new("t", vec![mk(0, OpType::Write, 4096)]);
        let mut s = Passthrough::new();
        let report = replay(&t, &mut s);
        assert_eq!(report.space.compression_ratio(), 1.0);
        assert_eq!(report.space.space_saving(), 0.0);
    }

    #[test]
    fn composite_metric_definition() {
        let report = ReplayReport {
            scheme: "x".into(),
            trace: "y".into(),
            reads: LatencySummary::default(),
            writes: LatencySummary::default(),
            overall: LatencySummary { mean_ns: 2_000_000, count: 1, ..Default::default() },
            space: SpaceReport { logical_bytes: 4096, physical_bytes: 2048 },
            device: DeviceStats::default(),
            ftl: FtlStats::default(),
            wear: edc_flash::WearStats::from_counts(&[]),
            cpu_busy_ns: 0,
            timeline: Vec::new(),
        };
        // ratio 2.0 / 2 ms = 1.0
        assert!((report.composite() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn timeline_buckets_by_arrival_second() {
        let reqs = vec![
            mk(100, OpType::Write, 4096),      // t = 0.1 s
            mk(200, OpType::Write, 4096),      // t = 0.2 s
            mk(1500, OpType::Read, 4096),      // t = 1.5 s
        ];
        let t = Trace::new("t", reqs);
        let mut s = Passthrough::new();
        let report = replay(&t, &mut s);
        assert_eq!(report.timeline.len(), 2);
        assert_eq!(report.timeline[0].count, 2);
        assert_eq!(report.timeline[1].count, 1);
        assert!(report.timeline[0].mean_ms > 0.0);
    }

    #[test]
    fn empty_trace_replay() {
        let t = Trace::new("empty", vec![]);
        let mut s = Passthrough::new();
        let report = replay(&t, &mut s);
        assert_eq!(report.overall.count, 0);
    }
}
