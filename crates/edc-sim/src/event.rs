//! Deterministic time-ordered event queue.
//!
//! A thin wrapper over a binary heap keyed by `(time, sequence)`: events at
//! equal times pop in insertion order, which keeps simulations that
//! enqueue simultaneous events fully deterministic across runs and
//! platforms.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of `T` events with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    time_ns: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time_ns == other.time_ns && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time_ns, self.seq).cmp(&(other.time_ns, other.seq))
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedule `payload` at absolute time `time_ns`.
    pub fn push(&mut self, time_ns: u64, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time_ns, seq, payload }));
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time_ns, e.payload))
    }

    /// Time of the next event without popping.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time_ns)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(10, 1);
        q.push(5, 0);
        assert_eq!(q.pop(), Some((5, 0)));
        q.push(7, 2);
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.pop(), Some((7, 2)));
        assert_eq!(q.pop(), Some((10, 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_contents() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(1, ());
        q.push(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
