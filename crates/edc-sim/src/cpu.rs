//! CPU worker pool for (de)compression jobs.
//!
//! A storage appliance runs its compression engine on a handful of cores.
//! [`CpuPool`] models them as `k` servers: a job ready at time `t` starts
//! on the worker that frees up first, at `max(t, worker_free)`. Jobs are
//! never preempted or split. With `k = 1` this degenerates to the single
//! in-line compression thread of the paper's prototype.

/// Pool of identical CPU workers.
///
/// ```
/// use edc_sim::CpuPool;
///
/// let mut pool = CpuPool::new(2);
/// let (_, f1) = pool.schedule(0, 100);
/// let (s2, _) = pool.schedule(0, 100); // second worker: parallel
/// let (s3, _) = pool.schedule(0, 100); // third job waits
/// assert_eq!((f1, s2, s3), (100, 0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct CpuPool {
    /// Per-worker earliest-free time (ns).
    free_at: Vec<u64>,
    /// Total busy nanoseconds across workers.
    busy_ns: u64,
}

impl CpuPool {
    /// Create a pool of `workers` cores (≥ 1).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        CpuPool { free_at: vec![0; workers], busy_ns: 0 }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.free_at.len()
    }

    /// Schedule a job that becomes ready at `ready_ns` and runs for
    /// `duration_ns`; returns `(start_ns, finish_ns)`.
    ///
    /// Zero-duration jobs return immediately without occupying a worker.
    pub fn schedule(&mut self, ready_ns: u64, duration_ns: u64) -> (u64, u64) {
        if duration_ns == 0 {
            return (ready_ns, ready_ns);
        }
        // Earliest-free worker; ties resolved by index for determinism.
        let (idx, &free) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .expect("pool is non-empty");
        let start = ready_ns.max(free);
        let finish = start + duration_ns;
        self.free_at[idx] = finish;
        self.busy_ns += duration_ns;
        (start, finish)
    }

    /// Earliest time any worker is free.
    pub fn earliest_free(&self) -> u64 {
        self.free_at.iter().copied().min().unwrap_or(0)
    }

    /// Total CPU-busy nanoseconds consumed so far.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_serializes() {
        let mut p = CpuPool::new(1);
        let (s1, f1) = p.schedule(0, 100);
        let (s2, f2) = p.schedule(0, 100);
        assert_eq!((s1, f1), (0, 100));
        assert_eq!((s2, f2), (100, 200));
    }

    #[test]
    fn two_workers_run_in_parallel() {
        let mut p = CpuPool::new(2);
        let (_, f1) = p.schedule(0, 100);
        let (s2, f2) = p.schedule(0, 100);
        assert_eq!(f1, 100);
        assert_eq!((s2, f2), (0, 100));
        // Third job waits for the earliest finisher.
        let (s3, _) = p.schedule(0, 50);
        assert_eq!(s3, 100);
    }

    #[test]
    fn idle_worker_starts_at_ready_time() {
        let mut p = CpuPool::new(1);
        let (s, f) = p.schedule(5000, 10);
        assert_eq!((s, f), (5000, 5010));
    }

    #[test]
    fn zero_duration_jobs_are_free() {
        let mut p = CpuPool::new(1);
        p.schedule(0, 100);
        let (s, f) = p.schedule(0, 0);
        assert_eq!((s, f), (0, 0)); // does not queue behind the busy worker
        assert_eq!(p.busy_ns(), 100);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut p = CpuPool::new(4);
        for i in 0..10 {
            p.schedule(i * 10, 7);
        }
        assert_eq!(p.busy_ns(), 70);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = CpuPool::new(0);
    }

    #[test]
    fn earliest_free_tracks_pool_state() {
        let mut p = CpuPool::new(2);
        assert_eq!(p.earliest_free(), 0);
        p.schedule(0, 100);
        assert_eq!(p.earliest_free(), 0); // second worker idle
        p.schedule(0, 300);
        assert_eq!(p.earliest_free(), 100);
    }
}
