//! Latency and throughput accounting.

/// Collects latency samples and summarizes them.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_ns: Vec<u64>,
    sorted: bool,
}

impl LatencyRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample.
    pub fn record(&mut self, latency_ns: u64) {
        self.samples_ns.push(latency_ns);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples_ns.len()
    }

    /// Summarize. Sorts internally on first call after new samples.
    pub fn summary(&mut self) -> LatencySummary {
        if self.samples_ns.is_empty() {
            return LatencySummary::default();
        }
        if !self.sorted {
            self.samples_ns.sort_unstable();
            self.sorted = true;
        }
        let n = self.samples_ns.len();
        let total: u128 = self.samples_ns.iter().map(|&s| u128::from(s)).sum();
        let pct = |p: f64| -> u64 {
            let idx = ((n as f64 - 1.0) * p).round() as usize;
            self.samples_ns[idx.min(n - 1)]
        };
        LatencySummary {
            count: n as u64,
            mean_ns: (total / n as u128) as u64,
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
            max_ns: self.samples_ns[n - 1],
        }
    }
}

/// Summary statistics over a set of latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean (ns).
    pub mean_ns: u64,
    /// Median (ns).
    pub p50_ns: u64,
    /// 95th percentile (ns).
    pub p95_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Maximum (ns).
    pub max_ns: u64,
}

impl LatencySummary {
    /// Mean in milliseconds (the unit the paper's figures use).
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.summary(), LatencySummary::default());
    }

    #[test]
    fn single_sample() {
        let mut r = LatencyRecorder::new();
        r.record(42);
        let s = r.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean_ns, 42);
        assert_eq!(s.p50_ns, 42);
        assert_eq!(s.p99_ns, 42);
        assert_eq!(s.max_ns, 42);
    }

    #[test]
    fn summary_of_uniform_range() {
        let mut r = LatencyRecorder::new();
        for v in 1..=100u64 {
            r.record(v);
        }
        let s = r.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.mean_ns, 50); // (5050 / 100) truncated
        assert_eq!(s.p50_ns, 51); // index round(99*0.5)=50 -> value 51
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
    }

    #[test]
    fn records_after_summary_are_included() {
        let mut r = LatencyRecorder::new();
        r.record(10);
        let _ = r.summary();
        r.record(1000);
        let s = r.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max_ns, 1000);
    }

    #[test]
    fn mean_ms_conversion() {
        let s = LatencySummary { mean_ns: 2_500_000, ..LatencySummary::default() };
        assert!((s.mean_ms() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        let vals = [5u64, 1, 9, 3, 7];
        for &v in &vals {
            a.record(v);
        }
        for &v in vals.iter().rev() {
            b.record(v);
        }
        assert_eq!(a.summary(), b.summary());
    }
}
