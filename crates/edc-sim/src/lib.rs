//! # edc-sim
//!
//! Discrete-event simulation engine for the EDC reproduction.
//!
//! The paper's evaluation replays block traces against a prototype running
//! on real SSDs; this crate replays the same traces against the simulated
//! devices of `edc-flash`, charging CPU time for (de)compression from the
//! deterministic cost model of `edc-compress`. Everything is exact-integer
//! nanosecond arithmetic with no wall-clock dependence, so every
//! experiment reproduces bit-for-bit.
//!
//! ## Pieces
//!
//! * [`event`] — a deterministic time-ordered event queue (FIFO
//!   tie-breaking), the engine's core.
//! * [`cpu`] — [`CpuPool`]: a pool of compression workers; jobs start on
//!   the earliest-free worker, modelling the multi-core compression engine
//!   of a storage appliance.
//! * [`storage`] — [`Storage`]: a uniform front over a single
//!   [`SsdDevice`](edc_flash::SsdDevice) or a [`RaisArray`](edc_flash::RaisArray)
//!   (the paper's Fig. 10 vs Fig. 11 platforms).
//! * [`metrics`] — latency/throughput accounting ([`LatencySummary`] etc.).
//! * [`replay`] — the trace-replay driver: feeds a
//!   [`replay::StorageScheme`] implementation (Native,
//!   fixed compression, EDC — all in `edc-core`) and produces a
//!   [`replay::ReplayReport`] with the measures the paper
//!   plots: average response time, compression ratio, and the composite
//!   ratio/time metric of Fig. 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod energy;
pub mod event;
pub mod metrics;
pub mod replay;
pub mod storage;

pub use cpu::CpuPool;
pub use energy::{EnergyModel, EnergyReport};
pub use event::EventQueue;
pub use metrics::{LatencyRecorder, LatencySummary};
pub use replay::{ReplayReport, SpaceReport, StorageScheme, TimelinePoint};
pub use storage::Storage;
