//! Property tests for the simulation engine: the event queue must behave
//! like a stable sort, the CPU pool like a work-conserving k-server.
//! Runs on the in-tree harness (`edc_datagen::proptest`).

use edc_datagen::proptest::{cases, vec_of};
use edc_sim::{CpuPool, EventQueue, LatencyRecorder};

/// EventQueue pops exactly the stable sort of its input.
#[test]
fn event_queue_is_stable_sort() {
    cases(96).run("event_queue_is_stable_sort", |rng| {
        let times = vec_of(rng, 0, 300, |r| r.below(1000));
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut expect: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        expect.sort_by_key(|&(t, i)| (t, i)); // stable by construction
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push(e);
        }
        assert_eq!(got, expect);
    });
}

/// CPU pool: jobs never start before ready, always run exactly their
/// duration, and the pool is work-conserving (total busy time equals
/// the sum of durations).
#[test]
fn cpu_pool_is_work_conserving() {
    cases(96).run("cpu_pool_is_work_conserving", |rng| {
        let workers = rng.range_usize(1, 6);
        let jobs = vec_of(rng, 1, 200, |r| (r.below(10_000), r.range_u64(1, 500)));
        let mut pool = CpuPool::new(workers);
        let mut total = 0u64;
        for &(ready, dur) in &jobs {
            let (start, finish) = pool.schedule(ready, dur);
            assert!(start >= ready);
            assert_eq!(finish - start, dur);
            total += dur;
        }
        assert_eq!(pool.busy_ns(), total);
    });
}

/// More workers never hurt: the makespan with k+1 workers is at most
/// the makespan with k workers for the same job sequence.
#[test]
fn more_workers_never_increase_makespan() {
    cases(96).run("more_workers_never_increase_makespan", |rng| {
        let jobs = vec_of(rng, 1, 100, |r| (r.below(5_000), r.range_u64(1, 300)));
        let makespan = |k: usize| -> u64 {
            let mut pool = CpuPool::new(k);
            jobs.iter().map(|&(r, d)| pool.schedule(r, d).1).max().unwrap_or(0)
        };
        let m1 = makespan(1);
        let m2 = makespan(2);
        let m4 = makespan(4);
        assert!(m2 <= m1);
        assert!(m4 <= m2);
    });
}

/// Latency summaries are order-invariant and internally consistent
/// (p50 ≤ p95 ≤ p99 ≤ max, mean within [min, max]).
#[test]
fn latency_summary_consistency() {
    cases(96).run("latency_summary_consistency", |rng| {
        let samples = vec_of(rng, 1, 500, |r| r.below(1_000_000));
        let mut rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record(s);
        }
        let sum = rec.summary();
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        assert_eq!(sum.count, samples.len() as u64);
        assert!(sum.p50_ns <= sum.p95_ns);
        assert!(sum.p95_ns <= sum.p99_ns);
        assert!(sum.p99_ns <= sum.max_ns);
        assert_eq!(sum.max_ns, max);
        assert!(sum.mean_ns >= min && sum.mean_ns <= max);
    });
}
