//! Minimized crashers from `edc-bench fuzz`, checked in as regression
//! fixtures.
//!
//! Each case is a crafted byte stream that, before the decoder-hardening
//! pass, panicked, overflowed an accumulator, or ballooned the output far
//! past `expected_len`. They must now fail with a *typed* error — and the
//! output buffer must never exceed the caller's declared size. Keep every
//! stream byte-exact: these bytes, not the property they illustrate, are
//! what reproduced the original crashes.

use edc_compress::{codec_by_id, CodecId, DecompressError};

/// Decode `stream` with `id`, asserting a typed error and a bounded buffer.
fn must_reject(id: CodecId, stream: &[u8], expected_len: usize) -> DecompressError {
    let codec = codec_by_id(id).expect("fixture names a real codec");
    let mut out = Vec::new();
    let err = codec
        .decompress_into(stream, expected_len, &mut out)
        .expect_err("crafted stream must be rejected");
    assert!(
        out.len() <= expected_len,
        "{id}: output grew to {} bytes against expected_len {expected_len}",
        out.len()
    );
    // The plain decompress path must agree.
    assert_eq!(codec.decompress(stream, expected_len).unwrap_err(), err);
    err
}

/// Lzf: a maximal long match (ctrl `111 OOOOO`, extension 255 → len 264)
/// at offset 1 after a single literal. The pre-hardening decoder copied
/// all 264 bytes (a ~264x amplification per 5 input bytes, compoundable
/// by repetition) before the final size check.
#[test]
fn lzf_long_match_amplification() {
    let stream = [0x00, b'a', 0b111_00000, 255, 0x00];
    let err = must_reject(CodecId::Lzf, &stream, 8);
    assert!(matches!(err, DecompressError::OutputOverflow { expected: 8 }));
}

/// Lzf: a full 32-byte literal run against a smaller expected length must
/// be rejected before the copy.
#[test]
fn lzf_literal_run_overflow() {
    let mut stream = vec![31u8];
    stream.extend_from_slice(&[0x5A; 32]);
    let err = must_reject(CodecId::Lzf, &stream, 16);
    assert!(matches!(err, DecompressError::OutputOverflow { expected: 16 }));
}

/// Lz4: 255-valued match-length extension bytes declare a multi-kilobyte
/// match at offset 1. Before hardening, each such sequence expanded the
/// output by ~64 KiB per 256 input bytes — unbounded amplification.
#[test]
fn lz4_length_extension_blowup() {
    let mut stream = vec![0x4F, b'a', b'b', b'c', b'd', 0x01, 0x00];
    stream.extend_from_slice(&[255; 255]);
    stream.push(0);
    let err = must_reject(CodecId::Lz4, &stream, 64);
    assert!(matches!(err, DecompressError::OutputOverflow { expected: 64 }));
}

/// Lz4: literal length promising more bytes than `expected_len`.
#[test]
fn lz4_literal_overflow() {
    let stream = [0x80, 1, 2, 3, 4, 5, 6, 7, 8];
    let err = must_reject(CodecId::Lz4, &stream, 4);
    assert!(matches!(err, DecompressError::OutputOverflow { expected: 4 }));
}

/// Bwt: ~64 consecutive RUNA/RUNB digits overflow the bijective-base-2
/// run accumulator (`run += weight; weight *= 2`) — a debug-build panic
/// and a release-build wrap before the zrle cap existed. The stream is
/// built with the real encoder so the Huffman preamble is valid, then the
/// digit string is forged through a raw re-encode of the symbol section.
#[test]
fn bwt_zrle_run_accumulator_overflow() {
    // A compressed block whose symbol stream is forged to hold a huge
    // digit string: encode a legitimate zero block, then decode must
    // reject a tampered length field claiming a larger block than the
    // digits can legally produce. A direct unit test of the overflow
    // lives in `rle::tests::huge_digit_string_does_not_overflow`; here we
    // pin the end-to-end behaviour: expected_len larger than any block
    // the stream encodes is an error, never a panic.
    let codec = codec_by_id(CodecId::Bwt).unwrap();
    let data = vec![0u8; 4096];
    let c = codec.compress(&data);
    // Decoding with a wildly larger expected_len forces the block loop to
    // keep reading past the real block — typed error, no panic.
    let err = codec.decompress(&c, 1 << 30).unwrap_err();
    let _ = err; // any typed error is acceptable; panicking is not
}

/// Deflate: a match may not overshoot `expected_len` even transiently
/// (the old decoder allowed up to 258 bytes of overshoot mid-match).
#[test]
fn deflate_match_overshoot() {
    let codec = codec_by_id(CodecId::Deflate).unwrap();
    let data: Vec<u8> = b"xyzxyzxyz".iter().copied().cycle().take(1024).collect();
    let c = codec.compress(&data);
    let mut out = Vec::new();
    let err = codec.decompress_into(&c, 10, &mut out).unwrap_err();
    assert!(matches!(err, DecompressError::OutputOverflow { expected: 10 }));
    assert!(out.len() <= 10, "transient overshoot: {} bytes", out.len());
}

/// Every codec, fed every fixture stream of every other codec, must fail
/// typed — cross-codec confusion (wrong tag in a corrupted mapping entry)
/// may not panic either.
#[test]
fn cross_codec_confusion_fails_typed() {
    let streams: Vec<Vec<u8>> = vec![
        vec![0x00, b'a', 0b111_00000, 255, 0x00],
        vec![0x4F, b'a', b'b', b'c', b'd', 0x01, 0x00, 255, 255, 0],
        vec![0x80, 1, 2, 3, 4, 5, 6, 7, 8],
        codec_by_id(CodecId::Bwt).unwrap().compress(&vec![0u8; 512]),
        codec_by_id(CodecId::Deflate).unwrap().compress(b"deflate stream"),
    ];
    for id in CodecId::ALL_CODECS {
        let codec = codec_by_id(id).unwrap();
        for s in &streams {
            for expected in [0usize, 1, 13, 512, 4096] {
                let mut out = Vec::new();
                let _ = codec.decompress_into(s, expected, &mut out);
                assert!(out.len() <= expected, "{id}: buffer exceeded expected_len");
            }
        }
    }
}
