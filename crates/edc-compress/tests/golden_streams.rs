//! Golden compressed-stream fixtures per codec.
//!
//! The `(length, checksum64)` pairs below were captured from the encoders
//! *before* the hot-path overhaul (reusable `CompressorState`, word-wide
//! match extension, hoisted Huffman setup). The optimized paths must keep
//! emitting bit-identical streams: any format or tokenization drift fails
//! this suite loudly.
//!
//! All three entry points are checked against the fixtures: `compress`,
//! `compress_into` (dirty output buffer), and `compress_with` (reused
//! state across every fixture, worst case for stale-table bugs).

use edc_compress::{checksum64, Bwt, Codec, CompressorState, Deflate, Lz4, Lzf};

/// `(codec, fixture, compressed_len, checksum64(stream, 0))`.
const GOLDEN: &[(&str, &str, usize, u64)] = &[
    ("lzf", "empty", 0, 0xb8cb396de59eab6a),
    ("lzf", "byte", 2, 0xdeb0535ba0b081ee),
    ("lzf", "fox", 43, 0xc33fa68be4825ae6),
    ("lzf", "text4k", 99, 0x90e8a355a88b1b12),
    ("lzf", "zeros4k", 50, 0xd81235f4fb2aa0d9),
    ("lzf", "rand4k", 4224, 0x3eedf2f95365bdaf),
    ("lzf", "mixed16k", 8816, 0xaa942d3d5501b996),
    ("lz4", "empty", 1, 0x8f197df95cc99a8b),
    ("lz4", "byte", 2, 0x6b1bd7a7fc2163fd),
    ("lz4", "fox", 44, 0x9e22215a8eaf72dd),
    ("lz4", "text4k", 64, 0xe3e50a13292c09c4),
    ("lz4", "zeros4k", 20, 0x9e28e30adcffc76b),
    ("lz4", "rand4k", 4114, 0x67cab295c20a2396),
    ("lz4", "mixed16k", 7973, 0x09bc34e8897cd49d),
    ("deflate6", "empty", 1, 0xb0c5c6d43506a5a7),
    ("deflate6", "byte", 2, 0x403c420b1f0bad08),
    ("deflate6", "fox", 43, 0x83a9ae614c45d766),
    ("deflate6", "text4k", 67, 0x510fae1aeb3e41a7),
    ("deflate6", "zeros4k", 16, 0x2731c244f7a736f3),
    ("deflate6", "rand4k", 4097, 0x9c41cfa00712d84a),
    ("deflate6", "mixed16k", 3990, 0x6ba70c5d1bd35eda),
    ("deflate1", "empty", 1, 0xb0c5c6d43506a5a7),
    ("deflate1", "byte", 2, 0x403c420b1f0bad08),
    ("deflate1", "fox", 43, 0x83a9ae614c45d766),
    ("deflate1", "text4k", 67, 0x510fae1aeb3e41a7),
    ("deflate1", "zeros4k", 16, 0x2731c244f7a736f3),
    ("deflate1", "rand4k", 4097, 0x9c41cfa00712d84a),
    ("deflate1", "mixed16k", 4166, 0x66bedf4bbf824ee8),
    ("deflate9", "empty", 1, 0xb0c5c6d43506a5a7),
    ("deflate9", "byte", 2, 0x403c420b1f0bad08),
    ("deflate9", "fox", 43, 0x83a9ae614c45d766),
    ("deflate9", "text4k", 67, 0x510fae1aeb3e41a7),
    ("deflate9", "zeros4k", 16, 0x2731c244f7a736f3),
    ("deflate9", "rand4k", 4097, 0x9c41cfa00712d84a),
    ("deflate9", "mixed16k", 3986, 0x9772884696bdbc32),
    ("bwt", "empty", 1, 0x8f197df95cc99a8b),
    ("bwt", "byte", 2, 0x403c420b1f0bad08),
    ("bwt", "fox", 44, 0x3610cdd9e9a2035c),
    ("bwt", "text4k", 103, 0x55011fd6db03b793),
    ("bwt", "zeros4k", 15, 0xadde6d1685527933),
    ("bwt", "rand4k", 4097, 0x9c41cfa00712d84a),
    ("bwt", "mixed16k", 3128, 0x61bb9ceca783d91a),
];

fn xorshift(mut x: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 56) as u8
        })
        .collect()
}

fn fixture(name: &str) -> Vec<u8> {
    match name {
        "empty" => Vec::new(),
        "byte" => b"A".to_vec(),
        "fox" => b"the quick brown fox jumps over the lazy dog".to_vec(),
        "text4k" => b"elastic data compression for flash storage "
            .iter()
            .copied()
            .cycle()
            .take(4096)
            .collect(),
        "zeros4k" => vec![0u8; 4096],
        "rand4k" => xorshift(0x9E37_79B9_7F4A_7C15, 4096),
        "mixed16k" => {
            let mut mixed = Vec::new();
            for i in 0..1000u32 {
                mixed.extend_from_slice(&i.to_le_bytes());
                mixed.extend_from_slice(&(u64::from(i) * 3).to_le_bytes());
                mixed.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
            }
            mixed
        }
        other => panic!("unknown fixture {other}"),
    }
}

fn codec(name: &str) -> Box<dyn Codec> {
    match name {
        "lzf" => Box::new(Lzf::new()),
        "lz4" => Box::new(Lz4::new()),
        "deflate6" => Box::new(Deflate::new()),
        "deflate1" => Box::new(Deflate::with_level(1)),
        "deflate9" => Box::new(Deflate::with_level(9)),
        "bwt" => Box::new(Bwt::new()),
        other => panic!("unknown codec {other}"),
    }
}

fn check(label: &str, cname: &str, fname: &str, stream: &[u8], len: usize, sum: u64) {
    assert_eq!(
        stream.len(),
        len,
        "{label}: {cname}/{fname} stream length drifted from golden fixture"
    );
    assert_eq!(
        checksum64(stream, 0),
        sum,
        "{label}: {cname}/{fname} stream bytes drifted from golden fixture"
    );
}

#[test]
fn compress_matches_golden_streams() {
    for &(cname, fname, len, sum) in GOLDEN {
        let stream = codec(cname).compress(&fixture(fname));
        check("compress", cname, fname, &stream, len, sum);
    }
}

#[test]
fn compress_into_matches_golden_streams() {
    // A dirty, reused output buffer must not leak into the stream.
    let mut out = vec![0xAA; 64];
    for &(cname, fname, len, sum) in GOLDEN {
        codec(cname).compress_into(&fixture(fname), &mut out);
        check("compress_into", cname, fname, &out, len, sum);
    }
}

#[test]
fn compress_with_reused_state_matches_golden_streams() {
    // One state shared across every codec's fixtures in sequence: stale
    // hash-table or chain entries from a previous input would surface as
    // a different tokenization here.
    let mut state = CompressorState::new();
    let mut out = Vec::new();
    for _round in 0..2 {
        for &(cname, fname, len, sum) in GOLDEN {
            codec(cname).compress_with(&mut state, &fixture(fname), &mut out);
            check("compress_with", cname, fname, &out, len, sum);
        }
    }
}

#[test]
fn golden_streams_round_trip() {
    for &(cname, fname, _, _) in GOLDEN {
        let codec = codec(cname);
        let input = fixture(fname);
        let stream = codec.compress(&input);
        let back = codec
            .decompress(&stream, input.len())
            .expect("golden stream must decompress");
        assert_eq!(back, input, "{cname}/{fname} round trip");
    }
}
