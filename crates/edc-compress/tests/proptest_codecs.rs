//! Property-based tests: every codec must round-trip every input, reject
//! mutated streams gracefully (error, never panic), and the BWT core must
//! invert exactly. Runs on the in-tree harness (`edc_datagen::proptest`).

use edc_compress::bwt::{bwt_forward, bwt_inverse};
use edc_compress::{baseline, codec_by_id, CodecId, CompressorState, Estimator};
use edc_datagen::proptest::{block, cases, vec_u8};

#[test]
fn lzf_round_trips() {
    cases(64).run("lzf_round_trips", |rng| {
        let data = block(rng, 4096);
        let codec = codec_by_id(CodecId::Lzf).unwrap();
        let c = codec.compress(&data);
        assert_eq!(codec.decompress(&c, data.len()).unwrap(), data);
    });
}

#[test]
fn lz4_round_trips() {
    cases(64).run("lz4_round_trips", |rng| {
        let data = block(rng, 4096);
        let codec = codec_by_id(CodecId::Lz4).unwrap();
        let c = codec.compress(&data);
        assert_eq!(codec.decompress(&c, data.len()).unwrap(), data);
    });
}

#[test]
fn deflate_round_trips() {
    cases(64).run("deflate_round_trips", |rng| {
        let data = block(rng, 4096);
        let codec = codec_by_id(CodecId::Deflate).unwrap();
        let c = codec.compress(&data);
        assert_eq!(codec.decompress(&c, data.len()).unwrap(), data);
    });
}

#[test]
fn bwt_round_trips() {
    cases(64).run("bwt_round_trips", |rng| {
        let data = block(rng, 4096);
        let codec = codec_by_id(CodecId::Bwt).unwrap();
        let c = codec.compress(&data);
        assert_eq!(codec.decompress(&c, data.len()).unwrap(), data);
    });
}

/// `compress_into` must produce byte-identical streams to `compress`,
/// including when the scratch buffer is dirty from a previous, different
/// input — the batched pipeline's bit-identical guarantee rests on this.
#[test]
fn compress_into_matches_compress() {
    cases(64).run("compress_into_matches_compress", |rng| {
        let data = block(rng, 4096);
        let other = block(rng, 4096);
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            let fresh = codec.compress(&data);
            let mut reused = Vec::new();
            codec.compress_into(&other, &mut reused); // dirty the buffer
            codec.compress_into(&data, &mut reused);
            assert_eq!(reused, fresh, "{id}: compress_into diverged from compress");
        }
    });
}

/// `compress_with` over one long-lived, shared `CompressorState` must stay
/// byte-identical to a fresh-state `compress`, no matter what the state
/// compressed before — including other codecs, since every codec keeps its
/// scratch inside the same state. This is the property the worker-pooled
/// write path depends on.
#[test]
fn compress_with_reused_state_matches_fresh() {
    cases(64).run("compress_with_reused_state_matches_fresh", |rng| {
        let data = block(rng, 4096);
        let dirt = block(rng, 4096);
        let mut state = CompressorState::new();
        let mut out = Vec::new();
        // Dirty every codec's scratch (tables, token buffers, Huffman
        // state) with an unrelated input before each real compression.
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            codec.compress_with(&mut state, &dirt, &mut out);
        }
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            let fresh = codec.compress(&data);
            codec.compress_with(&mut state, &data, &mut out);
            assert_eq!(out, fresh, "{id}: reused-state compress_with diverged from compress");
        }
    });
}

/// The refactored hot paths must emit exactly the streams the frozen
/// pre-refactor encoders produced: state pooling, word-wide match
/// extension and emit batching are performance changes only.
#[test]
fn streams_match_prerefactor_baseline() {
    cases(64).run("streams_match_prerefactor_baseline", |rng| {
        let data = block(rng, 4096);
        for id in [CodecId::Lzf, CodecId::Lz4, CodecId::Deflate] {
            let live = codec_by_id(id).unwrap().compress(&data);
            assert_eq!(live, baseline::compress(id, &data), "{id}: stream drifted from baseline");
        }
    });
}

#[test]
fn bwt_transform_inverts() {
    cases(64).run("bwt_transform_inverts", |rng| {
        let data = vec_u8(rng, 0, 2048);
        let (last, primary) = bwt_forward(&data);
        assert_eq!(last.len(), data.len());
        assert_eq!(bwt_inverse(&last, primary).unwrap(), data);
    });
}

/// Corrupted streams must produce an error or wrong-but-bounded output,
/// never a panic. (Codecs validate sizes and references, not checksums,
/// so a bit flip may decode to different bytes of the same length —
/// EDC's mapping layer owns integrity.)
#[test]
fn mutated_streams_never_panic() {
    cases(64).run("mutated_streams_never_panic", |rng| {
        let data = vec_u8(rng, 1, 1024);
        let flip_byte = rng.next_u64() as u8;
        let pos_seed = rng.next_u64() as usize;
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            let mut c = codec.compress(&data);
            let pos = pos_seed % c.len();
            c[pos] ^= flip_byte | 1; // guaranteed change
            // The hardened-decoder contract: Ok with exactly expected_len
            // bytes, or a typed Err with the buffer never past the cap.
            let mut out = Vec::new();
            match codec.decompress_into(&c, data.len(), &mut out) {
                Ok(()) => assert_eq!(out.len(), data.len(), "{id}: Ok with wrong length"),
                Err(_) => assert!(
                    out.len() <= data.len(),
                    "{id}: buffer grew to {} past expected {}",
                    out.len(),
                    data.len()
                ),
            }
        }
    });
}

#[test]
fn truncated_streams_never_panic() {
    cases(64).run("truncated_streams_never_panic", |rng| {
        let data = vec_u8(rng, 1, 1024);
        let keep_seed = rng.next_u64() as usize;
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            let c = codec.compress(&data);
            let keep = keep_seed % c.len();
            let mut out = Vec::new();
            match codec.decompress_into(&c[..keep], data.len(), &mut out) {
                Ok(()) => assert_eq!(out.len(), data.len(), "{id}: Ok with wrong length"),
                Err(_) => assert!(out.len() <= data.len(), "{id}: buffer past expected_len"),
            }
        }
    });
}

/// The full hardening contract over arbitrarily mutated inputs: random
/// expected lengths, heavier mutations (multi-byte flips, splices of pure
/// noise), and both entry points. `decompress`/`decompress_into` must
/// return `Err` or an exactly-sized `Ok`, never panic, and never let the
/// output exceed `expected_len`.
#[test]
fn arbitrary_mutations_uphold_output_cap() {
    cases(96).run("arbitrary_mutations_uphold_output_cap", |rng| {
        let data = block(rng, 2048);
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            let mut c = codec.compress(&data);
            // 1..=8 random byte mutations (set, not just flip).
            if !c.is_empty() {
                for _ in 0..rng.range_usize(1, 9) {
                    let pos = rng.below_usize(c.len());
                    c[pos] = rng.next_u64() as u8;
                }
            }
            // Sometimes splice pure noise into the middle.
            if rng.chance(0.3) {
                let splice = vec_u8(rng, 1, 64);
                let at = rng.below_usize(c.len() + 1);
                for (k, b) in splice.into_iter().enumerate() {
                    c.insert(at + k, b);
                }
            }
            // Random expected length, decorrelated from the data.
            let expected = rng.below_usize(4096);
            let mut out = Vec::new();
            match codec.decompress_into(&c, expected, &mut out) {
                Ok(()) => assert_eq!(out.len(), expected, "{id}: Ok with wrong length"),
                Err(_) => assert!(
                    out.len() <= expected,
                    "{id}: buffer grew to {} past expected {expected}",
                    out.len()
                ),
            }
        }
    });
}

/// The estimator's fraction must be a sane probe of the real Lzf ratio:
/// highly repetitive blocks estimate compressible, and the estimate is
/// always in a bounded range.
#[test]
fn estimator_fraction_bounded() {
    cases(64).run("estimator_fraction_bounded", |rng| {
        let data = block(rng, 4096);
        let est = Estimator::default().estimate(&data);
        assert!(est.fraction >= 0.0 && est.fraction <= 2.0);
    });
}

#[test]
fn estimator_flags_constant_blocks() {
    cases(64).run("estimator_flags_constant_blocks", |rng| {
        let byte = rng.next_u64() as u8;
        let len = rng.range_usize(64, 4096);
        let data = vec![byte; len];
        let est = Estimator::default().estimate(&data);
        assert!(est.fraction < 0.25, "constant block estimated {}", est.fraction);
    });
}

/// Compressed-size monotonicity sanity: appending an identical copy of
/// the data must not *more than double* (plus slack) the compressed size
/// for LZ codecs — the second copy is one big match.
#[test]
fn lz_codecs_exploit_self_similarity() {
    cases(64).run("lz_codecs_exploit_self_similarity", |rng| {
        let data = vec_u8(rng, 64, 512);
        let doubled: Vec<u8> = data.iter().chain(data.iter()).copied().collect();
        for id in [CodecId::Lzf, CodecId::Lz4, CodecId::Deflate] {
            let codec = codec_by_id(id).unwrap();
            let single = codec.compress(&data).len();
            let both = codec.compress(&doubled).len();
            assert!(both <= 2 * single + 64, "{id}: doubled {both} vs single {single}");
        }
    });
}

/// Huffman length headers and frames built from arbitrary bits must
/// never panic the decoders (error paths only).
#[test]
fn random_bits_never_panic_decoders() {
    cases(128).run("random_bits_never_panic_decoders", |rng| {
        let bits = vec_u8(rng, 0, 512);
        use edc_compress::bitio::BitReader;
        use edc_compress::huffman::read_lengths;
        let mut r = BitReader::new(&bits);
        let _ = read_lengths(&mut r, 286); // may Err; must not panic
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            let _ = codec.decompress(&bits, 4096); // may Err; must not panic
        }
        let _ = edc_compress::frame::decompress(&bits);
    });
}

/// Frames round-trip for arbitrary content and reject arbitrary
/// single-byte corruption anywhere in the frame.
#[test]
fn frames_round_trip_and_reject_corruption() {
    cases(128).run("frames_round_trip_and_reject_corruption", |rng| {
        let data = vec_u8(rng, 0, 2048);
        let pos_seed = rng.next_u64() as usize;
        let flip = rng.range_u64(1, 256) as u8;
        let f = edc_compress::frame::compress(CodecId::Lz4, &data);
        let (codec, got) = edc_compress::frame::decompress(&f).unwrap();
        assert_eq!(codec, CodecId::Lz4);
        assert_eq!(&got, &data);
        let mut bad = f.clone();
        let pos = pos_seed % bad.len();
        bad[pos] ^= flip;
        // Any corruption must surface as an error: the header checksum
        // catches flips that the size/reference validation would miss.
        assert!(edc_compress::frame::decompress(&bad).is_err(), "flip at {pos} undetected");
    });
}
