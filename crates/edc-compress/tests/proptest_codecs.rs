//! Property-based tests: every codec must round-trip every input, reject
//! mutated streams gracefully (error, never panic), and the BWT core must
//! invert exactly.

use edc_compress::bwt::{bwt_forward, bwt_inverse};
use edc_compress::{codec_by_id, CodecId, Estimator};
use proptest::prelude::*;

/// Inputs from a few distinct distributions: arbitrary bytes, small
/// alphabets (lots of matches), and run-heavy data.
fn block_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..4096),
        proptest::collection::vec(0u8..4, 0..4096),
        (proptest::collection::vec((any::<u8>(), 1usize..64), 0..64)).prop_map(|runs| {
            runs.into_iter().flat_map(|(b, n)| std::iter::repeat_n(b, n)).collect()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lzf_round_trips(data in block_strategy()) {
        let codec = codec_by_id(CodecId::Lzf).unwrap();
        let c = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn lz4_round_trips(data in block_strategy()) {
        let codec = codec_by_id(CodecId::Lz4).unwrap();
        let c = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn deflate_round_trips(data in block_strategy()) {
        let codec = codec_by_id(CodecId::Deflate).unwrap();
        let c = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn bwt_round_trips(data in block_strategy()) {
        let codec = codec_by_id(CodecId::Bwt).unwrap();
        let c = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn bwt_transform_inverts(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let (last, primary) = bwt_forward(&data);
        prop_assert_eq!(last.len(), data.len());
        prop_assert_eq!(bwt_inverse(&last, primary).unwrap(), data);
    }

    /// Corrupted streams must produce an error or wrong-but-bounded output,
    /// never a panic. (Codecs validate sizes and references, not checksums,
    /// so a bit flip may decode to different bytes of the same length —
    /// EDC's mapping layer owns integrity.)
    #[test]
    fn mutated_streams_never_panic(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        flip_byte in any::<u8>(),
        pos_seed in any::<usize>(),
    ) {
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            let mut c = codec.compress(&data);
            let pos = pos_seed % c.len();
            c[pos] ^= flip_byte | 1; // guaranteed change
            let _ = codec.decompress(&c, data.len()); // must not panic
        }
    }

    #[test]
    fn truncated_streams_never_panic(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        keep_seed in any::<usize>(),
    ) {
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            let c = codec.compress(&data);
            let keep = keep_seed % c.len();
            let _ = codec.decompress(&c[..keep], data.len()); // must not panic
        }
    }

    /// The estimator's fraction must be a sane probe of the real Lzf ratio:
    /// highly repetitive blocks estimate compressible, and the estimate is
    /// always in a bounded range.
    #[test]
    fn estimator_fraction_bounded(data in block_strategy()) {
        let est = Estimator::default().estimate(&data);
        prop_assert!(est.fraction >= 0.0 && est.fraction <= 2.0);
    }

    #[test]
    fn estimator_flags_constant_blocks(byte in any::<u8>(), len in 64usize..4096) {
        let data = vec![byte; len];
        let est = Estimator::default().estimate(&data);
        prop_assert!(est.fraction < 0.25, "constant block estimated {}", est.fraction);
    }

    /// Compressed-size monotonicity sanity: appending an identical copy of
    /// the data must not *more than double* (plus slack) the compressed size
    /// for LZ codecs — the second copy is one big match.
    #[test]
    fn lz_codecs_exploit_self_similarity(data in proptest::collection::vec(any::<u8>(), 64..512)) {
        let doubled: Vec<u8> = data.iter().chain(data.iter()).copied().collect();
        for id in [CodecId::Lzf, CodecId::Lz4, CodecId::Deflate] {
            let codec = codec_by_id(id).unwrap();
            let single = codec.compress(&data).len();
            let both = codec.compress(&doubled).len();
            prop_assert!(
                both <= 2 * single + 64,
                "{id}: doubled {both} vs single {single}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Huffman length headers and frames built from arbitrary bits must
    /// never panic the decoders (error paths only).
    #[test]
    fn random_bits_never_panic_decoders(bits in proptest::collection::vec(any::<u8>(), 0..512)) {
        use edc_compress::bitio::BitReader;
        use edc_compress::huffman::read_lengths;
        let mut r = BitReader::new(&bits);
        let _ = read_lengths(&mut r, 286); // may Err; must not panic
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            let _ = codec.decompress(&bits, 4096); // may Err; must not panic
        }
        let _ = edc_compress::frame::decompress(&bits);
    }

    /// Frames round-trip for arbitrary content and reject arbitrary
    /// single-byte corruption anywhere in the frame.
    #[test]
    fn frames_round_trip_and_reject_corruption(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let f = edc_compress::frame::compress(CodecId::Lz4, &data);
        let (codec, got) = edc_compress::frame::decompress(&f).unwrap();
        prop_assert_eq!(codec, CodecId::Lz4);
        prop_assert_eq!(&got, &data);
        let mut bad = f.clone();
        let pos = pos_seed % bad.len();
        bad[pos] ^= flip;
        // Any corruption must surface as an error or decode back to the
        // original (the flip may hit a don't-care padding bit — but the
        // header checksum makes that effectively impossible; assert Err
        // except when the flip landed in the unused high bits of the
        // version/tag fields never happens — so: must be Err).
        prop_assert!(edc_compress::frame::decompress(&bad).is_err(), "flip at {} undetected", pos);
    }
}
