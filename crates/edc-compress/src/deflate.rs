//! Gzip-class codec: LZ77 with hash-chain match finding and lazy
//! evaluation, followed by canonical Huffman coding of a DEFLATE-style
//! literal/length + distance alphabet.
//!
//! This is EDC's *mid-ladder* algorithm: a noticeably better ratio than the
//! fast LZ codecs (it spends effort on chained match search and entropy
//! coding) at several times their CPU cost — the same trade-off position
//! Gzip occupies in the paper's Fig. 2.
//!
//! ## Container format
//!
//! A single bit selects the block type:
//!
//! * `1` — *raw block*: the input bytes follow verbatim (fallback when
//!   entropy coding would expand the data).
//! * `0` — *Huffman block*: serialized code lengths for the literal/length
//!   alphabet (286 symbols) and the distance alphabet (30 symbols), then
//!   the token stream terminated by the end-of-block symbol (256).
//!
//! Length and distance symbols use DEFLATE's base/extra-bits tables, so the
//! match space is lengths 3..=258 over a 32 KiB window.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{build_code_lengths, read_lengths, write_lengths, Decoder, Encoder};
use crate::{Codec, CodecId, DecompressError};

const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const WINDOW_SIZE: usize = 32 * 1024;
const HASH_BITS: u32 = 15;
const NUM_LITLEN: usize = 286; // 0–255 literals, 256 EOB, 257–285 lengths
const NUM_DIST: usize = 30;
const EOB: usize = 256;

/// DEFLATE length-code table: `(base_length, extra_bits)` for codes 257..=285.
const LEN_TABLE: [(u16, u8); 29] = [
    (3, 0), (4, 0), (5, 0), (6, 0), (7, 0), (8, 0), (9, 0), (10, 0),
    (11, 1), (13, 1), (15, 1), (17, 1),
    (19, 2), (23, 2), (27, 2), (31, 2),
    (35, 3), (43, 3), (51, 3), (59, 3),
    (67, 4), (83, 4), (99, 4), (115, 4),
    (131, 5), (163, 5), (195, 5), (227, 5),
    (258, 0),
];

/// DEFLATE distance-code table: `(base_distance, extra_bits)` for codes 0..=29.
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0), (2, 0), (3, 0), (4, 0),
    (5, 1), (7, 1), (9, 2), (13, 2),
    (17, 3), (25, 3), (33, 4), (49, 4),
    (65, 5), (97, 5), (129, 6), (193, 6),
    (257, 7), (385, 7), (513, 8), (769, 8),
    (1025, 9), (1537, 9), (2049, 10), (3073, 10),
    (4097, 11), (6145, 11), (8193, 12), (12289, 12),
    (16385, 13), (24577, 13),
];

/// Map a match length (3..=258) to `(code_index, extra_value, extra_bits)`.
#[inline]
fn length_code(len: usize) -> (usize, u64, u8) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    // Binary search over the base table.
    let idx = LEN_TABLE.partition_point(|&(base, _)| usize::from(base) <= len) - 1;
    let (base, extra) = LEN_TABLE[idx];
    (257 + idx, (len - usize::from(base)) as u64, extra)
}

/// Map a distance (1..=32768) to `(code_index, extra_value, extra_bits)`.
#[inline]
fn dist_code(dist: usize) -> (usize, u64, u8) {
    debug_assert!((1..=WINDOW_SIZE).contains(&dist));
    let idx = DIST_TABLE.partition_point(|&(base, _)| usize::from(base) <= dist) - 1;
    let (base, extra) = DIST_TABLE[idx];
    (idx, (dist - usize::from(base)) as u64, extra)
}

/// One LZ77 token prior to entropy coding.
#[derive(Debug, Clone, Copy)]
enum Token {
    Literal(u8),
    Match { len: u16, dist: u16 },
}

/// Match-finder effort parameters, derived from a compression level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Effort {
    /// Chain probes per position; the knob that buys ratio with CPU time.
    max_chain: usize,
    /// Stop searching once a match at least this long is found.
    good_len: usize,
    /// One-step lazy matching (defer if the next position matches longer).
    lazy: bool,
}

/// Gzip-class codec. See the [module docs](self) for format details.
///
/// Like zlib, the encoder takes a *level* (1–9) trading CPU for ratio:
/// level 1 probes few chain candidates greedily, level 9 searches deep
/// chains with lazy evaluation. The stream format is identical across
/// levels — any level decompresses any stream.
#[derive(Debug, Clone, Copy)]
pub struct Deflate {
    effort: Effort,
}

impl Default for Deflate {
    fn default() -> Self {
        Self::new()
    }
}

impl Deflate {
    /// Default level (6): the zlib-like balance used by the EDC ladder.
    pub const fn new() -> Self {
        Deflate { effort: Effort { max_chain: 64, good_len: 96, lazy: true } }
    }

    /// Create the codec at an explicit compression level.
    ///
    /// # Panics
    /// Panics unless `1 <= level <= 9`.
    pub const fn with_level(level: u8) -> Self {
        let effort = match level {
            1 => Effort { max_chain: 4, good_len: 8, lazy: false },
            2 => Effort { max_chain: 8, good_len: 16, lazy: false },
            3 => Effort { max_chain: 16, good_len: 24, lazy: false },
            4 => Effort { max_chain: 24, good_len: 32, lazy: true },
            5 => Effort { max_chain: 40, good_len: 64, lazy: true },
            6 => Effort { max_chain: 64, good_len: 96, lazy: true },
            7 => Effort { max_chain: 96, good_len: 128, lazy: true },
            8 => Effort { max_chain: 160, good_len: 192, lazy: true },
            9 => Effort { max_chain: 256, good_len: MAX_MATCH, lazy: true },
            _ => panic!("deflate level must be 1..=9"),
        };
        Deflate { effort }
    }
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Hash-chain match finder over a 32 KiB sliding window.
struct ChainMatcher {
    head: Vec<u32>,
    prev: Vec<u32>,
    effort: Effort,
}

const NIL: u32 = u32::MAX;

impl ChainMatcher {
    fn new(effort: Effort) -> Self {
        ChainMatcher { head: vec![NIL; 1 << HASH_BITS], prev: vec![NIL; WINDOW_SIZE], effort }
    }

    #[inline]
    fn insert(&mut self, data: &[u8], i: usize) {
        let h = hash3(data, i);
        self.prev[i & (WINDOW_SIZE - 1)] = self.head[h];
        self.head[h] = i as u32;
    }

    /// Best `(len, dist)` match for position `i`, or `None`.
    fn find(&self, data: &[u8], i: usize, max_len: usize) -> Option<(usize, usize)> {
        if max_len < MIN_MATCH {
            return None;
        }
        let h = hash3(data, i);
        let mut cand = self.head[h];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = self.effort.max_chain;
        while cand != NIL && chain > 0 {
            let c = cand as usize;
            if i - c > WINDOW_SIZE {
                break;
            }
            // Check the byte that would extend the best match first.
            if c + best_len < data.len()
                && i + best_len < data.len()
                && data[c + best_len] == data[i + best_len]
            {
                let mut len = 0usize;
                while len < max_len && data[c + len] == data[i + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = i - c;
                    if len >= self.effort.good_len.min(max_len) {
                        break;
                    }
                }
            }
            let next = self.prev[c & (WINDOW_SIZE - 1)];
            // Guard against stale entries that wrapped around the window.
            if next != NIL && next as usize >= c {
                break;
            }
            cand = next;
            chain -= 1;
        }
        (best_len >= MIN_MATCH).then_some((best_len, best_dist))
    }
}

/// Tokenize with one-step lazy matching (defer a match if the next position
/// has a strictly longer one), as zlib does at its higher levels.
fn tokenize(input: &[u8], effort: Effort) -> Vec<Token> {
    let n = input.len();
    let mut tokens = Vec::with_capacity(n / 3 + 8);
    if n < MIN_MATCH {
        tokens.extend(input.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    let mut m = ChainMatcher::new(effort);
    let limit = n - MIN_MATCH; // last position where hash3 is valid
    let mut i = 0usize;
    while i < n {
        if i > limit {
            tokens.push(Token::Literal(input[i]));
            i += 1;
            continue;
        }
        let here = m.find(input, i, (n - i).min(MAX_MATCH));
        m.insert(input, i);
        let Some((mut len, mut dist)) = here else {
            tokens.push(Token::Literal(input[i]));
            i += 1;
            continue;
        };
        // Lazy step: would starting at i+1 give a longer match?
        if effort.lazy && len < effort.good_len && i < limit {
            if let Some((nlen, ndist)) = m.find(input, i + 1, (n - i - 1).min(MAX_MATCH)) {
                if nlen > len {
                    tokens.push(Token::Literal(input[i]));
                    m.insert(input, i + 1);
                    i += 1;
                    len = nlen;
                    dist = ndist;
                }
            }
        }
        tokens.push(Token::Match { len: len as u16, dist: dist as u16 });
        // Insert positions covered by the match into the dictionary.
        let match_end = i + len;
        let insert_to = match_end.min(limit + 1);
        let mut j = i + 1;
        while j < insert_to {
            m.insert(input, j);
            j += 1;
        }
        i = match_end;
    }
    tokens
}

impl Codec for Deflate {
    fn id(&self) -> CodecId {
        CodecId::Deflate
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let tokens = tokenize(input, self.effort);

        // Count symbol frequencies.
        let mut lit_freq = vec![0u64; NUM_LITLEN];
        let mut dist_freq = vec![0u64; NUM_DIST];
        for t in &tokens {
            match *t {
                Token::Literal(b) => lit_freq[b as usize] += 1,
                Token::Match { len, dist } => {
                    lit_freq[length_code(len as usize).0] += 1;
                    dist_freq[dist_code(dist as usize).0] += 1;
                }
            }
        }
        lit_freq[EOB] += 1;

        let lit_lens = build_code_lengths(&lit_freq);
        let dist_lens = build_code_lengths(&dist_freq);
        let lit_enc = Encoder::from_lengths(&lit_lens);
        let dist_enc = Encoder::from_lengths(&dist_lens);

        let mut w = BitWriter::new();
        w.write_bits(0, 1); // Huffman block
        write_lengths(&mut w, &lit_lens);
        write_lengths(&mut w, &dist_lens);
        for t in &tokens {
            match *t {
                Token::Literal(b) => lit_enc.write(&mut w, b as usize),
                Token::Match { len, dist } => {
                    let (lc, lextra, lbits) = length_code(len as usize);
                    lit_enc.write(&mut w, lc);
                    if lbits > 0 {
                        w.write_bits(lextra, u32::from(lbits));
                    }
                    let (dc, dextra, dbits) = dist_code(dist as usize);
                    dist_enc.write(&mut w, dc);
                    if dbits > 0 {
                        w.write_bits(dextra, u32::from(dbits));
                    }
                }
            }
        }
        lit_enc.write(&mut w, EOB);
        let encoded = w.finish();

        if encoded.len() > input.len() + 1 {
            // Raw fallback: 1-bit flag + verbatim bytes.
            let mut w = BitWriter::new();
            w.write_bits(1, 1);
            for &b in input {
                w.write_byte(b);
            }
            return w.finish();
        }
        encoded
    }

    fn decompress(&self, input: &[u8], expected_len: usize) -> Result<Vec<u8>, DecompressError> {
        if input.is_empty() {
            return Err(DecompressError::Truncated);
        }
        let mut r = BitReader::new(input);
        let raw = r.read_bits(1)? == 1;
        // Never pre-allocate an untrusted length (see `Lzf::decompress`).
        let mut out = Vec::with_capacity(expected_len.min(16 << 20));
        if raw {
            for _ in 0..expected_len {
                out.push(r.read_bits(8)? as u8);
            }
            return Ok(out);
        }
        let lit_lens = read_lengths(&mut r, NUM_LITLEN)?;
        let dist_lens = read_lengths(&mut r, NUM_DIST)?;
        let lit_dec = Decoder::from_lengths(&lit_lens)?;
        let dist_dec = Decoder::from_lengths(&dist_lens)?;
        loop {
            let sym = lit_dec.read(&mut r)?;
            match sym {
                0..=255 => out.push(sym as u8),
                256 => break,
                257..=285 => {
                    let (base, extra) = LEN_TABLE[sym - 257];
                    let len = usize::from(base) + r.read_bits(u32::from(extra))? as usize;
                    let dsym = dist_dec.read(&mut r)?;
                    if dsym >= NUM_DIST {
                        return Err(DecompressError::Malformed("distance code out of range"));
                    }
                    let (dbase, dextra) = DIST_TABLE[dsym];
                    let dist = usize::from(dbase) + r.read_bits(u32::from(dextra))? as usize;
                    if dist > out.len() {
                        return Err(DecompressError::BadReference { at: out.len(), offset: dist });
                    }
                    let src = out.len() - dist;
                    for k in 0..len {
                        let b = out[src + k];
                        out.push(b);
                    }
                }
                _ => return Err(DecompressError::Malformed("literal/length code out of range")),
            }
            if out.len() > expected_len {
                return Err(DecompressError::SizeMismatch {
                    expected: expected_len,
                    actual: out.len(),
                });
            }
        }
        if out.len() != expected_len {
            return Err(DecompressError::SizeMismatch { expected: expected_len, actual: out.len() });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lzf::Lzf;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let c = Deflate::new().compress(data);
        Deflate::new().decompress(&c, data.len()).expect("round trip")
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(b""), b"");
    }

    #[test]
    fn single_byte() {
        assert_eq!(roundtrip(b"A"), b"A");
    }

    #[test]
    fn length_code_table_covers_range() {
        for len in MIN_MATCH..=MAX_MATCH {
            let (code, extra, bits) = length_code(len);
            assert!((257..=285).contains(&code), "len {len} -> code {code}");
            let (base, tbits) = LEN_TABLE[code - 257];
            assert_eq!(u32::from(bits), u32::from(tbits));
            assert_eq!(usize::from(base) + extra as usize, len);
        }
    }

    #[test]
    fn dist_code_table_covers_range() {
        for dist in [1usize, 2, 3, 4, 5, 100, 1024, 4096, 10000, 32768] {
            let (code, extra, _bits) = dist_code(dist);
            assert!(code < NUM_DIST);
            let (base, _) = DIST_TABLE[code];
            assert_eq!(usize::from(base) + extra as usize, dist);
        }
    }

    #[test]
    fn repeated_text_high_ratio() {
        let data: Vec<u8> = b"elastic data compression for flash storage "
            .iter()
            .copied()
            .cycle()
            .take(16384)
            .collect();
        let c = Deflate::new().compress(&data);
        assert!(c.len() < data.len() / 10, "ratio too low: {} bytes", c.len());
        assert_eq!(Deflate::new().decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn better_ratio_than_lzf_on_text() {
        // The mid-ladder codec must out-compress the fast codec on text —
        // this ordering is load-bearing for the paper's Fig. 2.
        let mut data = Vec::new();
        let words = [
            "request", "storage", "flash", "latency", "compression", "block",
            "buffer", "queue", "page", "erase", "write", "read",
        ];
        let mut seed = 11u64;
        for _ in 0..4000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            data.extend_from_slice(words[(seed >> 33) as usize % words.len()].as_bytes());
            data.push(b' ');
        }
        let d = Deflate::new().compress(&data);
        let l = Lzf::new().compress(&data);
        assert!(d.len() < l.len(), "deflate {} !< lzf {}", d.len(), l.len());
        assert_eq!(Deflate::new().decompress(&d, data.len()).unwrap(), data);
    }

    #[test]
    fn incompressible_falls_back_to_raw() {
        let mut x = 0x0123_4567_89AB_CDEFu64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        let c = Deflate::new().compress(&data);
        assert!(c.len() <= data.len() + 1, "raw fallback bound violated: {}", c.len());
        assert_eq!(Deflate::new().decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn all_zero_block() {
        let data = vec![0u8; 65536];
        let c = Deflate::new().compress(&data);
        assert!(c.len() < 600, "got {}", c.len());
        assert_eq!(Deflate::new().decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn max_match_length_block() {
        // A run long enough to require several MAX_MATCH tokens.
        let mut data = vec![b'r'; MAX_MATCH * 4 + 17];
        data[0] = b's'; // avoid the trivial all-same case
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn long_range_match_across_window() {
        let mut data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let tail = data[..1000].to_vec();
        data.extend_from_slice(&tail); // match at distance 20 000
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn truncated_stream_detected() {
        let data: Vec<u8> = b"hello world ".iter().copied().cycle().take(4096).collect();
        let mut c = Deflate::new().compress(&data);
        c.truncate(c.len() / 2);
        assert!(Deflate::new().decompress(&c, data.len()).is_err());
    }

    #[test]
    fn garbage_stream_detected() {
        let garbage: Vec<u8> = (0..512u32).map(|i| (i * 7 + 3) as u8).collect();
        // Must error, never panic.
        let _ = Deflate::new().decompress(&garbage, 4096).is_err();
    }

    #[test]
    fn wrong_expected_len_detected() {
        let data = b"abcabcabcabcabcabc";
        let c = Deflate::new().compress(data);
        assert!(Deflate::new().decompress(&c, data.len() + 1).is_err());
        assert!(Deflate::new().decompress(&c, data.len() - 1).is_err());
    }

    #[test]
    fn deterministic_output() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 131 % 256) as u8).collect();
        assert_eq!(Deflate::new().compress(&data), Deflate::new().compress(&data));
    }

    #[test]
    fn levels_trade_size_for_effort() {
        // Monotone-ish: level 9 must not produce a larger stream than
        // level 1 on matchy text, and every level round-trips.
        let data: Vec<u8> = b"the elastic compression ladder trades ratio for speed "
            .iter()
            .copied()
            .cycle()
            .take(32768)
            .collect();
        let mut sizes = Vec::new();
        for level in 1..=9u8 {
            let codec = Deflate::with_level(level);
            let c = codec.compress(&data);
            assert_eq!(codec.decompress(&c, data.len()).unwrap(), data, "level {level}");
            sizes.push(c.len());
        }
        assert!(sizes[8] <= sizes[0], "level 9 {} !<= level 1 {}", sizes[8], sizes[0]);
    }

    #[test]
    fn levels_are_stream_compatible() {
        // A level-1 decoder state machine must read a level-9 stream.
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 100) as u8).collect();
        let c = Deflate::with_level(9).compress(&data);
        assert_eq!(Deflate::with_level(1).decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    #[should_panic(expected = "level must be 1..=9")]
    fn level_zero_rejected() {
        let _ = Deflate::with_level(0);
    }

    #[test]
    fn binary_structured_data() {
        // Struct-like records with repeating layout.
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(&i.to_le_bytes());
            data.extend_from_slice(&(i as u64 * 3).to_le_bytes());
            data.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
        }
        let c = Deflate::new().compress(&data);
        assert!(c.len() < data.len() / 2);
        assert_eq!(Deflate::new().decompress(&c, data.len()).unwrap(), data);
    }
}
