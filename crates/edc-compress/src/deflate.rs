//! Gzip-class codec: LZ77 with hash-chain match finding and lazy
//! evaluation, followed by canonical Huffman coding of a DEFLATE-style
//! literal/length + distance alphabet.
//!
//! This is EDC's *mid-ladder* algorithm: a noticeably better ratio than the
//! fast LZ codecs (it spends effort on chained match search and entropy
//! coding) at several times their CPU cost — the same trade-off position
//! Gzip occupies in the paper's Fig. 2.
//!
//! ## Container format
//!
//! A single bit selects the block type:
//!
//! * `1` — *raw block*: the input bytes follow verbatim (fallback when
//!   entropy coding would expand the data).
//! * `0` — *Huffman block*: serialized code lengths for the literal/length
//!   alphabet (286 symbols) and the distance alphabet (30 symbols), then
//!   the token stream terminated by the end-of-block symbol (256).
//!
//! Length and distance symbols use DEFLATE's base/extra-bits tables, so the
//! match space is lengths 3..=258 over a 32 KiB window.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{read_lengths, write_lengths, Decoder, Encoder, LengthBuilder};
use crate::state::{common_prefix_len, with_thread_state, CompressorState, StampTable};
use crate::{Codec, CodecId, DecompressError};

const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const WINDOW_SIZE: usize = 32 * 1024;
const HASH_BITS: u32 = 15;
const NUM_LITLEN: usize = 286; // 0–255 literals, 256 EOB, 257–285 lengths
const NUM_DIST: usize = 30;
const EOB: usize = 256;

/// DEFLATE length-code table: `(base_length, extra_bits)` for codes 257..=285.
const LEN_TABLE: [(u16, u8); 29] = [
    (3, 0), (4, 0), (5, 0), (6, 0), (7, 0), (8, 0), (9, 0), (10, 0),
    (11, 1), (13, 1), (15, 1), (17, 1),
    (19, 2), (23, 2), (27, 2), (31, 2),
    (35, 3), (43, 3), (51, 3), (59, 3),
    (67, 4), (83, 4), (99, 4), (115, 4),
    (131, 5), (163, 5), (195, 5), (227, 5),
    (258, 0),
];

/// DEFLATE distance-code table: `(base_distance, extra_bits)` for codes 0..=29.
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0), (2, 0), (3, 0), (4, 0),
    (5, 1), (7, 1), (9, 2), (13, 2),
    (17, 3), (25, 3), (33, 4), (49, 4),
    (65, 5), (97, 5), (129, 6), (193, 6),
    (257, 7), (385, 7), (513, 8), (769, 8),
    (1025, 9), (1537, 9), (2049, 10), (3073, 10),
    (4097, 11), (6145, 11), (8193, 12), (12289, 12),
    (16385, 13), (24577, 13),
];

/// Length symbol index per match length, replacing a `partition_point`
/// binary search in the per-token hot loop with one table load.
/// `LEN_SYM[len - MIN_MATCH]` is the index into [`LEN_TABLE`].
const LEN_SYM: [u8; MAX_MATCH - MIN_MATCH + 1] = {
    let mut t = [0u8; MAX_MATCH - MIN_MATCH + 1];
    let mut len = MIN_MATCH;
    while len <= MAX_MATCH {
        let mut idx = 0usize;
        let mut j = 0usize;
        while j < LEN_TABLE.len() {
            if LEN_TABLE[j].0 as usize <= len {
                idx = j;
            }
            j += 1;
        }
        t[len - MIN_MATCH] = idx as u8;
        len += 1;
    }
    t
};

/// Distance symbol LUT in zlib's two-tier layout: distances 1..=256 index
/// the first 256 entries directly; larger distances share a symbol per
/// 128-wide bucket (all [`DIST_TABLE`] bases above 256 are 1 + a multiple
/// of 128, so `(dist - 1) >> 7` lands each distance on its code).
const DIST_SYM: [u8; 512] = {
    const fn dist_idx(d: usize) -> u8 {
        let mut idx = 0usize;
        let mut j = 0usize;
        while j < DIST_TABLE.len() {
            if DIST_TABLE[j].0 as usize <= d {
                idx = j;
            }
            j += 1;
        }
        idx as u8
    }
    let mut t = [0u8; 512];
    let mut d = 1usize;
    while d <= 256 {
        t[d - 1] = dist_idx(d);
        d += 1;
    }
    let mut k = 2usize; // first bucket above 256: distances 257..=384
    while k < 256 {
        t[256 + k] = dist_idx((k << 7) + 1);
        k += 1;
    }
    t
};

/// Map a match length (3..=258) to `(code_index, extra_value, extra_bits)`.
#[inline]
fn length_code(len: usize) -> (usize, u64, u8) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    let idx = LEN_SYM[len - MIN_MATCH] as usize;
    let (base, extra) = LEN_TABLE[idx];
    (257 + idx, (len - usize::from(base)) as u64, extra)
}

/// Map a distance (1..=32768) to `(code_index, extra_value, extra_bits)`.
#[inline]
fn dist_code(dist: usize) -> (usize, u64, u8) {
    debug_assert!((1..=WINDOW_SIZE).contains(&dist));
    let idx = if dist <= 256 {
        DIST_SYM[dist - 1] as usize
    } else {
        DIST_SYM[256 + ((dist - 1) >> 7)] as usize
    };
    let (base, extra) = DIST_TABLE[idx];
    (idx, (dist - usize::from(base)) as u64, extra)
}

/// One LZ77 token prior to entropy coding.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Token {
    Literal(u8),
    Match { len: u16, dist: u16 },
}

/// Match-finder effort parameters, derived from a compression level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Effort {
    /// Chain probes per position; the knob that buys ratio with CPU time.
    max_chain: usize,
    /// Stop searching once a match at least this long is found.
    good_len: usize,
    /// One-step lazy matching (defer if the next position matches longer).
    lazy: bool,
}

/// Gzip-class codec. See the [module docs](self) for format details.
///
/// Like zlib, the encoder takes a *level* (1–9) trading CPU for ratio:
/// level 1 probes few chain candidates greedily, level 9 searches deep
/// chains with lazy evaluation. The stream format is identical across
/// levels — any level decompresses any stream.
#[derive(Debug, Clone, Copy)]
pub struct Deflate {
    effort: Effort,
}

impl Default for Deflate {
    fn default() -> Self {
        Self::new()
    }
}

impl Deflate {
    /// Default level (6): the zlib-like balance used by the EDC ladder.
    pub const fn new() -> Self {
        Deflate { effort: Effort { max_chain: 64, good_len: 96, lazy: true } }
    }

    /// Create the codec at an explicit compression level.
    ///
    /// # Panics
    /// Panics unless `1 <= level <= 9`.
    pub const fn with_level(level: u8) -> Self {
        let effort = match level {
            1 => Effort { max_chain: 4, good_len: 8, lazy: false },
            2 => Effort { max_chain: 8, good_len: 16, lazy: false },
            3 => Effort { max_chain: 16, good_len: 24, lazy: false },
            4 => Effort { max_chain: 24, good_len: 32, lazy: true },
            5 => Effort { max_chain: 40, good_len: 64, lazy: true },
            6 => Effort { max_chain: 64, good_len: 96, lazy: true },
            7 => Effort { max_chain: 96, good_len: 128, lazy: true },
            8 => Effort { max_chain: 160, good_len: 192, lazy: true },
            9 => Effort { max_chain: 256, good_len: MAX_MATCH, lazy: true },
            _ => panic!("deflate level must be 1..=9"),
        };
        Deflate { effort }
    }
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

const NIL: u32 = u32::MAX;

/// All per-call working memory of the Deflate encoder, owned by
/// [`CompressorState`] so steady-state compression never allocates: chain
/// matcher arrays, the token buffer, frequency tables, Huffman build
/// scratch and both encoder tables (rebuilt in place per block).
pub(crate) struct DeflateScratch {
    /// Chain heads per hash bucket, epoch-stamped so previous inputs'
    /// entries read as empty without clearing 128 KiB per call.
    head: StampTable,
    /// Previous position in the chain, indexed by `pos & (WINDOW_SIZE-1)`.
    /// Never cleared between inputs: chains are only entered through
    /// `head`, and every reachable entry is (re)written while inserting
    /// positions of the *current* input, so stale values are unreachable.
    prev: Vec<u32>,
    tokens: Vec<Token>,
    lit_freq: [u64; NUM_LITLEN],
    dist_freq: [u64; NUM_DIST],
    lit_lens: Vec<u8>,
    dist_lens: Vec<u8>,
    lit_enc: Encoder,
    dist_enc: Encoder,
    builder: LengthBuilder,
}

impl DeflateScratch {
    pub(crate) fn new() -> Self {
        DeflateScratch {
            head: StampTable::new(),
            prev: Vec::new(),
            tokens: Vec::new(),
            lit_freq: [0; NUM_LITLEN],
            dist_freq: [0; NUM_DIST],
            lit_lens: Vec::new(),
            dist_lens: Vec::new(),
            lit_enc: Encoder::empty(),
            dist_enc: Encoder::empty(),
            builder: LengthBuilder::new(),
        }
    }

    /// Summed backing capacities, used to detect allocation events.
    pub(crate) fn capacity_signature(&self) -> usize {
        self.head.capacity()
            + self.prev.capacity()
            + self.tokens.capacity()
            + self.lit_lens.capacity()
            + self.dist_lens.capacity()
            + self.lit_enc.capacity()
            + self.dist_enc.capacity()
            + self.builder.capacity()
    }
}

/// Hash-chain match finder over a 32 KiB sliding window, borrowing its
/// arrays from [`DeflateScratch`].
struct ChainMatcher<'a> {
    head: &'a mut StampTable,
    /// Fixed-size array reference so the `& (WINDOW_SIZE - 1)` mask
    /// provably stays in bounds — no per-probe bounds check in the walk.
    prev: &'a mut [u32; WINDOW_SIZE],
    effort: Effort,
}

impl ChainMatcher<'_> {
    #[inline]
    fn insert(&mut self, data: &[u8], i: usize) {
        self.insert_hashed(hash3(data, i), i);
    }

    /// [`ChainMatcher::insert`] with the hash already computed — the
    /// tokenizer hashes each position once and shares the value between
    /// the lookup and the chain push (a fused single slot access).
    #[inline]
    fn insert_hashed(&mut self, h: usize, i: usize) {
        self.prev[i & (WINDOW_SIZE - 1)] = match self.head.replace(h, i) {
            Some(p) => p as u32,
            None => NIL,
        };
    }

    /// Best `(len, dist)` match for position `i` that is strictly longer
    /// than `floor`, or `None`. `h` must be `hash3(data, i)`.
    ///
    /// `floor` makes the lazy second search cheap: the caller only cares
    /// about a match longer than the one it already holds, so candidates
    /// at or below that length fail the one-byte pre-check and never pay
    /// a full prefix scan. Recording is strictly-greater-only, so the
    /// returned match is identical to a `floor = 0` walk filtered by the
    /// caller — just without the wasted scans.
    fn find_hashed(
        &self,
        h: usize,
        data: &[u8],
        i: usize,
        max_len: usize,
        floor: usize,
    ) -> Option<(usize, usize)> {
        let mut best_len = floor.max(MIN_MATCH - 1);
        if best_len >= max_len {
            return None; // nothing longer than the floor can fit
        }
        let mut cand = match self.head.get(h) {
            Some(c) => c as u32,
            None => NIL,
        };
        let mut best_dist = 0usize;
        let mut chain = self.effort.max_chain;
        // The byte pair a candidate must match at offsets `best_len - 1`
        // and `best_len` to possibly beat the best (zlib's
        // `scan_end1`/`scan_end` trick, fused into one 16-bit compare);
        // re-read only when the best improves. In bounds: `best_len <
        // max_len <= data.len() - i` throughout (the good_len break below
        // fires before `best_len` can reach `max_len`), and `best_len >=
        // MIN_MATCH - 1 >= 1`.
        let pair_at = |p: usize| -> u16 {
            u16::from_le_bytes(data[p - 1..=p].try_into().expect("2-byte slice"))
        };
        let mut wanted = pair_at(i + best_len);
        while cand != NIL && chain > 0 {
            let c = cand as usize;
            if i - c > WINDOW_SIZE {
                break;
            }
            // Pair pre-check before the word-wide scan (`c < i`, so
            // `c + best_len` is in bounds too). A candidate whose common
            // prefix exceeds `best_len` matches at both offsets, so this
            // rejects only candidates that cannot improve.
            if pair_at(c + best_len) == wanted {
                let len = common_prefix_len(data, c, i, max_len);
                if len > best_len {
                    best_len = len;
                    best_dist = i - c;
                    if len >= self.effort.good_len.min(max_len) {
                        break;
                    }
                    wanted = pair_at(i + best_len);
                }
            }
            let next = self.prev[c & (WINDOW_SIZE - 1)];
            // Guard against stale entries that wrapped around the window.
            if next != NIL && next as usize >= c {
                break;
            }
            cand = next;
            chain -= 1;
        }
        (best_dist != 0).then_some((best_len, best_dist))
    }
}

/// Tokenize into `scratch.tokens` with one-step lazy matching (defer a
/// match if the next position has a strictly longer one), as zlib does at
/// its higher levels.
fn tokenize_into(input: &[u8], effort: Effort, scratch: &mut DeflateScratch) {
    let n = input.len();
    scratch.tokens.clear();
    scratch.tokens.reserve(n / 3 + 8);
    if n < MIN_MATCH {
        scratch.tokens.extend(input.iter().map(|&b| Token::Literal(b)));
        return;
    }
    scratch.head.begin(1 << HASH_BITS);
    if scratch.prev.len() != WINDOW_SIZE {
        scratch.prev.clear();
        scratch.prev.resize(WINDOW_SIZE, NIL);
    }
    let tokens = &mut scratch.tokens;
    let prev: &mut [u32; WINDOW_SIZE] =
        (&mut scratch.prev[..]).try_into().expect("prev sized to the window");
    let mut m = ChainMatcher { head: &mut scratch.head, prev, effort };
    let limit = n - MIN_MATCH; // last position where hash3 is valid
    let mut i = 0usize;
    while i < n {
        if i > limit {
            tokens.push(Token::Literal(input[i]));
            i += 1;
            continue;
        }
        let h = hash3(input, i);
        let here = m.find_hashed(h, input, i, (n - i).min(MAX_MATCH), 0);
        m.insert_hashed(h, i);
        let Some((mut len, mut dist)) = here else {
            tokens.push(Token::Literal(input[i]));
            i += 1;
            continue;
        };
        // Lazy step: would starting at i+1 give a longer match? The
        // current length is the floor — only a strictly longer match
        // defers, so shorter candidates are pre-filtered inside the walk.
        if effort.lazy && len < effort.good_len && i < limit {
            let h2 = hash3(input, i + 1);
            if let Some((nlen, ndist)) =
                m.find_hashed(h2, input, i + 1, (n - i - 1).min(MAX_MATCH), len)
            {
                debug_assert!(nlen > len, "floored search returned a non-improving match");
                tokens.push(Token::Literal(input[i]));
                m.insert_hashed(h2, i + 1);
                i += 1;
                len = nlen;
                dist = ndist;
            }
        }
        tokens.push(Token::Match { len: len as u16, dist: dist as u16 });
        // Insert positions covered by the match into the dictionary.
        let match_end = i + len;
        let insert_to = match_end.min(limit + 1);
        let mut j = i + 1;
        while j < insert_to {
            m.insert(input, j);
            j += 1;
        }
        i = match_end;
    }
}

impl Codec for Deflate {
    fn id(&self) -> CodecId {
        CodecId::Deflate
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.compress_into(input, &mut out);
        out
    }

    fn compress_into(&self, input: &[u8], out: &mut Vec<u8>) {
        with_thread_state(|state| self.compress_with(state, input, out));
    }

    fn compress_with(&self, state: &mut CompressorState, input: &[u8], out: &mut Vec<u8>) {
        let cap0 = state.deflate.capacity_signature();
        let st = &mut state.deflate;
        tokenize_into(input, self.effort, st);

        // Count symbol frequencies.
        st.lit_freq.fill(0);
        st.dist_freq.fill(0);
        for t in &st.tokens {
            match *t {
                Token::Literal(b) => st.lit_freq[b as usize] += 1,
                Token::Match { len, dist } => {
                    st.lit_freq[length_code(len as usize).0] += 1;
                    st.dist_freq[dist_code(dist as usize).0] += 1;
                }
            }
        }
        st.lit_freq[EOB] += 1;

        // Huffman setup, all in reused scratch: tree construction keeps
        // its heap/parent arrays, encoders rebuild their tables in place.
        st.builder.build_into(&st.lit_freq, &mut st.lit_lens);
        st.builder.build_into(&st.dist_freq, &mut st.dist_lens);
        st.lit_enc.rebuild(&st.lit_lens);
        st.dist_enc.rebuild(&st.dist_lens);

        // The caller's buffer backs the bit stream directly.
        let mut w = BitWriter::with_buffer(std::mem::take(out));
        w.write_bits(0, 1); // Huffman block
        write_lengths(&mut w, &st.lit_lens);
        write_lengths(&mut w, &st.dist_lens);
        for t in &st.tokens {
            match *t {
                Token::Literal(b) => st.lit_enc.write(&mut w, b as usize),
                Token::Match { len, dist } => {
                    let (lc, lextra, lbits) = length_code(len as usize);
                    st.lit_enc.write(&mut w, lc);
                    if lbits > 0 {
                        w.write_bits(lextra, u32::from(lbits));
                    }
                    let (dc, dextra, dbits) = dist_code(dist as usize);
                    st.dist_enc.write(&mut w, dc);
                    if dbits > 0 {
                        w.write_bits(dextra, u32::from(dbits));
                    }
                }
            }
        }
        st.lit_enc.write(&mut w, EOB);
        let encoded = w.finish();

        if encoded.len() > input.len() + 1 {
            // Raw fallback: 1-bit flag + verbatim bytes, reusing the
            // same backing buffer (`with_buffer` clears it).
            let mut w = BitWriter::with_buffer(encoded);
            w.write_bits(1, 1);
            for &b in input {
                w.write_byte(b);
            }
            *out = w.finish();
        } else {
            *out = encoded;
        }
        if state.deflate.capacity_signature() != cap0 {
            state.alloc_events += 1;
        }
    }

    fn decompress(&self, input: &[u8], expected_len: usize) -> Result<Vec<u8>, DecompressError> {
        let mut out = Vec::new();
        self.decompress_into(input, expected_len, &mut out)?;
        Ok(out)
    }

    fn decompress_into(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), DecompressError> {
        out.clear();
        if input.is_empty() {
            return Err(DecompressError::Truncated);
        }
        let mut r = BitReader::new(input);
        let raw = r.read_bits(1)? == 1;
        // Never pre-allocate an untrusted length (see `Lzf::decompress_into`).
        out.reserve(expected_len.min(16 << 20));
        if raw {
            for _ in 0..expected_len {
                out.push(r.read_bits(8)? as u8);
            }
            return Ok(());
        }
        let lit_lens = read_lengths(&mut r, NUM_LITLEN)?;
        let dist_lens = read_lengths(&mut r, NUM_DIST)?;
        let lit_dec = Decoder::from_lengths(&lit_lens)?;
        let dist_dec = Decoder::from_lengths(&dist_lens)?;
        loop {
            let sym = lit_dec.read(&mut r)?;
            match sym {
                0..=255 => {
                    if out.len() >= expected_len {
                        return Err(DecompressError::OutputOverflow { expected: expected_len });
                    }
                    out.push(sym as u8);
                }
                256 => break,
                257..=285 => {
                    let (base, extra) = LEN_TABLE[sym - 257];
                    let len = usize::from(base) + r.read_bits(u32::from(extra))? as usize;
                    let dsym = dist_dec.read(&mut r)?;
                    if dsym >= NUM_DIST {
                        return Err(DecompressError::BadSymbol {
                            what: "deflate distance alphabet",
                            symbol: dsym as u32,
                        });
                    }
                    let (dbase, dextra) = DIST_TABLE[dsym];
                    let dist = usize::from(dbase) + r.read_bits(u32::from(dextra))? as usize;
                    if dist > out.len() {
                        return Err(DecompressError::BadReference { at: out.len(), offset: dist });
                    }
                    // Cap BEFORE copying: a match may not overshoot the
                    // declared output size even transiently.
                    if out.len() + len > expected_len {
                        return Err(DecompressError::OutputOverflow { expected: expected_len });
                    }
                    let src = out.len() - dist;
                    for k in 0..len {
                        let b = out[src + k];
                        out.push(b);
                    }
                }
                _ => {
                    return Err(DecompressError::BadSymbol {
                        what: "deflate literal/length alphabet",
                        symbol: sym as u32,
                    })
                }
            }
        }
        if out.len() != expected_len {
            return Err(DecompressError::SizeMismatch { expected: expected_len, actual: out.len() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lzf::Lzf;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let c = Deflate::new().compress(data);
        Deflate::new().decompress(&c, data.len()).expect("round trip")
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(b""), b"");
    }

    #[test]
    fn single_byte() {
        assert_eq!(roundtrip(b"A"), b"A");
    }

    #[test]
    fn length_code_table_covers_range() {
        for len in MIN_MATCH..=MAX_MATCH {
            let (code, extra, bits) = length_code(len);
            assert!((257..=285).contains(&code), "len {len} -> code {code}");
            let (base, tbits) = LEN_TABLE[code - 257];
            assert_eq!(u32::from(bits), u32::from(tbits));
            assert_eq!(usize::from(base) + extra as usize, len);
        }
    }

    #[test]
    fn dist_code_table_covers_range() {
        for dist in [1usize, 2, 3, 4, 5, 100, 1024, 4096, 10000, 32768] {
            let (code, extra, _bits) = dist_code(dist);
            assert!(code < NUM_DIST);
            let (base, _) = DIST_TABLE[code];
            assert_eq!(usize::from(base) + extra as usize, dist);
        }
    }

    #[test]
    fn repeated_text_high_ratio() {
        let data: Vec<u8> = b"elastic data compression for flash storage "
            .iter()
            .copied()
            .cycle()
            .take(16384)
            .collect();
        let c = Deflate::new().compress(&data);
        assert!(c.len() < data.len() / 10, "ratio too low: {} bytes", c.len());
        assert_eq!(Deflate::new().decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn better_ratio_than_lzf_on_text() {
        // The mid-ladder codec must out-compress the fast codec on text —
        // this ordering is load-bearing for the paper's Fig. 2.
        let mut data = Vec::new();
        let words = [
            "request", "storage", "flash", "latency", "compression", "block",
            "buffer", "queue", "page", "erase", "write", "read",
        ];
        let mut seed = 11u64;
        for _ in 0..4000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            data.extend_from_slice(words[(seed >> 33) as usize % words.len()].as_bytes());
            data.push(b' ');
        }
        let d = Deflate::new().compress(&data);
        let l = Lzf::new().compress(&data);
        assert!(d.len() < l.len(), "deflate {} !< lzf {}", d.len(), l.len());
        assert_eq!(Deflate::new().decompress(&d, data.len()).unwrap(), data);
    }

    #[test]
    fn incompressible_falls_back_to_raw() {
        let mut x = 0x0123_4567_89AB_CDEFu64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        let c = Deflate::new().compress(&data);
        assert!(c.len() <= data.len() + 1, "raw fallback bound violated: {}", c.len());
        assert_eq!(Deflate::new().decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn all_zero_block() {
        let data = vec![0u8; 65536];
        let c = Deflate::new().compress(&data);
        assert!(c.len() < 600, "got {}", c.len());
        assert_eq!(Deflate::new().decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn max_match_length_block() {
        // A run long enough to require several MAX_MATCH tokens.
        let mut data = vec![b'r'; MAX_MATCH * 4 + 17];
        data[0] = b's'; // avoid the trivial all-same case
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn long_range_match_across_window() {
        let mut data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let tail = data[..1000].to_vec();
        data.extend_from_slice(&tail); // match at distance 20 000
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn truncated_stream_detected() {
        let data: Vec<u8> = b"hello world ".iter().copied().cycle().take(4096).collect();
        let mut c = Deflate::new().compress(&data);
        c.truncate(c.len() / 2);
        assert!(Deflate::new().decompress(&c, data.len()).is_err());
    }

    #[test]
    fn garbage_stream_detected() {
        let garbage: Vec<u8> = (0..512u32).map(|i| (i * 7 + 3) as u8).collect();
        // Must error, never panic.
        let _ = Deflate::new().decompress(&garbage, 4096).is_err();
    }

    #[test]
    fn wrong_expected_len_detected() {
        let data = b"abcabcabcabcabcabc";
        let c = Deflate::new().compress(data);
        assert!(Deflate::new().decompress(&c, data.len() + 1).is_err());
        assert!(Deflate::new().decompress(&c, data.len() - 1).is_err());
    }

    #[test]
    fn undersized_expected_len_is_output_overflow() {
        // The decoder must refuse to produce byte `expected_len + 1`, even
        // mid-match: the output buffer never exceeds what the caller sized.
        let data: Vec<u8> = b"abcabcabcabc".iter().copied().cycle().take(2048).collect();
        let c = Deflate::new().compress(&data);
        let err = Deflate::new().decompress(&c, 100).unwrap_err();
        assert!(matches!(err, DecompressError::OutputOverflow { expected: 100 }));
    }

    #[test]
    fn deterministic_output() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 131 % 256) as u8).collect();
        assert_eq!(Deflate::new().compress(&data), Deflate::new().compress(&data));
    }

    #[test]
    fn levels_trade_size_for_effort() {
        // Monotone-ish: level 9 must not produce a larger stream than
        // level 1 on matchy text, and every level round-trips.
        let data: Vec<u8> = b"the elastic compression ladder trades ratio for speed "
            .iter()
            .copied()
            .cycle()
            .take(32768)
            .collect();
        let mut sizes = Vec::new();
        for level in 1..=9u8 {
            let codec = Deflate::with_level(level);
            let c = codec.compress(&data);
            assert_eq!(codec.decompress(&c, data.len()).unwrap(), data, "level {level}");
            sizes.push(c.len());
        }
        assert!(sizes[8] <= sizes[0], "level 9 {} !<= level 1 {}", sizes[8], sizes[0]);
    }

    #[test]
    fn levels_are_stream_compatible() {
        // A level-1 decoder state machine must read a level-9 stream.
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 100) as u8).collect();
        let c = Deflate::with_level(9).compress(&data);
        assert_eq!(Deflate::with_level(1).decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    #[should_panic(expected = "level must be 1..=9")]
    fn level_zero_rejected() {
        let _ = Deflate::with_level(0);
    }

    #[test]
    fn binary_structured_data() {
        // Struct-like records with repeating layout.
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(&i.to_le_bytes());
            data.extend_from_slice(&(i as u64 * 3).to_le_bytes());
            data.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
        }
        let c = Deflate::new().compress(&data);
        assert!(c.len() < data.len() / 2);
        assert_eq!(Deflate::new().decompress(&c, data.len()).unwrap(), data);
    }
}

