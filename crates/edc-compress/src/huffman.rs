//! Canonical, length-limited Huffman coding shared by the Gzip-class
//! ([`crate::deflate`]) and Bzip2-class ([`crate::bwt`]) codecs.
//!
//! Code lengths are built with a standard heap-based Huffman construction;
//! if the deepest code exceeds [`MAX_CODE_LEN`], frequencies are halved
//! (rounding up) and the tree rebuilt — the same pragmatic depth-limiting
//! strategy production encoders use. Codes are assigned canonically and
//! stored bit-reversed so they can be emitted directly into the LSB-first
//! bitstream and decoded with a single table lookup.

use crate::bitio::{BitReader, BitWriter};
use crate::DecompressError;

/// Maximum Huffman code length (DEFLATE's limit; keeps decode tables small).
pub const MAX_CODE_LEN: u32 = 15;

/// Reverse the low `len` bits of `code`.
#[inline]
fn reverse_bits(code: u32, len: u32) -> u32 {
    let mut v = 0u32;
    for i in 0..len {
        v |= ((code >> i) & 1) << (len - 1 - i);
    }
    v
}

/// Compute Huffman code lengths for `freqs`, limited to `MAX_CODE_LEN`.
///
/// Returns one length per symbol; unused symbols (zero frequency) get
/// length 0. If exactly one symbol is used it gets length 1 (a zero-length
/// code cannot be written to the stream).
///
/// Convenience wrapper over [`LengthBuilder`]; hot paths keep a builder
/// (and an output `Vec`) alive across calls to avoid its allocations.
pub fn build_code_lengths(freqs: &[u64]) -> Vec<u8> {
    let mut lengths = Vec::new();
    LengthBuilder::new().build_into(freqs, &mut lengths);
    lengths
}

/// Reusable scratch for length-limited Huffman construction.
///
/// The per-block tree build used to allocate a node arena and a fresh
/// `BinaryHeap` on every call; this builder keeps both (plus the scaled
/// frequency copy) across calls. The lengths produced are identical to
/// [`build_code_lengths`]'s: the heap's pop order is fully determined by
/// the `(freq, node_index)` keys, which are unique, so internal heap
/// layout differences cannot change the tree.
pub struct LengthBuilder {
    scaled: Vec<u64>,
    used: Vec<usize>,
    parent: Vec<usize>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    depths: Vec<u8>,
}

impl LengthBuilder {
    /// Create an empty builder; scratch is sized on first use.
    pub fn new() -> Self {
        LengthBuilder {
            scaled: Vec::new(),
            used: Vec::new(),
            parent: Vec::new(),
            heap: std::collections::BinaryHeap::new(),
            depths: Vec::new(),
        }
    }

    /// Compute code lengths for `freqs` into `lengths` (cleared first).
    ///
    /// Semantics match [`build_code_lengths`] exactly.
    pub fn build_into(&mut self, freqs: &[u64], lengths: &mut Vec<u8>) {
        assert!(!freqs.is_empty(), "need at least one symbol");
        lengths.clear();
        lengths.resize(freqs.len(), 0);
        self.used.clear();
        self.used.extend((0..freqs.len()).filter(|&s| freqs[s] > 0));
        match self.used.len() {
            0 => return,
            1 => {
                lengths[self.used[0]] = 1;
                return;
            }
            _ => {}
        }

        self.scaled.clear();
        self.scaled.extend_from_slice(freqs);
        loop {
            self.huffman_depths();
            let max = self.depths.iter().copied().max().unwrap_or(0);
            if u32::from(max) <= MAX_CODE_LEN {
                for (&s, &l) in self.used.iter().zip(self.depths.iter()) {
                    lengths[s] = l;
                }
                return;
            }
            // Flatten the distribution and retry; terminates because all
            // frequencies converge to 1 (perfectly balanced tree).
            for f in self.scaled.iter_mut() {
                if *f > 0 {
                    *f = (*f).div_ceil(2);
                }
            }
        }
    }

    /// Plain Huffman tree construction over the `used` symbols of
    /// `scaled`; leaves depth-per-used-symbol in `self.depths`.
    fn huffman_depths(&mut self) {
        let LengthBuilder { scaled, used, parent, heap, depths } = self;
        // Node arena: leaves first, then internal nodes.
        let n = used.len();
        debug_assert!(n >= 2);
        parent.clear();
        parent.resize(2 * n - 1, usize::MAX);
        // Min-heap of (freq, node_index); tie-break on node index for
        // determinism across platforms.
        heap.clear();
        heap.extend(used.iter().enumerate().map(|(i, &s)| std::cmp::Reverse((scaled[s], i))));
        let mut next = n;
        while heap.len() > 1 {
            let std::cmp::Reverse((fa, a)) = heap.pop().unwrap();
            let std::cmp::Reverse((fb, b)) = heap.pop().unwrap();
            parent[a] = next;
            parent[b] = next;
            heap.push(std::cmp::Reverse((fa + fb, next)));
            next += 1;
        }
        // Depth of each leaf = chain length to the root.
        depths.clear();
        depths.extend((0..n).map(|leaf| {
            let mut d = 0u8;
            let mut node = leaf;
            while parent[node] != usize::MAX {
                node = parent[node];
                d += 1;
            }
            d
        }));
    }

    /// Summed backing capacities (for allocation-event accounting).
    pub fn capacity(&self) -> usize {
        self.scaled.capacity()
            + self.used.capacity()
            + self.parent.capacity()
            + self.heap.capacity()
            + self.depths.capacity()
    }
}

impl Default for LengthBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Encoder table: canonical codes, stored bit-reversed for LSB-first output.
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<u32>,
    lens: Vec<u8>,
}

impl Encoder {
    /// Build the encoder from canonical code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let mut e = Encoder::empty();
        e.rebuild(lengths);
        e
    }

    /// An encoder with no symbols, as a target for [`Encoder::rebuild`].
    pub fn empty() -> Self {
        Encoder { codes: Vec::new(), lens: Vec::new() }
    }

    /// Rebuild the table in place from new code lengths, reusing the
    /// existing backing storage. Equivalent to `*self = from_lengths(..)`
    /// without the two allocations per block.
    pub fn rebuild(&mut self, lengths: &[u8]) {
        canonical_codes_into(lengths, &mut self.codes);
        self.lens.clear();
        self.lens.extend_from_slice(lengths);
    }

    /// Summed backing capacities (for allocation-event accounting).
    pub fn capacity(&self) -> usize {
        self.codes.capacity() + self.lens.capacity()
    }

    /// Emit `symbol` into `w`.
    #[inline]
    pub fn write(&self, w: &mut BitWriter, symbol: usize) {
        let len = self.lens[symbol];
        debug_assert!(len > 0, "encoding symbol {symbol} with zero-length code");
        w.write_bits(self.codes[symbol] as u64, u32::from(len));
    }

    /// Code length of `symbol` in bits (0 = symbol unused).
    #[inline]
    pub fn len(&self, symbol: usize) -> u8 {
        self.lens[symbol]
    }
}

/// Assign canonical codes (shorter codes first, then by symbol index) and
/// return them bit-reversed, ready for LSB-first emission.
fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let mut codes = Vec::new();
    canonical_codes_into(lengths, &mut codes);
    codes
}

/// [`canonical_codes`] into a reused buffer; the count arrays are fixed
/// stack arrays (lengths are capped at [`MAX_CODE_LEN`]), so a warm call
/// is allocation-free.
fn canonical_codes_into(lengths: &[u8], codes: &mut Vec<u32>) {
    let max_len = lengths.iter().copied().max().unwrap_or(0) as u32;
    assert!(max_len <= MAX_CODE_LEN, "code length exceeds limit");
    let mut bl_count = [0u32; MAX_CODE_LEN as usize + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = [0u32; MAX_CODE_LEN as usize + 2];
    let mut code = 0u32;
    for bits in 1..=max_len as usize {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    codes.clear();
    codes.extend(lengths.iter().map(|&l| {
        if l == 0 {
            0
        } else {
            let c = next_code[l as usize];
            next_code[l as usize] += 1;
            reverse_bits(c, u32::from(l))
        }
    }));
}

/// Table-driven decoder: one lookup of `max_len` peeked bits per symbol.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `(symbol, code_len)` per `max_len`-bit window value.
    table: Vec<(u16, u8)>,
    max_len: u32,
}

/// Sentinel for unmapped windows (invalid codes).
const INVALID: (u16, u8) = (u16::MAX, 0);

impl Decoder {
    /// Build the decoder from canonical code lengths.
    ///
    /// Errors if the lengths describe an over-subscribed code (would decode
    /// ambiguously), which indicates a corrupt header.
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, DecompressError> {
        let max_len = u32::from(lengths.iter().copied().max().unwrap_or(0));
        if max_len == 0 {
            return Ok(Decoder { table: Vec::new(), max_len: 0 });
        }
        if max_len > MAX_CODE_LEN {
            return Err(DecompressError::Malformed("code length exceeds limit"));
        }
        // Kraft check: an over-subscribed set of lengths is corrupt.
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (MAX_CODE_LEN - u32::from(l)))
            .sum();
        if kraft > 1u64 << MAX_CODE_LEN {
            return Err(DecompressError::Malformed("over-subscribed Huffman code"));
        }
        let codes = canonical_codes(lengths);
        let mut table = vec![INVALID; 1usize << max_len];
        for (sym, (&len, &code)) in lengths.iter().zip(codes.iter()).enumerate() {
            if len == 0 {
                continue;
            }
            let len32 = u32::from(len);
            // The reversed code occupies the low `len` bits of the window;
            // every setting of the remaining high bits maps to this symbol.
            let stride = 1usize << len32;
            let mut w = code as usize;
            while w < table.len() {
                table[w] = (sym as u16, len);
                w += stride;
            }
        }
        Ok(Decoder { table, max_len })
    }

    /// Decode one symbol from `r`.
    #[inline]
    pub fn read(&self, r: &mut BitReader<'_>) -> Result<usize, DecompressError> {
        if self.max_len == 0 {
            return Err(DecompressError::Malformed("decoding with empty code"));
        }
        let window = r.peek_bits(self.max_len) as usize;
        let (sym, len) = self.table[window];
        if len == 0 {
            return Err(DecompressError::Malformed("invalid Huffman code"));
        }
        r.consume(u32::from(len))?;
        Ok(sym as usize)
    }
}

// ---------------------------------------------------------------------------
// Code-length header serialization (DEFLATE-style run-length tokens, emitted
// as raw 5-bit tokens — compact enough without a second Huffman layer).
// ---------------------------------------------------------------------------

const TOK_COPY_PREV: u64 = 16; // repeat previous length 3–6 times (2 extra bits)
const TOK_ZERO_SHORT: u64 = 17; // 3–10 zeros (3 extra bits)
const TOK_ZERO_LONG: u64 = 18; // 11–138 zeros (7 extra bits)

/// Serialize a code-length array into `w`.
pub fn write_lengths(w: &mut BitWriter, lengths: &[u8]) {
    let mut i = 0usize;
    while i < lengths.len() {
        let l = lengths[i];
        // Count the run of equal lengths starting here.
        let mut run = 1usize;
        while i + run < lengths.len() && lengths[i + run] == l {
            run += 1;
        }
        if l == 0 {
            let mut left = run;
            while left >= 11 {
                let take = left.min(138);
                w.write_bits(TOK_ZERO_LONG, 5);
                w.write_bits((take - 11) as u64, 7);
                left -= take;
            }
            if left >= 3 {
                w.write_bits(TOK_ZERO_SHORT, 5);
                w.write_bits((left - 3) as u64, 3);
                left = 0;
            }
            for _ in 0..left {
                w.write_bits(0, 5);
            }
        } else {
            // Literal once, then copy-prev runs.
            w.write_bits(u64::from(l), 5);
            let mut left = run - 1;
            while left >= 3 {
                let take = left.min(6);
                w.write_bits(TOK_COPY_PREV, 5);
                w.write_bits((take - 3) as u64, 2);
                left -= take;
            }
            for _ in 0..left {
                w.write_bits(u64::from(l), 5);
            }
        }
        i += run;
    }
}

/// Deserialize `count` code lengths from `r`.
pub fn read_lengths(r: &mut BitReader<'_>, count: usize) -> Result<Vec<u8>, DecompressError> {
    let mut lengths = Vec::with_capacity(count);
    while lengths.len() < count {
        let tok = r.read_bits(5)?;
        match tok {
            0..=15 => lengths.push(tok as u8),
            TOK_COPY_PREV => {
                let rep = 3 + r.read_bits(2)? as usize;
                let prev = *lengths
                    .last()
                    .ok_or(DecompressError::Malformed("copy-prev with no previous length"))?;
                for _ in 0..rep {
                    lengths.push(prev);
                }
            }
            TOK_ZERO_SHORT => {
                let rep = 3 + r.read_bits(3)? as usize;
                lengths.extend(std::iter::repeat_n(0u8, rep));
            }
            TOK_ZERO_LONG => {
                let rep = 11 + r.read_bits(7)? as usize;
                lengths.extend(std::iter::repeat_n(0u8, rep));
            }
            _ => return Err(DecompressError::Malformed("invalid length token")),
        }
    }
    if lengths.len() != count {
        return Err(DecompressError::Malformed("length run overflows table"));
    }
    Ok(lengths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_symbols(freqs: &[u64], stream: &[usize]) {
        let lengths = build_code_lengths(freqs);
        let enc = Encoder::from_lengths(&lengths);
        let mut w = BitWriter::new();
        write_lengths(&mut w, &lengths);
        for &s in stream {
            enc.write(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let read_lens = read_lengths(&mut r, freqs.len()).unwrap();
        assert_eq!(read_lens, lengths);
        let dec = Decoder::from_lengths(&read_lens).unwrap();
        for &s in stream {
            assert_eq!(dec.read(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs: Vec<u64> = (1..=64).map(|i| i * i).collect();
        let lengths = build_code_lengths(&freqs);
        let kraft: f64 = lengths.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-i32::from(l))).sum();
        assert!(kraft <= 1.0 + 1e-12, "kraft = {kraft}");
    }

    #[test]
    fn lengths_respect_limit_under_skew() {
        // Fibonacci-like frequencies force deep trees in unlimited Huffman.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_code_lengths(&freqs);
        assert!(lengths.iter().all(|&l| u32::from(l) <= MAX_CODE_LEN));
        // Still decodable.
        assert!(Decoder::from_lengths(&lengths).is_ok());
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let mut freqs = vec![1u64; 16];
        freqs[3] = 1000;
        let lengths = build_code_lengths(&freqs);
        let min = lengths.iter().copied().filter(|&l| l > 0).min().unwrap();
        assert_eq!(lengths[3], min);
    }

    #[test]
    fn single_symbol_alphabet() {
        let mut freqs = vec![0u64; 256];
        freqs[42] = 7;
        let lengths = build_code_lengths(&freqs);
        assert_eq!(lengths[42], 1);
        assert_eq!(lengths.iter().filter(|&&l| l > 0).count(), 1);
        roundtrip_symbols(&freqs, &[42, 42, 42, 42]);
    }

    #[test]
    fn empty_alphabet() {
        let freqs = vec![0u64; 16];
        let lengths = build_code_lengths(&freqs);
        assert!(lengths.iter().all(|&l| l == 0));
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let mut r = BitReader::new(&[0u8; 4]);
        assert!(dec.read(&mut r).is_err());
    }

    #[test]
    fn two_symbol_roundtrip() {
        let mut freqs = vec![0u64; 8];
        freqs[1] = 3;
        freqs[6] = 9;
        roundtrip_symbols(&freqs, &[1, 6, 6, 1, 6, 6, 6, 1]);
    }

    #[test]
    fn full_byte_alphabet_roundtrip() {
        let mut freqs = vec![0u64; 256];
        for (i, f) in freqs.iter_mut().enumerate() {
            *f = (i as u64 % 17) + 1;
        }
        let stream: Vec<usize> = (0..2000).map(|i| (i * 31) % 256).collect();
        roundtrip_symbols(&freqs, &stream);
    }

    #[test]
    fn length_header_roundtrip_with_long_zero_runs() {
        let mut lengths = vec![0u8; 300];
        lengths[0] = 5;
        lengths[150] = 5;
        lengths[151] = 5;
        lengths[152] = 5;
        lengths[153] = 5;
        lengths[299] = 2;
        let mut w = BitWriter::new();
        write_lengths(&mut w, &lengths);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(read_lengths(&mut r, 300).unwrap(), lengths);
    }

    #[test]
    fn oversubscribed_code_rejected() {
        // Three codes of length 1 cannot coexist.
        let lengths = [1u8, 1, 1];
        assert!(Decoder::from_lengths(&lengths).is_err());
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs: Vec<u64> = (0..32).map(|i| 1 + (i % 5) as u64 * 10).collect();
        let lengths = build_code_lengths(&freqs);
        let codes = canonical_codes(&lengths);
        // Check pairwise prefix-freedom over the *reversed* (stored) codes,
        // interpreting them in LSB-first read order.
        for a in 0..lengths.len() {
            for b in 0..lengths.len() {
                if a == b || lengths[a] == 0 || lengths[b] == 0 || lengths[a] > lengths[b] {
                    continue;
                }
                let mask = (1u32 << lengths[a]) - 1;
                assert!(
                    (codes[b] & mask != codes[a]),
                    "code {a} is a read-order prefix of code {b}"
                );
            }
        }
    }

    #[test]
    fn truncated_code_stream_detected() {
        let mut freqs = vec![0u64; 8];
        freqs[0] = 1;
        freqs[1] = 1;
        freqs[2] = 2;
        let lengths = build_code_lengths(&freqs);
        let enc = Encoder::from_lengths(&lengths);
        let mut w = BitWriter::new();
        for _ in 0..100 {
            enc.write(&mut w, 2);
        }
        let mut bytes = w.finish();
        bytes.truncate(2);
        let dec = Decoder::from_lengths(&lengths).unwrap();
        let mut r = BitReader::new(&bytes);
        let mut err = None;
        for _ in 0..100 {
            if let Err(e) = dec.read(&mut r) {
                err = Some(e);
                break;
            }
        }
        assert!(err.is_some(), "must eventually hit truncation");
    }
}
