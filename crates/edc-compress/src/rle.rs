//! Zero run-length coding of the move-to-front output, using bzip2's
//! RUNA/RUNB bijective base-2 scheme.
//!
//! MTF output is dominated by zeros (runs of identical bytes after the
//! BWT). Encoding a run of `n` zeros in bijective base 2 with digits
//! RUNA (=1) and RUNB (=2) costs only `⌊log2(n+1)⌋` symbols.
//!
//! ## Symbol space
//!
//! * `RUNA` (0) and `RUNB` (1) — zero-run digits,
//! * `2..=256` — MTF values `1..=255` shifted up by one,
//! * `EOB_SYM` (257) — end of block.

/// Zero-run digit with weight 1.
pub const RUNA: u16 = 0;
/// Zero-run digit with weight 2.
pub const RUNB: u16 = 1;
/// End-of-block symbol.
pub const EOB_SYM: u16 = 257;
/// Total symbol-space size (RUNA, RUNB, 255 shifted values, EOB).
pub const NUM_SYMBOLS: usize = 258;

/// Encode an MTF byte stream into RUNA/RUNB symbols (without the trailing
/// [`EOB_SYM`]; the container appends it).
pub fn zrle_encode(mtf: &[u8]) -> Vec<u16> {
    let mut out = Vec::with_capacity(mtf.len() / 2 + 8);
    let mut zero_run = 0usize;
    for &v in mtf {
        if v == 0 {
            zero_run += 1;
        } else {
            flush_zero_run(&mut out, &mut zero_run);
            out.push(u16::from(v) + 1);
        }
    }
    flush_zero_run(&mut out, &mut zero_run);
    out
}

/// Emit `run` zeros in bijective base 2: repeatedly take `(run+1)/2 - ...`;
/// digit RUNA adds `2^k`, digit RUNB adds `2^(k+1)` for the k-th digit.
fn flush_zero_run(out: &mut Vec<u16>, run: &mut usize) {
    let mut n = *run;
    while n > 0 {
        if n & 1 == 1 {
            out.push(RUNA);
            n = (n - 1) / 2;
        } else {
            out.push(RUNB);
            n = (n - 2) / 2;
        }
    }
    *run = 0;
}

/// Decode RUNA/RUNB symbols back into the MTF byte stream. Symbols must not
/// include [`EOB_SYM`].
///
/// `max_len` caps the decoded length: adversarial digit strings encode
/// astronomically long zero runs (each digit doubles the weight, so ~64
/// digits overflow a `usize` and a handful fewer exhaust memory), and the
/// caller always knows the real block length. Returns `None` if a symbol
/// is out of range or the output would exceed `max_len`.
pub fn zrle_decode(symbols: &[u16], max_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(symbols.len().min(max_len));
    let mut i = 0usize;
    while i < symbols.len() {
        let s = symbols[i];
        if s == RUNA || s == RUNB {
            // Gather the full run of digits with overflow-checked,
            // max_len-saturating arithmetic.
            let mut run = 0usize;
            let mut weight = 1usize;
            while i < symbols.len() && (symbols[i] == RUNA || symbols[i] == RUNB) {
                let add = if symbols[i] == RUNA { weight } else { weight.checked_mul(2)? };
                run = run.checked_add(add)?;
                if out.len().checked_add(run)? > max_len {
                    return None;
                }
                weight = weight.checked_mul(2)?;
                i += 1;
            }
            out.extend(std::iter::repeat_n(0u8, run));
        } else if (2..=256).contains(&s) {
            if out.len() >= max_len {
                return None;
            }
            out.push((s - 1) as u8);
            i += 1;
        } else {
            return None;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(mtf: &[u8]) {
        let sym = zrle_encode(mtf);
        assert_eq!(zrle_decode(&sym, mtf.len()).unwrap(), mtf);
    }

    #[test]
    fn empty() {
        assert!(zrle_encode(&[]).is_empty());
        assert_eq!(zrle_decode(&[], 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn single_values() {
        roundtrip(&[0]);
        roundtrip(&[1]);
        roundtrip(&[255]);
    }

    #[test]
    fn zero_runs_of_every_small_length() {
        for n in 0..100usize {
            let mtf: Vec<u8> = std::iter::repeat_n(0u8, n).chain([7u8]).collect();
            roundtrip(&mtf);
        }
    }

    #[test]
    fn long_zero_run_is_logarithmic() {
        let mtf = vec![0u8; 1_000_000];
        let sym = zrle_encode(&mtf);
        assert!(sym.len() <= 21, "1M zeros must fit in ~log2 symbols, got {}", sym.len());
        assert_eq!(zrle_decode(&sym, mtf.len()).unwrap(), mtf);
    }

    #[test]
    fn mixed_stream() {
        let mtf = [0, 0, 0, 5, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 255, 0];
        roundtrip(&mtf);
    }

    #[test]
    fn nonzero_values_shift_by_one() {
        let sym = zrle_encode(&[1, 255]);
        assert_eq!(sym, vec![2, 256]);
    }

    #[test]
    fn bijective_base2_examples() {
        // run 1 => RUNA; run 2 => RUNB; run 3 => RUNA RUNA; run 4 => RUNB RUNA
        assert_eq!(zrle_encode(&[0]), vec![RUNA]);
        assert_eq!(zrle_encode(&[0, 0]), vec![RUNB]);
        assert_eq!(zrle_encode(&[0, 0, 0]), vec![RUNA, RUNA]);
        assert_eq!(zrle_encode(&[0, 0, 0, 0]), vec![RUNB, RUNA]);
    }

    #[test]
    fn out_of_range_symbol_rejected() {
        assert!(zrle_decode(&[300], 16).is_none());
        assert!(zrle_decode(&[EOB_SYM], 16).is_none());
    }

    #[test]
    fn run_exceeding_max_len_rejected() {
        // A 4-zero run against a 3-byte cap fails instead of over-producing.
        let sym = zrle_encode(&[0, 0, 0, 0]);
        assert!(zrle_decode(&sym, 3).is_none());
        assert!(zrle_decode(&sym, 4).is_some());
        // Values are capped the same way.
        assert!(zrle_decode(&[2, 2], 1).is_none());
    }

    #[test]
    fn huge_digit_string_does_not_overflow() {
        // 200 RUNB digits encode a run of ~2^201 zeros; the old decoder
        // overflowed `weight`/`run` (debug panic, release wrap). The capped
        // decoder must reject it cheaply for any max_len.
        let sym = vec![RUNB; 200];
        assert!(zrle_decode(&sym, usize::MAX).is_none());
        assert!(zrle_decode(&sym, 4096).is_none());
    }

    #[test]
    fn adjacent_runs_and_values() {
        let mut mtf = Vec::new();
        for i in 0..50 {
            mtf.extend(std::iter::repeat_n(0u8, i));
            mtf.push((i % 254 + 1) as u8);
        }
        roundtrip(&mtf);
    }
}
