//! `edc-zip` — compress and decompress files with the from-scratch codecs.
//!
//! ```text
//! edc-zip c gzip  input.txt output.edcf    # compress (lzf|lz4|gzip|bzip2)
//! edc-zip d       output.edcf restored.txt # decompress (codec from header)
//! edc-zip i       output.edcf              # inspect header
//! edc-zip bench   input.txt                # try every codec, report ratios
//! ```
//!
//! Mostly a demonstration that the codec substrate is a complete,
//! stand-alone compression library — and a handy way to eyeball ratios on
//! real files.

use edc_compress::{codec_by_id, frame, CodecId};
use std::process::exit;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage:\n  edc-zip c <lzf|lz4|gzip|bzip2> <input> <output>\n  edc-zip d <input> <output>\n  edc-zip i <input>\n  edc-zip bench <input>"
    );
    exit(2);
}

fn codec_named(name: &str) -> CodecId {
    match name.to_ascii_lowercase().as_str() {
        "lzf" => CodecId::Lzf,
        "lz4" => CodecId::Lz4,
        "gzip" | "deflate" => CodecId::Deflate,
        "bzip2" | "bwt" => CodecId::Bwt,
        "none" | "store" => CodecId::None,
        other => {
            eprintln!("unknown codec {other:?}");
            exit(2);
        }
    }
}

fn read(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("reading {path}: {e}");
        exit(1);
    })
}

fn write(path: &str, data: &[u8]) {
    std::fs::write(path, data).unwrap_or_else(|e| {
        eprintln!("writing {path}: {e}");
        exit(1);
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("c") if args.len() == 4 => {
            let codec = codec_named(&args[1]);
            let data = read(&args[2]);
            let t0 = Instant::now();
            let framed = frame::compress(codec, &data);
            let dt = t0.elapsed().as_secs_f64();
            write(&args[3], &framed);
            eprintln!(
                "{} -> {} bytes ({:.2}x) with {} in {:.2} s ({:.1} MB/s)",
                data.len(),
                framed.len(),
                data.len() as f64 / framed.len() as f64,
                codec.name(),
                dt,
                data.len() as f64 / 1e6 / dt.max(1e-9),
            );
        }
        Some("d") if args.len() == 3 => {
            let framed = read(&args[1]);
            match frame::decompress(&framed) {
                Ok((codec, data)) => {
                    write(&args[2], &data);
                    eprintln!("restored {} bytes ({} stream)", data.len(), codec.name());
                }
                Err(e) => {
                    eprintln!("decompress failed: {e}");
                    exit(1);
                }
            }
        }
        Some("i") if args.len() == 2 => {
            let framed = read(&args[1]);
            match frame::inspect(&framed) {
                Ok((codec, original, payload)) => {
                    println!(
                        "codec {} | original {original} bytes | payload {payload} bytes | ratio {:.3}",
                        codec.name(),
                        original as f64 / payload.max(1) as f64
                    );
                }
                Err(e) => {
                    eprintln!("not a valid frame: {e}");
                    exit(1);
                }
            }
        }
        Some("bench") if args.len() == 2 => {
            let data = read(&args[1]);
            println!(
                "{:>8} {:>12} {:>8} {:>12} {:>12}",
                "codec", "compressed", "ratio", "comp_MB/s", "decomp_MB/s"
            );
            for id in CodecId::ALL_CODECS {
                let Some(codec) = codec_by_id(id) else {
                    eprintln!("codec {} is unavailable", id.name());
                    exit(1);
                };
                let t0 = Instant::now();
                let c = codec.compress(&data);
                let ct = t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                let d = match codec.decompress(&c, data.len()) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("{}: decompress of freshly compressed data failed: {e}", id.name());
                        exit(1);
                    }
                };
                let dt = t0.elapsed().as_secs_f64();
                if d != data {
                    eprintln!("{}: round-trip produced different bytes", id.name());
                    exit(1);
                }
                println!(
                    "{:>8} {:>12} {:>8.3} {:>12.1} {:>12.1}",
                    id.name(),
                    c.len(),
                    data.len() as f64 / c.len() as f64,
                    data.len() as f64 / 1e6 / ct.max(1e-9),
                    data.len() as f64 / 1e6 / dt.max(1e-9),
                );
            }
        }
        _ => usage(),
    }
}
