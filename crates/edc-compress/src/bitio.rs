//! LSB-first bit-level I/O used by the Huffman-coded codecs
//! ([`crate::deflate`] and [`crate::bwt`]).
//!
//! Bits are packed least-significant-bit first within each byte, the same
//! convention DEFLATE uses: the first bit written lands in bit 0 of the
//! first byte. Codes are written with their own most-significant bit last,
//! so the reader can consume them by repeated single-bit reads or by table
//! lookup over a right-aligned window.

use crate::DecompressError;

/// Accumulates bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bit accumulator; valid low `nbits` bits.
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer that reuses `out` (cleared) as its backing buffer.
    pub fn with_buffer(mut out: Vec<u8>) -> Self {
        out.clear();
        Self { out, acc: 0, nbits: 0 }
    }

    /// Append the low `count` bits of `bits` (LSB first). `count <= 57`.
    #[inline]
    pub fn write_bits(&mut self, bits: u64, count: u32) {
        debug_assert!(count <= 57, "write_bits supports at most 57 bits per call");
        debug_assert!(count == 64 || bits < (1u64 << count), "value wider than count");
        // `nbits < 8` on entry (whole bytes flush below), so the widest
        // write fills the accumulator to at most 7 + 57 = 64 bits.
        self.acc |= bits << self.nbits;
        self.nbits += count;
        if self.nbits >= 8 {
            // Flush every whole byte in one copy — the little-endian byte
            // order of `acc` is exactly the LSB-first stream order.
            let whole = (self.nbits / 8) as usize;
            self.out.extend_from_slice(&self.acc.to_le_bytes()[..whole]);
            let shift = whole * 8;
            self.acc = if shift == 64 { 0 } else { self.acc >> shift };
            self.nbits -= shift as u32;
        }
    }

    /// Append a full byte (equivalent to `write_bits(byte, 8)`).
    #[inline]
    pub fn write_byte(&mut self, byte: u8) {
        self.write_bits(byte as u64, 8);
    }

    /// Number of whole bytes that `finish` would currently produce.
    pub fn byte_len(&self) -> usize {
        self.out.len() + usize::from(self.nbits > 0)
    }

    /// Flush any partial byte (zero-padded high bits) and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xFF) as u8);
        }
        self.out
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    input: &'a [u8],
    /// Next byte to load.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Create a reader over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        Self { input, pos: 0, acc: 0, nbits: 0 }
    }

    /// Ensure at least `count` bits are buffered, if available.
    #[inline]
    fn refill(&mut self, count: u32) {
        while self.nbits < count && self.pos < self.input.len() {
            self.acc |= (self.input[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `count` bits (LSB-first). Errors with [`DecompressError::Truncated`]
    /// if the stream has fewer bits left.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Result<u64, DecompressError> {
        debug_assert!(count <= 57);
        self.refill(count);
        if self.nbits < count {
            return Err(DecompressError::Truncated);
        }
        let v = self.acc & ((1u64 << count) - 1);
        self.acc >>= count;
        self.nbits -= count;
        Ok(v)
    }

    /// Peek up to `count` bits without consuming; missing bits read as zero.
    ///
    /// Used by table-driven Huffman decoding, where the final code of a
    /// stream may be shorter than the peek window.
    #[inline]
    pub fn peek_bits(&mut self, count: u32) -> u64 {
        debug_assert!(count <= 57);
        self.refill(count);
        self.acc & ((1u64 << count) - 1)
    }

    /// Consume `count` bits previously peeked. Errors if fewer are available.
    #[inline]
    pub fn consume(&mut self, count: u32) -> Result<(), DecompressError> {
        if self.nbits < count {
            return Err(DecompressError::Truncated);
        }
        self.acc >>= count;
        self.nbits -= count;
        Ok(())
    }

    /// Number of bits still available (buffered + unread bytes).
    pub fn bits_remaining(&self) -> usize {
        self.nbits as usize + (self.input.len() - self.pos) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_writer_produces_empty_output() {
        assert!(BitWriter::new().finish().is_empty());
    }

    #[test]
    fn single_bits_round_trip() {
        let pattern = [1u64, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bits(b, 1);
        }
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bits(1).unwrap(), b);
        }
    }

    #[test]
    fn mixed_width_round_trip() {
        let fields: &[(u64, u32)] = &[
            (0b101, 3),
            (0xFFFF, 16),
            (0, 1),
            (0x1234_5678, 32),
            (0b1, 1),
            (0x1F_FFFF_FFFF_FFFF, 53),
            (42, 7),
        ];
        let mut w = BitWriter::new();
        for &(v, n) in fields {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in fields {
            assert_eq!(r.read_bits(n).unwrap(), v, "field of width {n}");
        }
    }

    #[test]
    fn lsb_first_byte_layout() {
        let mut w = BitWriter::new();
        // First-written bit must be bit 0 of the first byte.
        w.write_bits(1, 1);
        w.write_bits(0, 1);
        w.write_bits(1, 1);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0000_0101]);
    }

    #[test]
    fn read_past_end_is_truncated() {
        let mut r = BitReader::new(&[0xAB]);
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
        assert_eq!(r.read_bits(1), Err(DecompressError::Truncated));
    }

    #[test]
    fn peek_does_not_consume_and_pads_with_zero() {
        let mut r = BitReader::new(&[0b0000_0001]);
        assert_eq!(r.peek_bits(16), 1); // missing high bits read as 0
        assert_eq!(r.peek_bits(16), 1);
        assert_eq!(r.read_bits(8).unwrap(), 1);
        assert_eq!(r.bits_remaining(), 0);
    }

    #[test]
    fn consume_after_peek() {
        let mut r = BitReader::new(&[0b1011_0110, 0xFF]);
        let p = r.peek_bits(4);
        assert_eq!(p, 0b0110);
        r.consume(4).unwrap();
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.consume(1).is_err());
    }

    #[test]
    fn byte_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.byte_len(), 0);
        w.write_bits(0b11, 2);
        assert_eq!(w.byte_len(), 1);
        w.write_bits(0x3F, 6);
        assert_eq!(w.byte_len(), 1);
        w.write_bits(1, 1);
        assert_eq!(w.byte_len(), 2);
    }

    #[test]
    fn write_byte_equivalence() {
        let mut a = BitWriter::new();
        a.write_bits(3, 2);
        a.write_byte(0xC3);
        let mut b = BitWriter::new();
        b.write_bits(3, 2);
        b.write_bits(0xC3, 8);
        assert_eq!(a.finish(), b.finish());
    }
}
