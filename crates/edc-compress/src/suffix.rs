//! Cyclic-rotation sorting for the Burrows–Wheeler transform.
//!
//! The BWT sorts all `n` cyclic rotations of the block. We use the classic
//! prefix-doubling algorithm over cyclic shifts: maintain a rank per
//! position for the first `2^k` characters of each rotation and double `k`
//! each round, re-sorting by `(rank[i], rank[i + 2^k mod n])` pairs —
//! `O(n log² n)` total, allocation-light, and fully deterministic. For the
//! 4 KiB–128 KiB blocks EDC compresses this is comfortably fast.

/// Sort all cyclic rotations of `data`; returns the start index of each
/// rotation in lexicographic order.
pub fn sort_rotations(data: &[u8]) -> Vec<u32> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    debug_assert!(n <= u32::MAX as usize);

    // Initial ranks: the byte values themselves.
    let mut rank: Vec<u32> = data.iter().map(|&b| u32::from(b)).collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut new_rank = vec![0u32; n];

    let mut k = 1usize; // current prefix length already ranked
    loop {
        // Sort positions by (rank[i], rank[(i + k) % n]).
        let key = |i: u32| -> (u32, u32) {
            let i = i as usize;
            let j = if i + k >= n { i + k - n } else { i + k };
            (rank[i], rank[j])
        };
        order.sort_unstable_by_key(|&i| key(i));

        // Re-rank.
        new_rank[order[0] as usize] = 0;
        let mut r = 0u32;
        for w in 1..n {
            if key(order[w]) != key(order[w - 1]) {
                r += 1;
            }
            new_rank[order[w] as usize] = r;
        }
        std::mem::swap(&mut rank, &mut new_rank);
        if r as usize == n - 1 {
            break; // all rotations distinct
        }
        k *= 2;
        if k >= n {
            // Ranks cover the full rotation; remaining ties are genuinely
            // equal rotations (periodic input). Their relative order does
            // not affect the BWT output, but one more deterministic
            // tie-break keeps `order` canonical: break ties by index.
            order.sort_unstable_by_key(|&i| (rank[i as usize], i));
            break;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: materialize and sort the rotations.
    fn naive(data: &[u8]) -> Vec<u32> {
        let n = data.len();
        let mut rots: Vec<(Vec<u8>, u32)> = (0..n)
            .map(|i| {
                let mut r = Vec::with_capacity(n);
                r.extend_from_slice(&data[i..]);
                r.extend_from_slice(&data[..i]);
                (r, i as u32)
            })
            .collect();
        rots.sort();
        rots.into_iter().map(|(_, i)| i).collect()
    }

    /// Compare rotation content (periodic inputs have equal rotations whose
    /// index order is implementation-defined).
    fn assert_equivalent(data: &[u8], got: &[u32], want: &[u32]) {
        let rot = |i: u32| -> Vec<u8> {
            let i = i as usize;
            data[i..].iter().chain(&data[..i]).copied().collect()
        };
        assert_eq!(got.len(), want.len());
        for (&g, &w) in got.iter().zip(want) {
            assert_eq!(rot(g), rot(w), "rotation content mismatch");
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(sort_rotations(b"").is_empty());
        assert_eq!(sort_rotations(b"x"), vec![0]);
    }

    #[test]
    fn banana() {
        let data = b"banana";
        assert_equivalent(data, &sort_rotations(data), &naive(data));
    }

    #[test]
    fn mississippi() {
        let data = b"mississippi";
        assert_equivalent(data, &sort_rotations(data), &naive(data));
    }

    #[test]
    fn all_equal_bytes_periodic() {
        let data = vec![b'z'; 64];
        let got = sort_rotations(&data);
        // All rotations identical; sorted order must still be a permutation.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64u32).collect::<Vec<_>>());
    }

    #[test]
    fn short_period_input() {
        let data: Vec<u8> = b"abab".iter().copied().cycle().take(32).collect();
        let got = sort_rotations(&data);
        assert_equivalent(&data, &got, &naive(&data));
    }

    #[test]
    fn matches_naive_on_pseudorandom() {
        let mut x = 0xDEAD_BEEFu32;
        for len in [2usize, 3, 5, 17, 64, 257] {
            let data: Vec<u8> = (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    (x & 0x3) as u8 // tiny alphabet maximizes ties
                })
                .collect();
            assert_equivalent(&data, &sort_rotations(&data), &naive(&data));
        }
    }

    #[test]
    fn output_is_sorted_rotation_order() {
        let data = b"the theta thesis";
        let order = sort_rotations(data);
        let rot = |i: u32| -> Vec<u8> {
            let i = i as usize;
            data[i..].iter().chain(&data[..i]).copied().collect()
        };
        for w in 1..order.len() {
            assert!(rot(order[w - 1]) <= rot(order[w]), "order not sorted at {w}");
        }
    }
}
