//! Lz4-class codec: token-based fast LZ in the style of the LZ4 block
//! format.
//!
//! Like [`crate::lzf`] this sits at the fast end of the ratio/speed
//! trade-off, but with the LZ4 container layout: each *sequence* is
//! `token · [literal-length extension] · literals · offset(2B LE) ·
//! [match-length extension]`, with 4-bit length nibbles in the token and
//! `255`-valued extension bytes. Minimum match length is 4; the final
//! sequence carries literals only.

use crate::state::{common_prefix_len, with_thread_state, CompressorState};
use crate::{Codec, CodecId, DecompressError};

const MIN_MATCH: usize = 4;
const MAX_OFFSET: usize = u16::MAX as usize;
const HASH_BITS: u32 = 15;

/// Lz4-class fast LZ codec. See the [module docs](self) for the format.
#[derive(Debug, Default, Clone, Copy)]
pub struct Lz4 {
    _private: (),
}

impl Lz4 {
    /// Create the codec (stateless; `const` so it can back a `static`).
    pub const fn new() -> Self {
        Self { _private: () }
    }
}

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Write an LZ4-style length: `nibble` already holds `min(len, 15)`; emit
/// extension bytes for the remainder.
#[inline]
fn push_length_ext(out: &mut Vec<u8>, mut rest: usize) {
    while rest >= 255 {
        out.push(255);
        rest -= 255;
    }
    out.push(rest as u8);
}

#[inline]
fn read_length_ext(input: &[u8], i: &mut usize, base: usize) -> Result<usize, DecompressError> {
    let mut len = base;
    if base == 15 {
        loop {
            if *i >= input.len() {
                return Err(DecompressError::Truncated);
            }
            let b = input[*i];
            *i += 1;
            len += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    Ok(len)
}

impl Codec for Lz4 {
    fn id(&self) -> CodecId {
        CodecId::Lz4
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        self.compress_into(input, &mut out);
        out
    }

    fn compress_into(&self, input: &[u8], out: &mut Vec<u8>) {
        with_thread_state(|state| self.compress_with(state, input, out));
    }

    fn compress_with(&self, state: &mut CompressorState, input: &[u8], out: &mut Vec<u8>) {
        out.clear();
        let n = input.len();
        out.reserve(n / 2 + 16);
        if n < MIN_MATCH + 1 {
            // Single literal-only sequence.
            emit_sequence(out, input, 0, n, None);
            return;
        }
        // Epoch-stamped table: previous inputs' entries read as empty
        // without a per-call memset (see `crate::state::StampTable`).
        let table = &mut state.lz4_table;
        let cap0 = table.capacity();
        table.begin(1 << HASH_BITS);
        let mut lit_start = 0usize;
        let mut i = 0usize;
        let limit = n - MIN_MATCH;
        while i <= limit {
            let cand = table.replace(hash4(input, i), i);
            let cand = match cand {
                Some(c)
                    if i - c <= MAX_OFFSET
                        && input[c..c + MIN_MATCH] == input[i..i + MIN_MATCH] =>
                {
                    c
                }
                _ => {
                    i += 1;
                    continue;
                }
            };
            // Word-wide extension; first MIN_MATCH bytes already verified.
            let max_len = n - i;
            let len = common_prefix_len(input, cand, i, max_len);
            emit_sequence(out, input, lit_start, i, Some((i - cand, len)));
            let match_end = i + len;
            let insert_to = match_end.min(limit + 1);
            let mut j = i + 1;
            while j < insert_to {
                table.set(hash4(input, j), j);
                j += 2; // sparser insertion than Lzf: trades ratio for speed
            }
            i = match_end;
            lit_start = i;
        }
        // Trailing literal-only sequence (always emitted, even if empty, so
        // the decoder sees a well-formed final token when there are no
        // trailing literals and the stream is non-empty).
        if lit_start < n || out.is_empty() {
            emit_sequence(out, input, lit_start, n, None);
        }
        if state.lz4_table.capacity() != cap0 {
            state.alloc_events += 1;
        }
    }

    fn decompress(&self, input: &[u8], expected_len: usize) -> Result<Vec<u8>, DecompressError> {
        let mut out = Vec::new();
        self.decompress_into(input, expected_len, &mut out)?;
        Ok(out)
    }

    fn decompress_into(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), DecompressError> {
        out.clear();
        // See `Lzf::decompress_into`: never pre-allocate an untrusted length.
        out.reserve(expected_len.min(16 << 20));
        if input.is_empty() {
            if expected_len == 0 {
                return Ok(());
            }
            return Err(DecompressError::Truncated);
        }
        let mut i = 0usize;
        while i < input.len() {
            let token = input[i];
            i += 1;
            let lit_len = read_length_ext(input, &mut i, (token >> 4) as usize)?;
            if i + lit_len > input.len() {
                return Err(DecompressError::Truncated);
            }
            if out.len() + lit_len > expected_len {
                return Err(DecompressError::OutputOverflow { expected: expected_len });
            }
            out.extend_from_slice(&input[i..i + lit_len]);
            i += lit_len;
            if i == input.len() {
                break; // final, literal-only sequence
            }
            if i + 2 > input.len() {
                return Err(DecompressError::Truncated);
            }
            let offset = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
            i += 2;
            if offset == 0 {
                return Err(DecompressError::Malformed("zero match offset"));
            }
            let match_len = read_length_ext(input, &mut i, (token & 0x0F) as usize)? + MIN_MATCH;
            if offset > out.len() {
                return Err(DecompressError::BadReference { at: out.len(), offset });
            }
            if out.len() + match_len > expected_len {
                return Err(DecompressError::OutputOverflow { expected: expected_len });
            }
            let src = out.len() - offset;
            for k in 0..match_len {
                let b = out[src + k];
                out.push(b);
            }
        }
        if out.len() != expected_len {
            return Err(DecompressError::SizeMismatch { expected: expected_len, actual: out.len() });
        }
        Ok(())
    }
}

/// Emit one sequence: literals `input[lit_start..lit_end]` then an optional
/// `(offset, len)` match.
fn emit_sequence(
    out: &mut Vec<u8>,
    input: &[u8],
    lit_start: usize,
    lit_end: usize,
    m: Option<(usize, usize)>,
) {
    let lit_len = lit_end - lit_start;
    let lit_nib = lit_len.min(15) as u8;
    let match_nib = match m {
        Some((_, len)) => (len - MIN_MATCH).min(15) as u8,
        None => 0,
    };
    out.push(lit_nib << 4 | match_nib);
    if lit_len >= 15 {
        push_length_ext(out, lit_len - 15);
    }
    out.extend_from_slice(&input[lit_start..lit_end]);
    if let Some((offset, len)) = m {
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if len - MIN_MATCH >= 15 {
            push_length_ext(out, len - MIN_MATCH - 15);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let c = Lz4::new().compress(data);
        Lz4::new().decompress(&c, data.len()).expect("round trip")
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(b""), b"");
    }

    #[test]
    fn tiny_inputs() {
        for n in 1..=6 {
            let data: Vec<u8> = (0..n as u8).map(|b| b.wrapping_mul(37)).collect();
            assert_eq!(roundtrip(&data), data);
        }
    }

    #[test]
    fn all_zero_block_compresses_hard() {
        let data = vec![0u8; 4096];
        let c = Lz4::new().compress(&data);
        assert!(c.len() < 64, "got {}", c.len());
        assert_eq!(Lz4::new().decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn long_literal_run_extension_bytes() {
        // >15+255 distinct literals exercises multi-byte length extension.
        let data: Vec<u8> = (0..300u32).map(|i| (i * 97 % 256) as u8).collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn long_match_extension_bytes() {
        // One long repeated region exercises match-length extensions.
        let mut data = b"seed".to_vec();
        data.extend(std::iter::repeat_n(b'q', 1000));
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn overlapping_copy() {
        let mut data = Vec::new();
        for _ in 0..500 {
            data.extend_from_slice(b"ab");
        }
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn text_compresses() {
        let data: Vec<u8> = b"flash based storage systems benefit from compression "
            .iter()
            .copied()
            .cycle()
            .take(16384)
            .collect();
        let c = Lz4::new().compress(&data);
        assert!(c.len() < data.len() / 4);
        assert_eq!(Lz4::new().decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn zero_offset_rejected() {
        // token: 0 literals, match nibble 0 => match len 4, offset 0 (invalid).
        let stream = [0x00u8, 0x00, 0x00];
        let err = Lz4::new().decompress(&stream, 4).unwrap_err();
        assert_eq!(err, DecompressError::Malformed("zero match offset"));
    }

    #[test]
    fn reference_before_start_rejected() {
        // 1 literal 'A', then match len 4 at offset 5 (> output so far).
        let stream = [0x10u8, b'A', 0x05, 0x00];
        let err = Lz4::new().decompress(&stream, 5).unwrap_err();
        assert!(matches!(err, DecompressError::BadReference { .. }));
    }

    #[test]
    fn truncated_literals_rejected() {
        let stream = [0x50u8, b'a', b'b']; // promises 5 literals, has 2
        assert_eq!(Lz4::new().decompress(&stream, 5), Err(DecompressError::Truncated));
    }

    #[test]
    fn truncated_offset_rejected() {
        let stream = [0x10u8, b'a', 0x01]; // match follows but only 1 offset byte
        assert_eq!(Lz4::new().decompress(&stream, 5), Err(DecompressError::Truncated));
    }

    #[test]
    fn length_extension_blowup_is_output_overflow() {
        // 4 literals then a match whose 255-valued extension bytes declare
        // a ~2.5k match at offset 1: the decoder must reject before copying
        // anything past `expected_len`, not allocate the whole run.
        let mut stream = vec![0x4Fu8, b'a', b'b', b'c', b'd', 0x01, 0x00];
        stream.extend_from_slice(&[255; 10]);
        stream.push(7);
        let err = Lz4::new().decompress(&stream, 16).unwrap_err();
        assert!(matches!(err, DecompressError::OutputOverflow { expected: 16 }));
    }

    #[test]
    fn oversized_literal_run_is_output_overflow() {
        // Token promises 8 literals but the caller expects only 4 bytes.
        let stream = [0x80u8, b'a', b'b', b'c', b'd', b'e', b'f', b'g', b'h'];
        let err = Lz4::new().decompress(&stream, 4).unwrap_err();
        assert!(matches!(err, DecompressError::OutputOverflow { expected: 4 }));
    }

    #[test]
    fn expected_len_enforced() {
        let data = b"abcdabcdabcdabcd";
        let c = Lz4::new().compress(data);
        // Undershooting the real size trips the in-loop output cap;
        // overshooting it trips the final size check.
        assert!(matches!(
            Lz4::new().decompress(&c, data.len() - 1),
            Err(DecompressError::OutputOverflow { .. })
        ));
        assert!(matches!(
            Lz4::new().decompress(&c, data.len() + 1),
            Err(DecompressError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn deterministic_output() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 7 * 41) as u8).collect();
        assert_eq!(Lz4::new().compress(&data), Lz4::new().compress(&data));
    }

    #[test]
    fn match_at_max_offset() {
        let marker = b"XYZW";
        let mut data = marker.to_vec();
        data.extend((0..MAX_OFFSET - marker.len()).map(|i| (i % 89 + 100) as u8));
        data.extend_from_slice(marker);
        assert_eq!(roundtrip(&data), data);
    }
}
