//! 64-bit content checksums for stored-block integrity.
//!
//! The EDC mapping layer owns data integrity: codecs validate sizes and
//! references, but a bit flip inside a literal run decodes "successfully"
//! to wrong bytes. [`EdcPipeline`](../../edc_core/pipeline/index.html)
//! therefore checksums each run's payload before placement and verifies it
//! on read. The hash is an FNV/xxHash-style 64-bit mix — not
//! cryptographic, but with a 2⁻⁶⁴ collision probability per block, ample
//! for corruption detection, and fast enough to be negligible next to
//! even the Lzf codec.

const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME_3: u64 = 0x1656_67B1_9E37_79F9;

#[inline]
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME_3);
    h ^ (h >> 32)
}

/// Checksum `data` with a seed (seed 0 is the conventional default).
///
/// ```
/// use edc_compress::checksum64;
///
/// let a = checksum64(b"stored payload", 0);
/// assert_eq!(a, checksum64(b"stored payload", 0)); // deterministic
/// assert_ne!(a, checksum64(b"stored payloae", 0)); // bit flips detected
/// ```
pub fn checksum64(data: &[u8], seed: u64) -> u64 {
    let mut h = seed.wrapping_add(PRIME_1).wrapping_add(data.len() as u64);
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_add(v.wrapping_mul(PRIME_2));
        h = h.rotate_left(31).wrapping_mul(PRIME_1);
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= u64::from(b) << (8 * i);
    }
    if !chunks.remainder().is_empty() {
        h = h.wrapping_add(tail.wrapping_mul(PRIME_3));
        h = h.rotate_left(17).wrapping_mul(PRIME_2);
    }
    mix(h)
}

/// Streaming variant for data arriving in pieces (must produce the same
/// value as [`checksum64`] over the concatenation when pieces are 8-byte
/// aligned; otherwise it is a distinct but equally valid hash).
#[derive(Debug, Clone)]
pub struct Checksum64 {
    h: u64,
    len: u64,
}

impl Checksum64 {
    /// Start a streaming checksum.
    pub fn new(seed: u64) -> Self {
        Checksum64 { h: seed.wrapping_add(PRIME_1), len: 0 }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.h = self.h.wrapping_add(u64::from(b).wrapping_mul(PRIME_2));
            self.h = self.h.rotate_left(11).wrapping_mul(PRIME_1);
        }
        self.len += data.len() as u64;
    }

    /// Finalize.
    pub fn finish(&self) -> u64 {
        mix(self.h.wrapping_add(self.len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let data = b"elastic data compression";
        assert_eq!(checksum64(data, 0), checksum64(data, 0));
        assert_eq!(checksum64(data, 7), checksum64(data, 7));
    }

    #[test]
    fn seed_changes_value() {
        let data = b"same bytes";
        assert_ne!(checksum64(data, 0), checksum64(data, 1));
    }

    #[test]
    fn single_bit_flip_changes_value() {
        let mut data = vec![0u8; 4096];
        let base = checksum64(&data, 0);
        for pos in [0usize, 1, 7, 8, 9, 4095] {
            for bit in [0u8, 3, 7] {
                data[pos] ^= 1 << bit;
                assert_ne!(checksum64(&data, 0), base, "flip at {pos}:{bit} undetected");
                data[pos] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn length_extension_changes_value() {
        // Same prefix, different lengths (zero padding) must differ.
        let a = checksum64(&[0u8; 16], 0);
        let b = checksum64(&[0u8; 17], 0);
        let c = checksum64(&[0u8; 24], 0);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_input() {
        // Stable, defined value for empty data.
        assert_eq!(checksum64(b"", 0), checksum64(b"", 0));
        assert_ne!(checksum64(b"", 0), checksum64(b"", 1));
    }

    #[test]
    fn swapped_chunks_detected() {
        let mut a = Vec::new();
        a.extend_from_slice(&[1u8; 8]);
        a.extend_from_slice(&[2u8; 8]);
        let mut b = Vec::new();
        b.extend_from_slice(&[2u8; 8]);
        b.extend_from_slice(&[1u8; 8]);
        assert_ne!(checksum64(&a, 0), checksum64(&b, 0), "position must matter");
    }

    #[test]
    fn distribution_sanity() {
        // Hash values over counter inputs should not collide and should
        // spread across the space (crude avalanche check on the top byte).
        let mut seen = std::collections::HashSet::new();
        let mut top_bytes = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let h = checksum64(&i.to_le_bytes(), 0);
            assert!(seen.insert(h), "collision at {i}");
            top_bytes.insert((h >> 56) as u8);
        }
        assert!(top_bytes.len() > 200, "top byte poorly distributed: {}", top_bytes.len());
    }

    #[test]
    fn streaming_is_deterministic_and_piece_independent() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut one = Checksum64::new(3);
        one.update(&data);
        let mut parts = Checksum64::new(3);
        parts.update(&data[..137]);
        parts.update(&data[137..600]);
        parts.update(&data[600..]);
        assert_eq!(one.finish(), parts.finish());
    }

    #[test]
    fn streaming_detects_flips() {
        let mut a = Checksum64::new(0);
        a.update(b"hello world");
        let mut b = Checksum64::new(0);
        b.update(b"hello worle");
        assert_ne!(a.finish(), b.finish());
    }
}
