//! Reusable compressor scratch state and the word-wide match-extension
//! primitive shared by the LZ-family hot paths.
//!
//! Every codec used to rebuild its working set — hash tables, chain arrays,
//! token buffers, Huffman scratch — on each `compress` call. For a store
//! that compresses millions of 4 KiB blocks, those allocations and table
//! memsets dominate the cost of the codec itself. [`CompressorState`] owns
//! all of that scratch so a worker thread pays for it once and then runs
//! allocation-free in steady state; [`Codec::compress_with`] is the entry
//! point that threads it through.
//!
//! ## Stream stability
//!
//! Reusing state must never change the emitted bytes: `compress_with` over
//! a dirty, previously-used state produces exactly the stream a fresh
//! `compress` would. Hash tables are invalidated between inputs by an
//! epoch stamp (see `StampTable`) rather than a memset, which is both
//! O(1) and semantically identical to starting from an empty table. The
//! guarantee is enforced by golden-stream fixtures and property tests.
//!
//! [`Codec::compress_with`]: crate::Codec::compress_with

use std::cell::RefCell;

/// Reusable per-thread (or per-worker) compressor scratch.
///
/// One instance serves every codec: each codec keeps its own table inside
/// so interleaving codecs on one state is safe. States are cheap to create
/// but expensive to warm up (first use sizes the tables), so pools should
/// create one per worker thread and keep it across batches.
///
/// The struct is opaque; all fields are crate-internal scratch.
pub struct CompressorState {
    /// Lzf single-probe match table (2^14 slots).
    pub(crate) lzf_table: StampTable,
    /// Lz4 single-probe match table (2^15 slots).
    pub(crate) lz4_table: StampTable,
    /// Deflate chain matcher, token buffer and Huffman scratch.
    pub(crate) deflate: crate::deflate::DeflateScratch,
    /// Count of `compress_with` calls that had to grow internal scratch.
    pub(crate) alloc_events: u64,
}

impl CompressorState {
    /// Create an empty (cold) state. Tables are sized lazily on first use.
    pub fn new() -> Self {
        CompressorState {
            lzf_table: StampTable::new(),
            lz4_table: StampTable::new(),
            deflate: crate::deflate::DeflateScratch::new(),
            alloc_events: 0,
        }
    }

    /// Number of `compress_with` calls that grew internal scratch buffers.
    ///
    /// In steady state this is stable: once the tables and buffers are
    /// warm, further calls perform zero heap allocation inside the codec.
    /// Pipelines assert their hot loops are allocation-free by comparing
    /// this counter across flushes.
    pub fn alloc_events(&self) -> u64 {
        self.alloc_events
    }
}

impl Default for CompressorState {
    fn default() -> Self {
        Self::new()
    }
}

std::thread_local! {
    /// Fallback state for the stateless `compress`/`compress_into` entry
    /// points, so even callers without a pool amortize table setup.
    static THREAD_STATE: RefCell<CompressorState> = RefCell::new(CompressorState::new());
}

/// Run `f` with this thread's shared [`CompressorState`].
pub(crate) fn with_thread_state<R>(f: impl FnOnce(&mut CompressorState) -> R) -> R {
    THREAD_STATE.with(|cell| f(&mut cell.borrow_mut()))
}

/// Epoch-stamped position table: a hash table of input positions that can
/// be invalidated in O(1) between inputs.
///
/// Each slot packs `(epoch << 32) | position`. A lookup only returns the
/// position when the slot's epoch matches the table's current epoch, so
/// bumping the epoch makes every existing entry read as "empty" — exactly
/// the semantics of a freshly cleared table, without the per-call memset
/// that used to dominate small-block compression.
pub(crate) struct StampTable {
    slots: Vec<u64>,
    epoch: u32,
}

impl StampTable {
    pub(crate) const fn new() -> Self {
        StampTable { slots: Vec::new(), epoch: 0 }
    }

    /// Start a new input: size the table to `len` slots and invalidate all
    /// entries from previous inputs.
    pub(crate) fn begin(&mut self, len: usize) {
        if self.slots.len() != len {
            self.slots.clear();
            self.slots.resize(len, 0);
            self.epoch = 0;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: ancient stamps could collide with the new
            // epoch. Hard-reset once every 2^32 inputs.
            self.slots.fill(0);
            self.epoch = 1;
        }
    }

    /// Position stored at `h`, if it was written during the current input.
    #[inline]
    pub(crate) fn get(&self, h: usize) -> Option<usize> {
        let s = self.slots[h];
        ((s >> 32) as u32 == self.epoch).then_some(s as u32 as usize)
    }

    /// Record `pos` at `h` for the current input.
    #[inline]
    pub(crate) fn set(&mut self, h: usize, pos: usize) {
        debug_assert!(pos <= u32::MAX as usize, "input exceeds 4 GiB");
        self.slots[h] = (u64::from(self.epoch) << 32) | pos as u64;
    }

    /// Record `pos` at `h` and return what the slot held — a fused
    /// [`StampTable::get`] + [`StampTable::set`] with a single slot
    /// access. This runs once per input byte in the LZ hot loops, where
    /// the separate read-then-write pair showed up as two table touches.
    #[inline]
    pub(crate) fn replace(&mut self, h: usize, pos: usize) -> Option<usize> {
        debug_assert!(pos <= u32::MAX as usize, "input exceeds 4 GiB");
        let slot = &mut self.slots[h];
        let s = *slot;
        *slot = (u64::from(self.epoch) << 32) | pos as u64;
        ((s >> 32) as u32 == self.epoch).then_some(s as u32 as usize)
    }

    /// Backing capacity in slots (for allocation-event accounting).
    pub(crate) fn capacity(&self) -> usize {
        self.slots.capacity()
    }
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `max`, compared eight bytes at a time.
///
/// This is the word-wide replacement for the byte-at-a-time match
/// extension loops in the LZ codecs: unaligned little-endian `u64` loads
/// are XORed and the first differing byte located with `trailing_zeros`.
/// The result is exactly the count a byte loop would produce, so
/// tokenization — and therefore the emitted stream — is unchanged.
///
/// Requires `a < b` and `b + max <= data.len()` (the caller matches
/// against earlier data only, and caps `max` at the remaining input).
#[inline]
pub fn common_prefix_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    debug_assert!(a < b, "match source must precede match target");
    debug_assert!(b + max <= data.len(), "max overruns the input");
    let mut len = 0usize;
    while len + 8 <= max {
        let x = u64::from_le_bytes(data[a + len..a + len + 8].try_into().expect("8-byte slice"));
        let y = u64::from_le_bytes(data[b + len..b + len + 8].try_into().expect("8-byte slice"));
        let diff = x ^ y;
        if diff != 0 {
            return len + (diff.trailing_zeros() >> 3) as usize;
        }
        len += 8;
    }
    while len < max && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-at-a-time reference for `common_prefix_len`.
    fn byte_prefix_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
        let mut len = 0;
        while len < max && data[a + len] == data[b + len] {
            len += 1;
        }
        len
    }

    #[test]
    fn word_prefix_matches_byte_loop() {
        // A buffer with runs and mismatches at every alignment.
        let data: Vec<u8> = (0..512usize).map(|i| (i / 7 % 5) as u8).collect();
        for a in 0..64 {
            for b in (a + 1)..96 {
                let max = (data.len() - b).min(300);
                assert_eq!(
                    common_prefix_len(&data, a, b, max),
                    byte_prefix_len(&data, a, b, max),
                    "a={a} b={b} max={max}"
                );
            }
        }
    }

    #[test]
    fn word_prefix_respects_max() {
        let data = vec![9u8; 100];
        assert_eq!(common_prefix_len(&data, 0, 10, 0), 0);
        assert_eq!(common_prefix_len(&data, 0, 10, 7), 7);
        assert_eq!(common_prefix_len(&data, 0, 10, 8), 8);
        assert_eq!(common_prefix_len(&data, 0, 10, 90), 90);
    }

    #[test]
    fn word_prefix_finds_mismatch_inside_word() {
        let mut data = vec![5u8; 64];
        for k in 0..16 {
            data[32 + k] = 5;
        }
        data[32 + 11] = 6; // mismatch at offset 11: mid-word
        assert_eq!(common_prefix_len(&data, 0, 32, 32), 11);
    }

    #[test]
    fn stamp_table_reads_as_empty_after_begin() {
        let mut t = StampTable::new();
        t.begin(16);
        assert_eq!(t.get(3), None);
        t.set(3, 77);
        assert_eq!(t.get(3), Some(77));
        t.begin(16);
        assert_eq!(t.get(3), None, "entries from the previous input must be invisible");
        t.begin(8); // resize also invalidates
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn alloc_events_stabilize() {
        use crate::{Codec, Deflate, Lz4, Lzf};
        let mut state = CompressorState::new();
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        let mut out = Vec::new();
        for codec in [&Lzf::new() as &dyn Codec, &Lz4::new(), &Deflate::new()] {
            codec.compress_with(&mut state, &data, &mut out);
        }
        let warm = state.alloc_events();
        for _ in 0..5 {
            for codec in [&Lzf::new() as &dyn Codec, &Lz4::new(), &Deflate::new()] {
                codec.compress_with(&mut state, &data, &mut out);
            }
        }
        assert_eq!(state.alloc_events(), warm, "steady-state compression must not allocate");
    }
}
