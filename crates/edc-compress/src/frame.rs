//! Self-describing compressed frames.
//!
//! The [`Codec`](crate::Codec) trait is deliberately minimal: EDC's mapping table stores
//! the codec tag and original size itself, so streams carry neither. For
//! standalone use — files on disk, network payloads, anything without an
//! external mapping entry — this module wraps a stream in a small header:
//!
//! ```text
//! magic "EDCF" · version u8 · codec tag u8 · original_len u64 LE ·
//! checksum u64 LE (of the payload) · payload
//! ```
//!
//! ```
//! use edc_compress::{frame, CodecId};
//!
//! let framed = frame::compress(CodecId::Deflate, b"hello hello hello hello");
//! let (codec, data) = frame::decompress(&framed).unwrap();
//! assert_eq!(codec, CodecId::Deflate);
//! assert_eq!(data, b"hello hello hello hello");
//! ```

use crate::checksum::checksum64;
use crate::{codec_by_id, CodecId, DecompressError};

/// Checksum seed binding the header fields (tag + original length) to the
/// payload hash, so header corruption is as detectable as payload
/// corruption.
fn frame_seed(tag: u8, original_len: u64) -> u64 {
    u64::from(tag) ^ original_len.rotate_left(17)
}

/// Frame magic bytes.
pub const MAGIC: [u8; 4] = *b"EDCF";
/// Current frame version.
pub const VERSION: u8 = 1;
/// Header size in bytes.
pub const HEADER_LEN: usize = 4 + 1 + 1 + 8 + 8;

/// Compress `data` with `codec` into a self-describing frame.
/// [`CodecId::None`] stores the data verbatim (still framed + checksummed).
pub fn compress(codec: CodecId, data: &[u8]) -> Vec<u8> {
    let payload = match codec_by_id(codec) {
        Some(c) => c.compress(data),
        None => data.to_vec(),
    };
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(codec.tag());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(
        &checksum64(&payload, frame_seed(codec.tag(), data.len() as u64)).to_le_bytes(),
    );
    out.extend_from_slice(&payload);
    out
}

/// Decode a frame produced by [`compress`]; returns the codec used and the
/// original bytes.
pub fn decompress(framed: &[u8]) -> Result<(CodecId, Vec<u8>), DecompressError> {
    if framed.len() < HEADER_LEN {
        return Err(DecompressError::Truncated);
    }
    if framed[..4] != MAGIC {
        return Err(DecompressError::Malformed("bad frame magic"));
    }
    if framed[4] != VERSION {
        return Err(DecompressError::Malformed("unsupported frame version"));
    }
    let codec = CodecId::from_tag(framed[5]).ok_or(DecompressError::BadSymbol {
        what: "frame codec tag",
        symbol: u32::from(framed[5]),
    })?;
    let original_len = u64::from_le_bytes(
        framed[6..14].try_into().map_err(|_| DecompressError::Truncated)?,
    ) as usize;
    let stored_sum =
        u64::from_le_bytes(framed[14..22].try_into().map_err(|_| DecompressError::Truncated)?);
    let payload = &framed[HEADER_LEN..];
    if checksum64(payload, frame_seed(codec.tag(), original_len as u64)) != stored_sum {
        return Err(DecompressError::Malformed("frame checksum mismatch"));
    }
    let data = match codec_by_id(codec) {
        Some(c) => c.decompress(payload, original_len)?,
        None => {
            if payload.len() != original_len {
                return Err(DecompressError::SizeMismatch {
                    expected: original_len,
                    actual: payload.len(),
                });
            }
            payload.to_vec()
        }
    };
    Ok((codec, data))
}

/// Peek a frame's header without decompressing:
/// `(codec, original_len, payload_len)`.
pub fn inspect(framed: &[u8]) -> Result<(CodecId, u64, usize), DecompressError> {
    if framed.len() < HEADER_LEN {
        return Err(DecompressError::Truncated);
    }
    if framed[..4] != MAGIC {
        return Err(DecompressError::Malformed("bad frame magic"));
    }
    if framed[4] != VERSION {
        return Err(DecompressError::Malformed("unsupported frame version"));
    }
    let codec = CodecId::from_tag(framed[5]).ok_or(DecompressError::BadSymbol {
        what: "frame codec tag",
        symbol: u32::from(framed[5]),
    })?;
    let original_len =
        u64::from_le_bytes(framed[6..14].try_into().map_err(|_| DecompressError::Truncated)?);
    Ok((codec, original_len, framed.len() - HEADER_LEN))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_codec() {
        let data: Vec<u8> = b"framed content framed content framed content "
            .iter()
            .copied()
            .cycle()
            .take(10_000)
            .collect();
        for codec in
            [CodecId::None, CodecId::Lzf, CodecId::Lz4, CodecId::Deflate, CodecId::Bwt]
        {
            let f = compress(codec, &data);
            let (got_codec, got) = decompress(&f).unwrap_or_else(|e| panic!("{codec}: {e}"));
            assert_eq!(got_codec, codec);
            assert_eq!(got, data);
        }
    }

    #[test]
    fn empty_input() {
        let f = compress(CodecId::Lzf, b"");
        let (_, got) = decompress(&f).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn inspect_reads_header_only() {
        let data = vec![b'q'; 5000];
        let f = compress(CodecId::Deflate, &data);
        let (codec, orig, payload) = inspect(&f).unwrap();
        assert_eq!(codec, CodecId::Deflate);
        assert_eq!(orig, 5000);
        assert_eq!(payload, f.len() - HEADER_LEN);
        assert!(payload < 5000, "compressible payload must shrink");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut f = compress(CodecId::Lzf, b"data");
        f[0] = b'X';
        assert!(matches!(decompress(&f), Err(DecompressError::Malformed(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let mut f = compress(CodecId::Lzf, b"data");
        f[4] = 99;
        assert_eq!(
            decompress(&f),
            Err(DecompressError::Malformed("unsupported frame version"))
        );
        assert_eq!(
            inspect(&f),
            Err(DecompressError::Malformed("unsupported frame version"))
        );
    }

    #[test]
    fn invalid_codec_tag_is_bad_symbol() {
        let mut f = compress(CodecId::Lzf, b"data");
        f[5] = 6; // tags 5..=255 name no codec
        assert_eq!(
            decompress(&f),
            Err(DecompressError::BadSymbol { what: "frame codec tag", symbol: 6 })
        );
        assert!(inspect(&f).is_err());
    }

    #[test]
    fn payload_corruption_caught_by_checksum() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let mut f = compress(CodecId::Lz4, &data);
        let last = f.len() - 1;
        f[last] ^= 0x40;
        assert!(matches!(
            decompress(&f),
            Err(DecompressError::Malformed("frame checksum mismatch"))
        ));
    }

    #[test]
    fn truncation_detected() {
        let f = compress(CodecId::Bwt, &vec![7u8; 4096]);
        assert!(decompress(&f[..10]).is_err());
        assert!(decompress(&f[..HEADER_LEN]).is_err());
        assert!(inspect(&f[..HEADER_LEN - 1]).is_err());
    }

    #[test]
    fn tampered_length_field_rejected_before_allocation() {
        // The header checksum binds the original length: a flipped length
        // byte must fail *before* any decompression allocation happens
        // (a 2^63-scale length would otherwise attempt a giant alloc).
        let mut f = compress(CodecId::None, b"abc");
        f[6] = 99;
        assert!(matches!(
            decompress(&f),
            Err(DecompressError::Malformed("frame checksum mismatch"))
        ));
        let mut g = compress(CodecId::Deflate, &vec![b'x'; 4096]);
        g[13] = 0x80; // most-significant length byte → absurd size
        assert!(decompress(&g).is_err());
    }
}
