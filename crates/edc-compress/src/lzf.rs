//! Lzf-class codec: a byte-oriented LZ with literal runs and short
//! back-references, in the style of Marc Lehmann's LibLZF.
//!
//! This is the *fast/weak* end of EDC's algorithm ladder: a single-probe
//! hash table (no chains), greedy matching, and a byte-aligned container —
//! so both compression and decompression run at memory-copy-like speeds,
//! at the cost of a modest compression ratio.
//!
//! ## Container format
//!
//! The stream is a sequence of control sequences:
//!
//! * **Literal run** — control byte `0..=31` = run length − 1, followed by
//!   that many literal bytes (runs of 1..=32).
//! * **Short match** — control byte `LLL OOOOO` with `LLL` in `1..=6`:
//!   match length = `LLL + 2` (3..=8), then one byte of low offset bits;
//!   offset = `(OOOOO << 8 | low) + 1` (1..=8192).
//! * **Long match** — control byte `111 OOOOO`, then an extension byte
//!   `len − 9` (lengths 9..=264), then the low offset byte.
//!
//! Matches may overlap their own output (RLE-style), exactly as in LZ77.

use crate::state::{common_prefix_len, with_thread_state, CompressorState};
use crate::{Codec, CodecId, DecompressError};

/// Window size: offsets are 13 bits, biased by one.
const MAX_OFFSET: usize = 1 << 13;
/// Longest match encodable by the long form.
const MAX_MATCH: usize = 264;
/// Shortest match worth encoding (a 3-byte match costs 2 bytes).
const MIN_MATCH: usize = 3;
/// Longest literal run per control byte.
const MAX_LITERAL_RUN: usize = 32;
/// log2 of the hash-table size.
const HASH_BITS: u32 = 14;

/// Lzf-class fast LZ codec. See the [module docs](self) for the format.
#[derive(Debug, Default, Clone, Copy)]
pub struct Lzf {
    _private: (),
}

impl Lzf {
    /// Create the codec (stateless; `const` so it can back a `static`).
    pub const fn new() -> Self {
        Self { _private: () }
    }
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Flush `input[start..end]` as literal runs.
fn push_literals(out: &mut Vec<u8>, input: &[u8], start: usize, end: usize) {
    let mut i = start;
    while i < end {
        let run = (end - i).min(MAX_LITERAL_RUN);
        out.push((run - 1) as u8);
        out.extend_from_slice(&input[i..i + run]);
        i += run;
    }
}

impl Codec for Lzf {
    fn id(&self) -> CodecId {
        CodecId::Lzf
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        self.compress_into(input, &mut out);
        out
    }

    fn compress_into(&self, input: &[u8], out: &mut Vec<u8>) {
        // Fall back to the per-thread state so even pool-less callers
        // amortize the match-table setup.
        with_thread_state(|state| self.compress_with(state, input, out));
    }

    fn compress_with(&self, state: &mut CompressorState, input: &[u8], out: &mut Vec<u8>) {
        out.clear();
        let n = input.len();
        out.reserve(n / 2 + 16);
        if n < MIN_MATCH + 1 {
            push_literals(out, input, 0, n);
            return;
        }
        // Single-probe hash table of candidate positions; entries from
        // previous inputs are invalidated by the epoch stamp, not a memset.
        let table = &mut state.lzf_table;
        let cap0 = table.capacity();
        table.begin(1 << HASH_BITS);
        let mut lit_start = 0usize;
        let mut i = 0usize;
        // Leave room so hash3 never reads past the end.
        let limit = n - MIN_MATCH;
        while i <= limit {
            let cand = table.replace(hash3(input, i), i);
            let cand = match cand {
                Some(c)
                    if i - c <= MAX_OFFSET
                        && input[c..c + MIN_MATCH] == input[i..i + MIN_MATCH] =>
                {
                    c
                }
                _ => {
                    i += 1;
                    continue;
                }
            };
            // Extend the match word-wise; the first MIN_MATCH bytes are
            // already known equal, so the full common prefix is the match.
            let max_len = (n - i).min(MAX_MATCH);
            let len = common_prefix_len(input, cand, i, max_len);
            push_literals(out, input, lit_start, i);
            let offset = i - cand - 1; // biased
            if len <= 8 {
                out.push((((len - 2) as u8) << 5) | (offset >> 8) as u8);
            } else {
                out.push(0b111 << 5 | (offset >> 8) as u8);
                out.push((len - 9) as u8);
            }
            out.push((offset & 0xFF) as u8);
            // Insert a few positions inside the match so later data can
            // reference it (cheap partial insertion keeps speed high).
            let match_end = i + len;
            let insert_to = match_end.min(limit + 1);
            let mut j = i + 1;
            while j < insert_to {
                table.set(hash3(input, j), j);
                j += 1;
            }
            i = match_end;
            lit_start = i;
        }
        push_literals(out, input, lit_start, n);
        if state.lzf_table.capacity() != cap0 {
            state.alloc_events += 1;
        }
    }

    fn decompress(&self, input: &[u8], expected_len: usize) -> Result<Vec<u8>, DecompressError> {
        let mut out = Vec::new();
        self.decompress_into(input, expected_len, &mut out)?;
        Ok(out)
    }

    fn decompress_into(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), DecompressError> {
        out.clear();
        // Cap the pre-allocation: `expected_len` may come from untrusted
        // metadata, and a corrupt multi-gigabyte value must fail cheaply
        // via the size check rather than aborting on allocation.
        out.reserve(expected_len.min(16 << 20));
        let mut i = 0usize;
        while i < input.len() {
            let ctrl = input[i];
            i += 1;
            let len_field = (ctrl >> 5) as usize;
            if len_field == 0 {
                // Literal run.
                let run = (ctrl & 0x1F) as usize + 1;
                if i + run > input.len() {
                    return Err(DecompressError::Truncated);
                }
                if out.len() + run > expected_len {
                    return Err(DecompressError::OutputOverflow { expected: expected_len });
                }
                out.extend_from_slice(&input[i..i + run]);
                i += run;
            } else {
                let len = if len_field == 7 {
                    if i >= input.len() {
                        return Err(DecompressError::Truncated);
                    }
                    let ext = input[i] as usize;
                    i += 1;
                    ext + 9
                } else {
                    len_field + 2
                };
                if i >= input.len() {
                    return Err(DecompressError::Truncated);
                }
                let offset = ((ctrl & 0x1F) as usize) << 8 | input[i] as usize;
                i += 1;
                let offset = offset + 1;
                if offset > out.len() {
                    return Err(DecompressError::BadReference { at: out.len(), offset });
                }
                if out.len() + len > expected_len {
                    return Err(DecompressError::OutputOverflow { expected: expected_len });
                }
                // Byte-at-a-time copy: matches may overlap their output.
                let src = out.len() - offset;
                for k in 0..len {
                    let b = out[src + k];
                    out.push(b);
                }
            }
        }
        if out.len() != expected_len {
            return Err(DecompressError::SizeMismatch { expected: expected_len, actual: out.len() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let c = Lzf::new().compress(data);
        Lzf::new().decompress(&c, data.len()).expect("round trip")
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(b""), b"");
        assert!(Lzf::new().compress(b"").is_empty());
    }

    #[test]
    fn tiny_inputs_stored_as_literals() {
        for n in 1..=4 {
            let data: Vec<u8> = (0..n as u8).collect();
            assert_eq!(roundtrip(&data), data);
        }
    }

    #[test]
    fn repetitive_data_compresses() {
        let data = vec![b'x'; 4096];
        let c = Lzf::new().compress(&data);
        assert!(c.len() < data.len() / 8, "got {} bytes", c.len());
        assert_eq!(Lzf::new().decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn text_roundtrip_and_shrinks() {
        let data: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
            .iter()
            .copied()
            .cycle()
            .take(8192)
            .collect();
        let c = Lzf::new().compress(&data);
        assert!(c.len() < data.len());
        assert_eq!(Lzf::new().decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn overlapping_match_rle_style() {
        // "abc" then 300 repeats of it exercises overlapped copies + long form.
        let mut data = Vec::new();
        for _ in 0..301 {
            data.extend_from_slice(b"abc");
        }
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn incompressible_data_expands_bounded() {
        // Pseudo-random bytes: literal-run framing adds 1/32 overhead.
        let mut x: u32 = 0x1234_5678;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        let c = Lzf::new().compress(&data);
        assert!(c.len() <= data.len() + data.len() / 32 + 16);
        assert_eq!(Lzf::new().decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn max_offset_boundary_match() {
        // A 4-byte marker, MAX_OFFSET-4 junk bytes, then the marker again:
        // the second occurrence is exactly MAX_OFFSET away.
        let marker = b"MARK";
        let mut data = marker.to_vec();
        data.extend((0..MAX_OFFSET - marker.len()).map(|i| (i % 251) as u8));
        data.extend_from_slice(marker);
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn truncated_stream_detected() {
        let data = vec![b'z'; 1000];
        let mut c = Lzf::new().compress(&data);
        c.truncate(c.len() - 1);
        // Either truncated mid-sequence or wrong total size.
        assert!(Lzf::new().decompress(&c, data.len()).is_err());
    }

    #[test]
    fn bad_reference_detected() {
        // Control byte for a match of len 3 at offset 1, but no prior output.
        let stream = [0b001_00000u8, 0x00];
        let err = Lzf::new().decompress(&stream, 3).unwrap_err();
        assert!(matches!(err, DecompressError::BadReference { .. }));
    }

    #[test]
    fn size_mismatch_detected() {
        let data = b"hello hello hello hello";
        let c = Lzf::new().compress(data);
        let err = Lzf::new().decompress(&c, data.len() + 5).unwrap_err();
        assert!(matches!(err, DecompressError::SizeMismatch { .. }));
    }

    #[test]
    fn oversized_literal_run_is_output_overflow() {
        // A 32-byte literal run against a 4-byte expected length must fail
        // before the copy, not after producing 32 bytes.
        let mut stream = vec![31u8];
        stream.extend_from_slice(&[0xAB; 32]);
        let err = Lzf::new().decompress(&stream, 4).unwrap_err();
        assert!(matches!(err, DecompressError::OutputOverflow { expected: 4 }));
    }

    #[test]
    fn oversized_match_is_output_overflow() {
        // One literal byte, then a maximal long match (len 264, offset 1):
        // the output would reach 265 bytes against an expected 8.
        let stream = [0u8, b'a', 0b111_00000, 255, 0];
        let err = Lzf::new().decompress(&stream, 8).unwrap_err();
        assert!(matches!(err, DecompressError::OutputOverflow { expected: 8 }));
    }

    #[test]
    fn literal_run_chunking_at_32() {
        // 33 distinct bytes force two literal runs.
        let data: Vec<u8> = (0u8..33).collect();
        let c = Lzf::new().compress(&data);
        assert_eq!(c.len(), 33 + 2, "two control bytes expected");
        assert_eq!(Lzf::new().decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn deterministic_output() {
        let data: Vec<u8> = (0..2048u32).map(|i| (i * 31 % 256) as u8).collect();
        assert_eq!(Lzf::new().compress(&data), Lzf::new().compress(&data));
    }
}
