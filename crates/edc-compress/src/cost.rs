//! Deterministic CPU-cost model for (de)compression.
//!
//! The paper measures wall-clock latency on a Xeon X5680; a discrete-event
//! simulation needs the *cost* of compressing a block without the noise of
//! actually timing it on whatever machine runs the experiments. This module
//! provides:
//!
//! * [`CostModel::paper_defaults`] — per-codec ns/byte constants matching
//!   the throughput ordering the paper's Fig. 2 reports (Lzf/Lz4 fast,
//!   Gzip ~an order of magnitude slower, Bzip2 slowest; decompression
//!   several times faster than compression for each codec). These drive
//!   the simulator so every experiment is exactly reproducible.
//! * [`CostModel::calibrate`] — measures the throughput of *this crate's*
//!   codecs on a caller-supplied corpus and builds a model from the
//!   observations, for readers who want the simulation tied to their own
//!   hardware. `edc-bench` records both in EXPERIMENTS.md.

use crate::CodecId;
use std::time::Instant;

/// Per-codec cost coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecCost {
    /// Compression cost in nanoseconds per input byte.
    pub compress_ns_per_byte: f64,
    /// Decompression cost in nanoseconds per *output* (original) byte.
    pub decompress_ns_per_byte: f64,
    /// Fixed per-call overhead in nanoseconds (setup, tables, dispatch).
    pub fixed_ns: f64,
}

impl CodecCost {
    /// Compression throughput implied by this cost, in MB/s.
    pub fn compress_mb_per_s(&self) -> f64 {
        1000.0 / self.compress_ns_per_byte
    }

    /// Decompression throughput implied by this cost, in MB/s.
    pub fn decompress_mb_per_s(&self) -> f64 {
        1000.0 / self.decompress_ns_per_byte
    }
}

/// Cost model covering all codecs.
///
/// ```
/// use edc_compress::{CostModel, CodecId};
///
/// let model = CostModel::paper_defaults();
/// let fast = model.compress_ns(CodecId::Lzf, 4096);
/// let slow = model.compress_ns(CodecId::Bwt, 4096);
/// assert!(slow > 10 * fast); // Bzip2-class costs order(s) more CPU
/// assert_eq!(model.compress_ns(CodecId::None, 4096), 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    costs: [CodecCost; 4], // indexed by CodecId tag - 1
}

impl CostModel {
    /// Costs matching the 2017-era single-core throughputs behind the
    /// paper's Fig. 2 (approximate published numbers for LibLZF, LZ4,
    /// zlib-9 and bzip2 on a Xeon X5680 class core):
    ///
    /// | codec | compress  | decompress |
    /// |-------|-----------|------------|
    /// | Lzf   | ~450 MB/s | ~1.8 GB/s  |
    /// | Lz4   | ~630 MB/s | ~2.9 GB/s  |
    /// | Gzip  | ~22 MB/s  | ~170 MB/s  |
    /// | Bzip2 | ~9 MB/s   | ~28 MB/s   |
    pub fn paper_defaults() -> Self {
        CostModel {
            costs: [
                // Lzf
                CodecCost { compress_ns_per_byte: 2.2, decompress_ns_per_byte: 0.55, fixed_ns: 500.0 },
                // Lz4
                CodecCost { compress_ns_per_byte: 1.6, decompress_ns_per_byte: 0.35, fixed_ns: 500.0 },
                // Deflate (Gzip-class)
                CodecCost { compress_ns_per_byte: 45.0, decompress_ns_per_byte: 6.0, fixed_ns: 2_000.0 },
                // Bwt (Bzip2-class)
                CodecCost { compress_ns_per_byte: 110.0, decompress_ns_per_byte: 36.0, fixed_ns: 4_000.0 },
            ],
        }
    }

    /// Build a model from explicit per-codec costs, in [`CodecId::ALL_CODECS`]
    /// order (Lzf, Lz4, Deflate, Bwt).
    pub fn from_costs(costs: [CodecCost; 4]) -> Self {
        CostModel { costs }
    }

    /// Measure this crate's codecs on `corpus` (one entry per block) and
    /// return a calibrated model. `rounds` controls averaging.
    ///
    /// Not deterministic — use only for reporting/calibration, never inside
    /// a simulation that must reproduce exactly.
    pub fn calibrate(corpus: &[Vec<u8>], rounds: usize) -> Self {
        assert!(!corpus.is_empty() && rounds > 0, "need a corpus and at least one round");
        let total_bytes: usize = corpus.iter().map(Vec::len).sum();
        assert!(total_bytes > 0, "corpus must contain data");
        let mut costs = Self::paper_defaults().costs;
        for (slot, id) in CodecId::ALL_CODECS.iter().enumerate() {
            let codec = crate::codec_by_id(*id).expect("real codec");
            // Compress timing (also produces the streams for decompression).
            let start = Instant::now();
            let mut streams = Vec::new();
            for _ in 0..rounds {
                streams.clear();
                streams.extend(corpus.iter().map(|b| codec.compress(b)));
            }
            let comp_ns = start.elapsed().as_nanos() as f64 / (rounds * total_bytes) as f64;
            let start = Instant::now();
            for _ in 0..rounds {
                for (stream, block) in streams.iter().zip(corpus) {
                    let out = codec.decompress(stream, block.len()).expect("round trip");
                    std::hint::black_box(&out);
                }
            }
            let dec_ns = start.elapsed().as_nanos() as f64 / (rounds * total_bytes) as f64;
            costs[slot] = CodecCost {
                compress_ns_per_byte: comp_ns.max(0.01),
                decompress_ns_per_byte: dec_ns.max(0.01),
                fixed_ns: costs[slot].fixed_ns,
            };
        }
        CostModel { costs }
    }

    /// Cost coefficients for `id`. Returns `None` for [`CodecId::None`].
    pub fn cost(&self, id: CodecId) -> Option<&CodecCost> {
        match id {
            CodecId::None => None,
            _ => Some(&self.costs[id.tag() as usize - 1]),
        }
    }

    /// Simulated time (ns) to compress `len` input bytes with `id`.
    /// [`CodecId::None`] costs nothing.
    pub fn compress_ns(&self, id: CodecId, len: usize) -> u64 {
        match self.cost(id) {
            None => 0,
            Some(c) => (c.fixed_ns + c.compress_ns_per_byte * len as f64) as u64,
        }
    }

    /// Simulated time (ns) to decompress back to `original_len` bytes.
    pub fn decompress_ns(&self, id: CodecId, original_len: usize) -> u64 {
        match self.cost(id) {
            None => 0,
            Some(c) => (c.fixed_ns + c.decompress_ns_per_byte * original_len as f64) as u64,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_preserve_speed_ordering() {
        // The trade-off ordering of Fig. 2: Lz4 fastest, then Lzf, then
        // Gzip, then Bzip2 — for both directions.
        let m = CostModel::paper_defaults();
        let c = |id: CodecId| m.cost(id).unwrap().compress_ns_per_byte;
        let d = |id: CodecId| m.cost(id).unwrap().decompress_ns_per_byte;
        assert!(c(CodecId::Lz4) < c(CodecId::Lzf));
        assert!(c(CodecId::Lzf) < c(CodecId::Deflate));
        assert!(c(CodecId::Deflate) < c(CodecId::Bwt));
        assert!(d(CodecId::Lz4) < d(CodecId::Lzf));
        assert!(d(CodecId::Lzf) < d(CodecId::Deflate));
        assert!(d(CodecId::Deflate) < d(CodecId::Bwt));
    }

    #[test]
    fn decompression_faster_than_compression() {
        let m = CostModel::paper_defaults();
        for id in CodecId::ALL_CODECS {
            let c = m.cost(id).unwrap();
            assert!(
                c.decompress_ns_per_byte < c.compress_ns_per_byte,
                "{id}: decompression must be faster"
            );
        }
    }

    #[test]
    fn none_codec_is_free() {
        let m = CostModel::paper_defaults();
        assert_eq!(m.compress_ns(CodecId::None, 1 << 20), 0);
        assert_eq!(m.decompress_ns(CodecId::None, 1 << 20), 0);
        assert!(m.cost(CodecId::None).is_none());
    }

    #[test]
    fn cost_scales_linearly_with_size() {
        let m = CostModel::paper_defaults();
        let small = m.compress_ns(CodecId::Lzf, 4096);
        let large = m.compress_ns(CodecId::Lzf, 8192);
        // Twice the bytes, roughly twice the variable cost (fixed overhead
        // makes it slightly sublinear).
        assert!(large > small && large < 2 * small + 1000);
    }

    #[test]
    fn throughput_helpers() {
        let c = CodecCost { compress_ns_per_byte: 10.0, decompress_ns_per_byte: 2.0, fixed_ns: 0.0 };
        assert!((c.compress_mb_per_s() - 100.0).abs() < 1e-9);
        assert!((c.decompress_mb_per_s() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_produces_positive_costs() {
        let corpus: Vec<Vec<u8>> = vec![
            b"calibration corpus text corpus text corpus text".repeat(100),
            vec![0u8; 8192],
        ];
        let m = CostModel::calibrate(&corpus, 1);
        for id in CodecId::ALL_CODECS {
            let c = m.cost(id).unwrap();
            assert!(c.compress_ns_per_byte > 0.0);
            assert!(c.decompress_ns_per_byte > 0.0);
        }
    }

    #[test]
    fn compress_ns_includes_fixed_overhead() {
        let m = CostModel::paper_defaults();
        let zero_len = m.compress_ns(CodecId::Bwt, 0);
        assert!(zero_len >= 4_000, "fixed overhead must be charged, got {zero_len}");
    }
}
