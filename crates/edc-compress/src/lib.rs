//! # edc-compress
//!
//! From-scratch lossless compression substrate for the EDC (Elastic Data
//! Compression) reproduction.
//!
//! The EDC paper (Mao et al., IPDPS 2017) evaluates four compression
//! algorithms — Lzf, Lz4, Gzip and Bzip2 — whose defining property for the
//! system-level experiments is the *trade-off ordering* between compression
//! ratio and speed:
//!
//! * ratio: `Bzip2 > Gzip > Lz4 ≈ Lzf`
//! * speed: `Lzf ≈ Lz4 > Gzip > Bzip2`
//! * decompression is substantially faster than compression for all of them.
//!
//! This crate implements one codec per algorithm *family*, from scratch (no
//! third-party compression crates):
//!
//! * [`Lzf`] — byte-oriented LZ with literal runs and back-references,
//!   single-probe hash table (LibLZF-style).
//! * [`Lz4`] — token-based fast LZ with greedy hash-table matching
//!   (LZ4-block-style).
//! * [`Deflate`] — LZ77 with hash-chain match finding followed by canonical
//!   Huffman coding of literals/lengths/distances (Gzip-class).
//! * [`Bwt`] — block-sorting compressor: Burrows–Wheeler transform (prefix
//!   doubling suffix sort), move-to-front, zero run-length encoding and
//!   Huffman coding (Bzip2-class).
//!
//! All codecs implement the [`Codec`] trait, round-trip losslessly for any
//! input (enforced by unit + property tests), and are addressable by the
//! 3-bit [`CodecId`] tag that EDC stores in its block-mapping entries.
//!
//! Two additional pieces support the EDC engine:
//!
//! * [`estimator`] — the sampling-based compressibility estimator EDC uses to
//!   decide write-through vs. compress (paper §III-D).
//! * [`cost`] — a calibrated deterministic cost model (ns/byte) so that the
//!   discrete-event simulator charges realistic, reproducible CPU time for
//!   (de)compression instead of noisy wall-clock measurements.
//!
//! ## Quick example
//!
//! ```
//! use edc_compress::{Codec, CodecId, codec_by_id};
//!
//! let data = b"an example block of fairly compressible text text text text";
//! let codec = codec_by_id(CodecId::Lzf).unwrap();
//! let compressed = codec.compress(data);
//! let restored = codec.decompress(&compressed, data.len()).unwrap();
//! assert_eq!(restored, data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bitio;
pub mod bwt;
pub mod checksum;
pub mod cost;
pub mod deflate;
pub mod estimator;
pub mod frame;
pub mod huffman;
pub mod lz4;
pub mod lzf;
pub mod mtf;
pub mod rle;
pub mod state;
pub mod suffix;

use core::fmt;

pub use bwt::Bwt;
pub use checksum::{checksum64, Checksum64};
pub use cost::{CostModel, CodecCost};
pub use deflate::Deflate;
pub use estimator::{CompressibilityClass, Estimator, EstimatorConfig};
pub use lz4::Lz4;
pub use lzf::Lzf;
pub use state::{common_prefix_len, CompressorState};

/// Error returned when decompression fails.
///
/// A correct EDC store never produces these for blocks it wrote itself; they
/// guard against corrupted or truncated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The compressed stream ended before the declared output was produced.
    Truncated,
    /// A back-reference pointed before the start of the output buffer.
    BadReference {
        /// Output cursor position at which the bad reference was found.
        at: usize,
        /// Offset that was requested.
        offset: usize,
    },
    /// The output did not match the expected decompressed size.
    SizeMismatch {
        /// Size the caller expected.
        expected: usize,
        /// Size actually produced.
        actual: usize,
    },
    /// The stream contained an invalid symbol or malformed header.
    Malformed(&'static str),
    /// A decoded symbol was outside the range valid at that point.
    BadSymbol {
        /// Which alphabet/table rejected the symbol.
        what: &'static str,
        /// The symbol's value, widened for display.
        symbol: u32,
    },
    /// Decoding would have produced more than `expected_len` bytes.
    ///
    /// Hardened decoders enforce `out.len() <= expected_len` *before*
    /// copying each literal run or match — a crafted stream can therefore
    /// never balloon the output buffer past what the caller sized for.
    OutputOverflow {
        /// The caller's declared output size.
        expected: usize,
    },
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream truncated"),
            DecompressError::BadReference { at, offset } => {
                write!(f, "bad back-reference at output position {at} (offset {offset})")
            }
            DecompressError::SizeMismatch { expected, actual } => {
                write!(f, "decompressed size mismatch: expected {expected}, got {actual}")
            }
            DecompressError::Malformed(what) => write!(f, "malformed stream: {what}"),
            DecompressError::BadSymbol { what, symbol } => {
                write!(f, "invalid symbol {symbol} for {what}")
            }
            DecompressError::OutputOverflow { expected } => {
                write!(f, "stream would exceed the expected output size of {expected} bytes")
            }
        }
    }
}

impl std::error::Error for DecompressError {}

/// The 3-bit compression-algorithm tag stored in every EDC mapping entry
/// (paper Fig. 5: the `Tag` field, where `000` means "no compression").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum CodecId {
    /// `000` — stored uncompressed (write-through).
    None = 0,
    /// `001` — Lzf-class fast LZ.
    Lzf = 1,
    /// `010` — Lz4-class fast LZ.
    Lz4 = 2,
    /// `011` — Gzip-class (LZ77 + Huffman).
    Deflate = 3,
    /// `100` — Bzip2-class (BWT + MTF + RLE + Huffman).
    Bwt = 4,
}

impl CodecId {
    /// All identifiers that name an actual codec (everything but [`CodecId::None`]).
    pub const ALL_CODECS: [CodecId; 4] = [CodecId::Lzf, CodecId::Lz4, CodecId::Deflate, CodecId::Bwt];

    /// Decode a 3-bit tag value.
    pub fn from_tag(tag: u8) -> Option<CodecId> {
        match tag {
            0 => Some(CodecId::None),
            1 => Some(CodecId::Lzf),
            2 => Some(CodecId::Lz4),
            3 => Some(CodecId::Deflate),
            4 => Some(CodecId::Bwt),
            _ => None,
        }
    }

    /// The 3-bit tag value for this codec.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            CodecId::None => "Native",
            CodecId::Lzf => "Lzf",
            CodecId::Lz4 => "Lz4",
            CodecId::Deflate => "Gzip",
            CodecId::Bwt => "Bzip2",
        }
    }
}

impl fmt::Display for CodecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A lossless block codec.
///
/// Implementations must be pure functions of their input: the same input
/// always produces the same output (required for deterministic simulation),
/// and `decompress(compress(x), x.len()) == x` for every `x`.
pub trait Codec: Send + Sync {
    /// Identifier stored in EDC mapping entries.
    fn id(&self) -> CodecId;

    /// Compress `input` into a fresh buffer.
    ///
    /// The output is a self-contained stream; it may be larger than the
    /// input for incompressible data (EDC handles that case by storing the
    /// block uncompressed instead — see the 75 % rule in `edc-core`).
    fn compress(&self, input: &[u8]) -> Vec<u8>;

    /// Compress `input` into a caller-owned buffer, clearing it first.
    ///
    /// The stream written is byte-identical to [`Codec::compress`]'s; the
    /// point is allocation reuse — a hot write path hands the same scratch
    /// `Vec` back on every call and amortizes the allocation away. The
    /// default implementation delegates to `compress`; allocation-sensitive
    /// codecs override it with a true in-place encoder.
    fn compress_into(&self, input: &[u8], out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&self.compress(input));
    }

    /// Compress `input` into `out` using caller-pooled scratch `state`.
    ///
    /// This is the hot-path entry point: hash tables, chain arrays, token
    /// buffers and Huffman scratch live in `state` and are reused across
    /// calls, so a warmed-up worker performs zero heap allocation per
    /// block. The stream written is byte-identical to [`Codec::compress`]
    /// regardless of what the state was previously used for (enforced by
    /// golden-stream fixtures and property tests).
    ///
    /// The default implementation ignores `state` and delegates to
    /// [`Codec::compress_into`]; the LZ-family codecs override it.
    fn compress_with(&self, state: &mut CompressorState, input: &[u8], out: &mut Vec<u8>) {
        let _ = state;
        self.compress_into(input, out);
    }

    /// Decompress a stream produced by [`Codec::compress`].
    ///
    /// `expected_len` is the original (uncompressed) size, which EDC always
    /// knows from its mapping entry; codecs use it to size the output buffer
    /// exactly and to validate stream integrity.
    fn decompress(&self, input: &[u8], expected_len: usize) -> Result<Vec<u8>, DecompressError>;

    /// Decompress into a caller-owned buffer, clearing it first — the read-
    /// path mirror of [`Codec::compress_into`]. The bytes produced are
    /// identical to [`Codec::decompress`]'s; the point is allocation reuse
    /// on hot read paths. The default delegates to `decompress`.
    fn decompress_into(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), DecompressError> {
        let produced = self.decompress(input, expected_len)?;
        out.clear();
        out.extend_from_slice(&produced);
        Ok(())
    }
}

/// Error from a [`CodecRegistry`] lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The tag was [`CodecId::None`]: the data is stored uncompressed
    /// (write-through) and there is no codec to run. Callers that can
    /// serve raw bytes handle this variant explicitly; reaching a
    /// decompressor with it is a logic error worth surfacing as data.
    WriteThrough,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::WriteThrough => {
                write!(f, "tag is CodecId::None: write-through data has no codec")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// The table of codec implementations, addressed by [`CodecId`].
///
/// Replaces ad-hoc `codec_by_id(...).expect(...)` call sites with a typed
/// lookup: [`CodecRegistry::get`] returns [`CodecError::WriteThrough`] for
/// [`CodecId::None`] instead of forcing every caller to re-derive why the
/// `Option` is `None`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CodecRegistry;

impl CodecRegistry {
    /// Look up the codec for `id`; [`CodecId::None`] is a typed error.
    pub fn get(id: CodecId) -> Result<&'static dyn Codec, CodecError> {
        static LZF: Lzf = Lzf::new();
        static LZ4: Lz4 = Lz4::new();
        static DEFLATE: Deflate = Deflate::new();
        static BWT: Bwt = Bwt::new();
        match id {
            CodecId::None => Err(CodecError::WriteThrough),
            CodecId::Lzf => Ok(&LZF),
            CodecId::Lz4 => Ok(&LZ4),
            CodecId::Deflate => Ok(&DEFLATE),
            CodecId::Bwt => Ok(&BWT),
        }
    }
}

/// Look up the codec implementation for a tag.
///
/// Returns `None` for [`CodecId::None`] (write-through has no codec).
/// Thin `Option` adapter over [`CodecRegistry::get`] for callers that
/// treat write-through as an ordinary branch rather than an error.
pub fn codec_by_id(id: CodecId) -> Option<&'static dyn Codec> {
    CodecRegistry::get(id).ok()
}

/// Compression ratio of a (original, compressed) size pair, following the
/// paper's definition: `original / compressed` — higher is better.
///
/// Returns 1.0 when `compressed` is zero alongside a zero-sized original
/// (empty block), and `inf`-free saturation otherwise.
pub fn compression_ratio(original: usize, compressed: usize) -> f64 {
    if original == 0 {
        return 1.0;
    }
    if compressed == 0 {
        // Degenerate; treat an empty encoding of non-empty data as ratio of
        // original bytes (cannot happen with our codecs, which always emit
        // at least a header).
        return original as f64;
    }
    original as f64 / compressed as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_id_tag_round_trip() {
        for id in [CodecId::None, CodecId::Lzf, CodecId::Lz4, CodecId::Deflate, CodecId::Bwt] {
            assert_eq!(CodecId::from_tag(id.tag()), Some(id));
        }
    }

    #[test]
    fn codec_id_rejects_out_of_range_tags() {
        for tag in 5..=7 {
            assert_eq!(CodecId::from_tag(tag), None);
        }
        assert_eq!(CodecId::from_tag(255), None);
    }

    #[test]
    fn codec_id_tag_fits_three_bits() {
        for id in CodecId::ALL_CODECS {
            assert!(id.tag() < 8, "{id:?} tag must fit in the 3-bit field");
        }
    }

    #[test]
    fn codec_lookup_matches_id() {
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).expect("codec must exist");
            assert_eq!(codec.id(), id);
        }
        assert!(codec_by_id(CodecId::None).is_none());
    }

    #[test]
    fn registry_types_the_write_through_case() {
        for id in CodecId::ALL_CODECS {
            assert_eq!(CodecRegistry::get(id).expect("codec must exist").id(), id);
        }
        assert_eq!(CodecRegistry::get(CodecId::None).err(), Some(CodecError::WriteThrough));
        assert!(!CodecError::WriteThrough.to_string().is_empty());
    }

    #[test]
    fn decompress_into_matches_decompress() {
        let data: Vec<u8> = (0..=255u8).cycle().take(6000).collect();
        let mut out = vec![0xAAu8; 3]; // stale content must be cleared
        for id in CodecId::ALL_CODECS {
            let codec = CodecRegistry::get(id).unwrap();
            let c = codec.compress(&data);
            codec.decompress_into(&c, data.len(), &mut out).expect("round trip");
            assert_eq!(out, data, "{id} decompress_into mismatch");
        }
    }

    #[test]
    fn display_names_match_paper_labels() {
        assert_eq!(CodecId::None.to_string(), "Native");
        assert_eq!(CodecId::Deflate.to_string(), "Gzip");
        assert_eq!(CodecId::Bwt.to_string(), "Bzip2");
    }

    #[test]
    fn compression_ratio_definition() {
        assert_eq!(compression_ratio(4096, 2048), 2.0);
        assert_eq!(compression_ratio(4096, 4096), 1.0);
        assert_eq!(compression_ratio(0, 0), 1.0);
        assert!(compression_ratio(4096, 1024) > compression_ratio(4096, 2048));
    }

    #[test]
    fn all_codecs_round_trip_basic_corpus() {
        let samples: Vec<Vec<u8>> = vec![
            Vec::new(),
            vec![0u8],
            vec![7u8; 4096],
            b"the quick brown fox jumps over the lazy dog".to_vec(),
            (0..=255u8).cycle().take(8192).collect(),
            b"abcabcabcabcabcabcabcabcabcabcabcabc".to_vec(),
        ];
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            for s in &samples {
                let c = codec.compress(s);
                let d = codec.decompress(&c, s.len()).unwrap_or_else(|e| {
                    panic!("{id}: decompress failed on {} bytes: {e}", s.len())
                });
                assert_eq!(&d, s, "{id} failed round-trip on {} byte sample", s.len());
            }
        }
    }
}
