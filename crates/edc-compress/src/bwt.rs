//! Bzip2-class codec: Burrows–Wheeler transform, move-to-front, zero
//! run-length coding and canonical Huffman coding.
//!
//! This is the *slow/strong* end of EDC's ladder — the best compression
//! ratio of the four codecs at by far the highest CPU cost, matching
//! Bzip2's position in the paper's Fig. 2. The block-sorting core uses the
//! cyclic prefix-doubling sorter from [`crate::suffix`], which is
//! worst-case `O(n log² n)` and therefore needs no bzip2-style RLE1
//! pre-pass to defuse repetitive inputs.
//!
//! ## Container format
//!
//! A leading bit selects `1` = raw fallback (verbatim bytes) or `0` =
//! compressed. Compressed data is a sequence of independent blocks of at
//! most [`BLOCK_SIZE`] input bytes, each:
//!
//! * block length (32 bits) and BWT primary index (32 bits),
//! * serialized Huffman code lengths for the 258-symbol RUNA/RUNB alphabet,
//! * Huffman-coded symbols terminated by `EOB_SYM`.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{build_code_lengths, read_lengths, write_lengths, Decoder, Encoder};
use crate::mtf::{mtf_decode, mtf_encode};
use crate::rle::{zrle_decode, zrle_encode, EOB_SYM, NUM_SYMBOLS};
use crate::suffix::sort_rotations;
use crate::{Codec, CodecId, DecompressError};

/// Default input bytes per BWT block.
pub const BLOCK_SIZE: usize = 64 * 1024;
/// Largest supported block size (the format's length checks depend on it).
pub const MAX_BLOCK_SIZE: usize = 900 * 1024;

/// Bzip2-class block-sorting codec. See the [module docs](self) for the format.
///
/// Like the `bzip2 -1 … -9` levels, the encoder's *block size* trades
/// memory and CPU for ratio: larger sorting blocks expose more repeated
/// context. All block sizes decode interchangeably.
#[derive(Debug, Clone, Copy)]
pub struct Bwt {
    block_size: usize,
}

impl Default for Bwt {
    fn default() -> Self {
        Self::new()
    }
}

impl Bwt {
    /// Create the codec at the default 64 KiB block size.
    pub const fn new() -> Self {
        Self { block_size: BLOCK_SIZE }
    }

    /// Create the codec with an explicit sorting-block size (the bzip2
    /// level analogue; `bzip2 -9` uses 900 KiB).
    ///
    /// # Panics
    /// Panics unless `4096 <= block_size <= MAX_BLOCK_SIZE`.
    pub const fn with_block_size(block_size: usize) -> Self {
        assert!(block_size >= 4096 && block_size <= MAX_BLOCK_SIZE, "block size out of range");
        Self { block_size }
    }
}

/// Forward BWT: returns `(last_column, primary_index)` where `primary_index`
/// is the row of the unrotated input in the sorted rotation matrix.
pub fn bwt_forward(data: &[u8]) -> (Vec<u8>, u32) {
    let n = data.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let order = sort_rotations(data);
    let mut out = Vec::with_capacity(n);
    let mut primary = 0u32;
    for (row, &start) in order.iter().enumerate() {
        let start = start as usize;
        out.push(data[(start + n - 1) % n]);
        if start == 0 {
            primary = row as u32;
        }
    }
    (out, primary)
}

/// Inverse BWT via the LF mapping.
pub fn bwt_inverse(last: &[u8], primary: u32) -> Result<Vec<u8>, DecompressError> {
    let n = last.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let primary = primary as usize;
    if primary >= n {
        return Err(DecompressError::Malformed("BWT primary index out of range"));
    }
    // base[c] = number of bytes < c in the block.
    let mut count = [0usize; 256];
    for &b in last {
        count[b as usize] += 1;
    }
    let mut base = [0usize; 256];
    let mut sum = 0usize;
    for c in 0..256 {
        base[c] = sum;
        sum += count[c];
    }
    // lf[i] = row of the rotation obtained by rotating row i right by one.
    let mut occ = [0usize; 256];
    let mut lf = vec![0u32; n];
    for (i, &b) in last.iter().enumerate() {
        lf[i] = (base[b as usize] + occ[b as usize]) as u32;
        occ[b as usize] += 1;
    }
    // Walk backwards from the primary row emitting last-column bytes.
    let mut out = vec![0u8; n];
    let mut row = primary;
    for slot in out.iter_mut().rev() {
        *slot = last[row];
        row = lf[row] as usize;
    }
    Ok(out)
}

impl Codec for Bwt {
    fn id(&self) -> CodecId {
        CodecId::Bwt
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.write_bits(0, 1); // compressed
        for block in input.chunks(self.block_size) {
            let (last, primary) = bwt_forward(block);
            let mtf = mtf_encode(&last);
            let mut symbols = zrle_encode(&mtf);
            symbols.push(EOB_SYM);

            let mut freqs = vec![0u64; NUM_SYMBOLS];
            for &s in &symbols {
                freqs[s as usize] += 1;
            }
            let lengths = build_code_lengths(&freqs);
            let enc = Encoder::from_lengths(&lengths);

            w.write_bits(block.len() as u64, 32);
            w.write_bits(u64::from(primary), 32);
            write_lengths(&mut w, &lengths);
            for &s in &symbols {
                enc.write(&mut w, s as usize);
            }
        }
        let encoded = w.finish();
        if encoded.len() > input.len() + 1 {
            let mut w = BitWriter::new();
            w.write_bits(1, 1);
            for &b in input {
                w.write_byte(b);
            }
            return w.finish();
        }
        encoded
    }

    fn decompress(&self, input: &[u8], expected_len: usize) -> Result<Vec<u8>, DecompressError> {
        let mut out = Vec::new();
        self.decompress_into(input, expected_len, &mut out)?;
        Ok(out)
    }

    fn decompress_into(
        &self,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), DecompressError> {
        out.clear();
        if input.is_empty() {
            return Err(DecompressError::Truncated);
        }
        let mut r = BitReader::new(input);
        let raw = r.read_bits(1)? == 1;
        // Never pre-allocate an untrusted length (see `Lzf::decompress_into`).
        out.reserve(expected_len.min(16 << 20));
        if raw {
            for _ in 0..expected_len {
                out.push(r.read_bits(8)? as u8);
            }
            return Ok(());
        }
        while out.len() < expected_len {
            let block_len = r.read_bits(32)? as usize;
            if block_len == 0 || block_len > MAX_BLOCK_SIZE {
                return Err(DecompressError::Malformed("bad BWT block length"));
            }
            // Each block must fit inside the declared output; reject before
            // decoding rather than after materializing an oversized block.
            if out.len() + block_len > expected_len {
                return Err(DecompressError::OutputOverflow { expected: expected_len });
            }
            let primary = r.read_bits(32)? as u32;
            let lengths = read_lengths(&mut r, NUM_SYMBOLS)?;
            let dec = Decoder::from_lengths(&lengths)?;
            let mut symbols = Vec::with_capacity(block_len / 2 + 8);
            loop {
                let s = dec.read(&mut r)? as u16;
                if s == EOB_SYM {
                    break;
                }
                symbols.push(s);
                if symbols.len() > 2 * block_len + 64 {
                    return Err(DecompressError::Malformed("runaway symbol stream"));
                }
            }
            // `block_len` caps the zero-run expansion: adversarial digit
            // strings would otherwise overflow the run accumulator.
            let mtf = zrle_decode(&symbols, block_len)
                .ok_or(DecompressError::Malformed("invalid or oversized RUNA/RUNB run"))?;
            if mtf.len() != block_len {
                return Err(DecompressError::Malformed("BWT block length mismatch"));
            }
            let last = mtf_decode(&mtf);
            let block = bwt_inverse(&last, primary)?;
            out.extend_from_slice(&block);
        }
        if out.len() != expected_len {
            return Err(DecompressError::SizeMismatch { expected: expected_len, actual: out.len() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::Deflate;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let c = Bwt::new().compress(data);
        Bwt::new().decompress(&c, data.len()).expect("round trip")
    }

    #[test]
    fn bwt_banana() {
        // Classic example: rotation-sorted "banana" has last column "nnbaaa".
        let (last, primary) = bwt_forward(b"banana");
        assert_eq!(&last, b"nnbaaa");
        assert_eq!(bwt_inverse(&last, primary).unwrap(), b"banana");
    }

    #[test]
    fn bwt_inverse_rejects_bad_primary() {
        let (last, _) = bwt_forward(b"banana");
        assert!(bwt_inverse(&last, 6).is_err());
    }

    #[test]
    fn bwt_forward_inverse_pseudorandom() {
        let mut x = 42u64;
        for len in [1usize, 2, 7, 100, 1000] {
            let data: Vec<u8> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (x >> 56) as u8
                })
                .collect();
            let (last, primary) = bwt_forward(&data);
            assert_eq!(bwt_inverse(&last, primary).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(b""), b"");
    }

    #[test]
    fn single_byte() {
        assert_eq!(roundtrip(b"Q"), b"Q");
    }

    #[test]
    fn periodic_input() {
        let data: Vec<u8> = b"ab".iter().copied().cycle().take(4096).collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn all_zeros_compress_tiny() {
        let data = vec![0u8; 65536];
        let c = Bwt::new().compress(&data);
        assert!(c.len() < 256, "got {}", c.len());
        assert_eq!(Bwt::new().decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn multi_block_input() {
        // Crosses the BLOCK_SIZE boundary: 2.5 blocks.
        let data: Vec<u8> = (0..BLOCK_SIZE * 5 / 2)
            .map(|i| ((i / 7) % 251) as u8)
            .collect();
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn exact_block_boundary() {
        let data: Vec<u8> = (0..BLOCK_SIZE).map(|i| (i % 17) as u8).collect();
        assert_eq!(roundtrip(&data), data);
        let data2: Vec<u8> = (0..2 * BLOCK_SIZE).map(|i| (i % 13) as u8).collect();
        assert_eq!(roundtrip(&data2), data2);
    }

    #[test]
    fn beats_deflate_on_text() {
        // The strong codec must out-compress the mid codec on natural-ish
        // text — the ratio ordering the paper's Fig. 2 depends on.
        let mut data = Vec::new();
        let sentences = [
            "the workload monitor computes the calculated iops every second. ",
            "compressible blocks are merged by the sequentiality detector. ",
            "flash translation layers perform out of place updates on write. ",
            "garbage collection erases victim blocks and migrates live pages. ",
        ];
        let mut seed = 7u64;
        while data.len() < 60_000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            data.extend_from_slice(sentences[(seed >> 33) as usize % sentences.len()].as_bytes());
        }
        let b = Bwt::new().compress(&data);
        let d = Deflate::new().compress(&data);
        assert!(b.len() < d.len(), "bwt {} !< deflate {}", b.len(), d.len());
        assert_eq!(Bwt::new().decompress(&b, data.len()).unwrap(), data);
    }

    #[test]
    fn block_sizes_trade_ratio_and_interoperate() {
        // Repetition with a long period only becomes visible to larger
        // sorting blocks.
        let mut data = Vec::new();
        let phrase: Vec<u8> = (0..50_000u32).map(|i| (i % 253) as u8).collect();
        for _ in 0..4 {
            data.extend_from_slice(&phrase);
        }
        let small = Bwt::with_block_size(16 * 1024).compress(&data);
        let large = Bwt::with_block_size(256 * 1024).compress(&data);
        assert!(large.len() < small.len(), "large blocks {} !< small {}", large.len(), small.len());
        // Any encoder's output decodes with any decoder instance.
        assert_eq!(Bwt::new().decompress(&large, data.len()).unwrap(), data);
        assert_eq!(Bwt::with_block_size(4096).decompress(&small, data.len()).unwrap(), data);
    }

    #[test]
    fn incompressible_raw_fallback_bound() {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        let c = Bwt::new().compress(&data);
        assert!(c.len() <= data.len() + 1);
        assert_eq!(Bwt::new().decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn truncated_stream_detected() {
        let data: Vec<u8> = b"abcdefgh".iter().copied().cycle().take(8192).collect();
        let mut c = Bwt::new().compress(&data);
        c.truncate(c.len() / 3);
        assert!(Bwt::new().decompress(&c, data.len()).is_err());
    }

    #[test]
    fn wrong_expected_len_detected() {
        let data = b"rotations rotations rotations";
        let c = Bwt::new().compress(data);
        assert!(Bwt::new().decompress(&c, data.len() + 3).is_err());
    }

    #[test]
    fn deterministic_output() {
        let data: Vec<u8> =
            (0..30_000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();
        assert_eq!(Bwt::new().compress(&data), Bwt::new().compress(&data));
    }
}
