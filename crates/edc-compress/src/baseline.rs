//! Frozen pre-optimization reference encoders.
//!
//! These are verbatim copies of the Lzf / Lz4 / Deflate compress paths as
//! they existed *before* the hot-path overhaul (reusable
//! [`CompressorState`](crate::CompressorState), word-wide match extension,
//! hoisted Huffman setup): fresh hash tables allocated per call,
//! byte-at-a-time match extension, and `partition_point` per token.
//!
//! They serve two purposes:
//!
//! 1. **Perf baseline** — `bench-codecs` measures these and the optimized
//!    paths in the same run, so speedups are apples-to-apples on the same
//!    machine (the acceptance bar is optimized-Deflate ≥ 2× this baseline).
//! 2. **Bit-identity oracle** — the optimized paths must emit *exactly*
//!    these streams. Equivalence is enforced by the golden-stream fixtures
//!    and by property tests comparing the two encoders on random inputs.
//!
//! Do not "fix" or speed up this module: its value is that it never changes.

use crate::bitio::BitWriter;
use crate::huffman::{build_code_lengths, write_lengths, Encoder};
use crate::{Bwt, Codec, CodecId};

// ---------------------------------------------------------------------------
// Lzf (see `lzf.rs` module docs for the container format)
// ---------------------------------------------------------------------------

const LZF_MAX_OFFSET: usize = 1 << 13;
const LZF_MAX_MATCH: usize = 264;
const LZF_MIN_MATCH: usize = 3;
const LZF_MAX_LITERAL_RUN: usize = 32;
const LZF_HASH_BITS: u32 = 14;

#[inline]
fn lzf_hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> (32 - LZF_HASH_BITS)) as usize
}

fn lzf_push_literals(out: &mut Vec<u8>, input: &[u8], start: usize, end: usize) {
    let mut i = start;
    while i < end {
        let run = (end - i).min(LZF_MAX_LITERAL_RUN);
        out.push((run - 1) as u8);
        out.extend_from_slice(&input[i..i + run]);
        i += run;
    }
}

/// Pre-refactor Lzf encoder: fresh table per call, byte-wise extension.
pub fn lzf_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let n = input.len();
    if n < LZF_MIN_MATCH + 1 {
        lzf_push_literals(&mut out, input, 0, n);
        return out;
    }
    let mut table = vec![usize::MAX; 1 << LZF_HASH_BITS];
    let mut lit_start = 0usize;
    let mut i = 0usize;
    let limit = n - LZF_MIN_MATCH;
    while i <= limit {
        let h = lzf_hash3(input, i);
        let cand = table[h];
        table[h] = i;
        let ok = cand != usize::MAX
            && i - cand <= LZF_MAX_OFFSET
            && input[cand..cand + LZF_MIN_MATCH] == input[i..i + LZF_MIN_MATCH];
        if !ok {
            i += 1;
            continue;
        }
        let max_len = (n - i).min(LZF_MAX_MATCH);
        let mut len = LZF_MIN_MATCH;
        while len < max_len && input[cand + len] == input[i + len] {
            len += 1;
        }
        lzf_push_literals(&mut out, input, lit_start, i);
        let offset = i - cand - 1;
        if len <= 8 {
            out.push((((len - 2) as u8) << 5) | (offset >> 8) as u8);
        } else {
            out.push(0b111 << 5 | (offset >> 8) as u8);
            out.push((len - 9) as u8);
        }
        out.push((offset & 0xFF) as u8);
        let match_end = i + len;
        let insert_to = match_end.min(limit + 1);
        let mut j = i + 1;
        while j < insert_to {
            table[lzf_hash3(input, j)] = j;
            j += 1;
        }
        i = match_end;
        lit_start = i;
    }
    lzf_push_literals(&mut out, input, lit_start, n);
    out
}

// ---------------------------------------------------------------------------
// Lz4 (see `lz4.rs` module docs for the container format)
// ---------------------------------------------------------------------------

const LZ4_MIN_MATCH: usize = 4;
const LZ4_MAX_OFFSET: usize = u16::MAX as usize;
const LZ4_HASH_BITS: u32 = 15;

#[inline]
fn lz4_hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - LZ4_HASH_BITS)) as usize
}

#[inline]
fn lz4_push_length_ext(out: &mut Vec<u8>, mut rest: usize) {
    while rest >= 255 {
        out.push(255);
        rest -= 255;
    }
    out.push(rest as u8);
}

fn lz4_emit_sequence(
    out: &mut Vec<u8>,
    input: &[u8],
    lit_start: usize,
    lit_end: usize,
    m: Option<(usize, usize)>,
) {
    let lit_len = lit_end - lit_start;
    let lit_nib = lit_len.min(15) as u8;
    let match_nib = match m {
        Some((_, len)) => (len - LZ4_MIN_MATCH).min(15) as u8,
        None => 0,
    };
    out.push(lit_nib << 4 | match_nib);
    if lit_len >= 15 {
        lz4_push_length_ext(out, lit_len - 15);
    }
    out.extend_from_slice(&input[lit_start..lit_end]);
    if let Some((offset, len)) = m {
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if len - LZ4_MIN_MATCH >= 15 {
            lz4_push_length_ext(out, len - LZ4_MIN_MATCH - 15);
        }
    }
}

/// Pre-refactor Lz4 encoder: fresh table per call, byte-wise extension.
pub fn lz4_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let n = input.len();
    if n < LZ4_MIN_MATCH + 1 {
        lz4_emit_sequence(&mut out, input, 0, n, None);
        return out;
    }
    let mut table = vec![usize::MAX; 1 << LZ4_HASH_BITS];
    let mut lit_start = 0usize;
    let mut i = 0usize;
    let limit = n - LZ4_MIN_MATCH;
    while i <= limit {
        let h = lz4_hash4(input, i);
        let cand = table[h];
        table[h] = i;
        let ok = cand != usize::MAX
            && i - cand <= LZ4_MAX_OFFSET
            && input[cand..cand + LZ4_MIN_MATCH] == input[i..i + LZ4_MIN_MATCH];
        if !ok {
            i += 1;
            continue;
        }
        let max_len = n - i;
        let mut len = LZ4_MIN_MATCH;
        while len < max_len && input[cand + len] == input[i + len] {
            len += 1;
        }
        lz4_emit_sequence(&mut out, input, lit_start, i, Some((i - cand, len)));
        let match_end = i + len;
        let insert_to = match_end.min(limit + 1);
        let mut j = i + 1;
        while j < insert_to {
            table[lz4_hash4(input, j)] = j;
            j += 2;
        }
        i = match_end;
        lit_start = i;
    }
    if lit_start < n || out.is_empty() {
        lz4_emit_sequence(&mut out, input, lit_start, n, None);
    }
    out
}

// ---------------------------------------------------------------------------
// Deflate (see `deflate.rs` module docs for the container format)
// ---------------------------------------------------------------------------

const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const WINDOW_SIZE: usize = 32 * 1024;
const HASH_BITS: u32 = 15;
const NUM_LITLEN: usize = 286;
const NUM_DIST: usize = 30;
const EOB: usize = 256;
const NIL: u32 = u32::MAX;

const LEN_TABLE: [(u16, u8); 29] = [
    (3, 0), (4, 0), (5, 0), (6, 0), (7, 0), (8, 0), (9, 0), (10, 0),
    (11, 1), (13, 1), (15, 1), (17, 1),
    (19, 2), (23, 2), (27, 2), (31, 2),
    (35, 3), (43, 3), (51, 3), (59, 3),
    (67, 4), (83, 4), (99, 4), (115, 4),
    (131, 5), (163, 5), (195, 5), (227, 5),
    (258, 0),
];

const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0), (2, 0), (3, 0), (4, 0),
    (5, 1), (7, 1), (9, 2), (13, 2),
    (17, 3), (25, 3), (33, 4), (49, 4),
    (65, 5), (97, 5), (129, 6), (193, 6),
    (257, 7), (385, 7), (513, 8), (769, 8),
    (1025, 9), (1537, 9), (2049, 10), (3073, 10),
    (4097, 11), (6145, 11), (8193, 12), (12289, 12),
    (16385, 13), (24577, 13),
];

#[inline]
fn length_code(len: usize) -> (usize, u64, u8) {
    let idx = LEN_TABLE.partition_point(|&(base, _)| usize::from(base) <= len) - 1;
    let (base, extra) = LEN_TABLE[idx];
    (257 + idx, (len - usize::from(base)) as u64, extra)
}

#[inline]
fn dist_code(dist: usize) -> (usize, u64, u8) {
    let idx = DIST_TABLE.partition_point(|&(base, _)| usize::from(base) <= dist) - 1;
    let (base, extra) = DIST_TABLE[idx];
    (idx, (dist - usize::from(base)) as u64, extra)
}

#[derive(Clone, Copy)]
enum Token {
    Literal(u8),
    Match { len: u16, dist: u16 },
}

#[derive(Clone, Copy)]
struct Effort {
    max_chain: usize,
    good_len: usize,
    lazy: bool,
}

fn effort_for_level(level: u8) -> Effort {
    match level {
        1 => Effort { max_chain: 4, good_len: 8, lazy: false },
        2 => Effort { max_chain: 8, good_len: 16, lazy: false },
        3 => Effort { max_chain: 16, good_len: 24, lazy: false },
        4 => Effort { max_chain: 24, good_len: 32, lazy: true },
        5 => Effort { max_chain: 40, good_len: 64, lazy: true },
        6 => Effort { max_chain: 64, good_len: 96, lazy: true },
        7 => Effort { max_chain: 96, good_len: 128, lazy: true },
        8 => Effort { max_chain: 160, good_len: 192, lazy: true },
        9 => Effort { max_chain: 256, good_len: MAX_MATCH, lazy: true },
        _ => panic!("deflate level must be 1..=9"),
    }
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

struct ChainMatcher {
    head: Vec<u32>,
    prev: Vec<u32>,
    effort: Effort,
}

impl ChainMatcher {
    fn new(effort: Effort) -> Self {
        ChainMatcher { head: vec![NIL; 1 << HASH_BITS], prev: vec![NIL; WINDOW_SIZE], effort }
    }

    #[inline]
    fn insert(&mut self, data: &[u8], i: usize) {
        let h = hash3(data, i);
        self.prev[i & (WINDOW_SIZE - 1)] = self.head[h];
        self.head[h] = i as u32;
    }

    fn find(&self, data: &[u8], i: usize, max_len: usize) -> Option<(usize, usize)> {
        if max_len < MIN_MATCH {
            return None;
        }
        let h = hash3(data, i);
        let mut cand = self.head[h];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = self.effort.max_chain;
        while cand != NIL && chain > 0 {
            let c = cand as usize;
            if i - c > WINDOW_SIZE {
                break;
            }
            if c + best_len < data.len()
                && i + best_len < data.len()
                && data[c + best_len] == data[i + best_len]
            {
                let mut len = 0usize;
                while len < max_len && data[c + len] == data[i + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = i - c;
                    if len >= self.effort.good_len.min(max_len) {
                        break;
                    }
                }
            }
            let next = self.prev[c & (WINDOW_SIZE - 1)];
            if next != NIL && next as usize >= c {
                break;
            }
            cand = next;
            chain -= 1;
        }
        (best_len >= MIN_MATCH).then_some((best_len, best_dist))
    }
}

fn tokenize(input: &[u8], effort: Effort) -> Vec<Token> {
    let n = input.len();
    let mut tokens = Vec::with_capacity(n / 3 + 8);
    if n < MIN_MATCH {
        tokens.extend(input.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    let mut m = ChainMatcher::new(effort);
    let limit = n - MIN_MATCH;
    let mut i = 0usize;
    while i < n {
        if i > limit {
            tokens.push(Token::Literal(input[i]));
            i += 1;
            continue;
        }
        let here = m.find(input, i, (n - i).min(MAX_MATCH));
        m.insert(input, i);
        let Some((mut len, mut dist)) = here else {
            tokens.push(Token::Literal(input[i]));
            i += 1;
            continue;
        };
        if effort.lazy && len < effort.good_len && i < limit {
            if let Some((nlen, ndist)) = m.find(input, i + 1, (n - i - 1).min(MAX_MATCH)) {
                if nlen > len {
                    tokens.push(Token::Literal(input[i]));
                    m.insert(input, i + 1);
                    i += 1;
                    len = nlen;
                    dist = ndist;
                }
            }
        }
        tokens.push(Token::Match { len: len as u16, dist: dist as u16 });
        let match_end = i + len;
        let insert_to = match_end.min(limit + 1);
        let mut j = i + 1;
        while j < insert_to {
            m.insert(input, j);
            j += 1;
        }
        i = match_end;
    }
    tokens
}

/// Pre-refactor Deflate encoder at an explicit level: fresh chain arrays,
/// per-call Huffman allocations, `partition_point` per token.
pub fn deflate_compress_level(input: &[u8], level: u8) -> Vec<u8> {
    let tokens = tokenize(input, effort_for_level(level));

    let mut lit_freq = vec![0u64; NUM_LITLEN];
    let mut dist_freq = vec![0u64; NUM_DIST];
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[length_code(len as usize).0] += 1;
                dist_freq[dist_code(dist as usize).0] += 1;
            }
        }
    }
    lit_freq[EOB] += 1;

    let lit_lens = build_code_lengths(&lit_freq);
    let dist_lens = build_code_lengths(&dist_freq);
    let lit_enc = Encoder::from_lengths(&lit_lens);
    let dist_enc = Encoder::from_lengths(&dist_lens);

    let mut w = BitWriter::new();
    w.write_bits(0, 1);
    write_lengths(&mut w, &lit_lens);
    write_lengths(&mut w, &dist_lens);
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_enc.write(&mut w, b as usize),
            Token::Match { len, dist } => {
                let (lc, lextra, lbits) = length_code(len as usize);
                lit_enc.write(&mut w, lc);
                if lbits > 0 {
                    w.write_bits(lextra, u32::from(lbits));
                }
                let (dc, dextra, dbits) = dist_code(dist as usize);
                dist_enc.write(&mut w, dc);
                if dbits > 0 {
                    w.write_bits(dextra, u32::from(dbits));
                }
            }
        }
    }
    lit_enc.write(&mut w, EOB);
    let encoded = w.finish();

    if encoded.len() > input.len() + 1 {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        for &b in input {
            w.write_byte(b);
        }
        return w.finish();
    }
    encoded
}

/// Pre-refactor Deflate encoder at the default level (6).
pub fn deflate_compress(input: &[u8]) -> Vec<u8> {
    deflate_compress_level(input, 6)
}

/// Pre-refactor encoder for any [`CodecId`].
///
/// `Bwt` had no hot-path changes in the overhaul, so it dispatches to the
/// live codec; `None` is an identity copy.
pub fn compress(id: CodecId, input: &[u8]) -> Vec<u8> {
    match id {
        CodecId::None => input.to_vec(),
        CodecId::Lzf => lzf_compress(input),
        CodecId::Lz4 => lz4_compress(input),
        CodecId::Deflate => deflate_compress(input),
        CodecId::Bwt => Bwt::new().compress(input),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Deflate, Lz4, Lzf};

    #[test]
    fn baseline_matches_live_encoders() {
        // The live encoders are refactored for speed but must stay
        // bit-identical to these frozen copies.
        let inputs: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"A".to_vec(),
            b"the quick brown fox jumps over the lazy dog".to_vec(),
            b"abcabcabcabc".iter().copied().cycle().take(5000).collect(),
            (0..20_000u32).map(|i| (i % 251) as u8).collect(),
        ];
        for input in &inputs {
            assert_eq!(lzf_compress(input), Lzf::new().compress(input), "lzf");
            assert_eq!(lz4_compress(input), Lz4::new().compress(input), "lz4");
            for level in [1u8, 6, 9] {
                assert_eq!(
                    deflate_compress_level(input, level),
                    Deflate::with_level(level).compress(input),
                    "deflate level {level}"
                );
            }
        }
    }
}
