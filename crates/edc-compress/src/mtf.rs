//! Move-to-front transform, the middle stage of the Bzip2-class pipeline
//! ([`crate::bwt`]).
//!
//! After the Burrows–Wheeler transform, equal bytes cluster; MTF converts
//! that local clustering into a stream dominated by small values (mostly
//! zeros), which the zero-run-length stage ([`crate::rle`]) then collapses.

/// Forward move-to-front: each output byte is the index of the input byte in
/// a recency list, which is then reordered to put that byte first.
pub fn mtf_encode(input: &[u8]) -> Vec<u8> {
    let mut order: [u8; 256] = std::array::from_fn(|i| i as u8);
    input
        .iter()
        .map(|&b| {
            // The recency list is a permutation of all 256 byte values, so
            // the search always terminates; the `unwrap_or` (rather than a
            // panicking `expect`) keeps the whole decode chain panic-free
            // by construction.
            let idx =
                order.iter().position(|&x| x == b).unwrap_or(usize::from(u8::MAX)) as u8;
            // Move to front.
            order.copy_within(0..idx as usize, 1);
            order[0] = b;
            idx
        })
        .collect()
}

/// Inverse move-to-front.
pub fn mtf_decode(input: &[u8]) -> Vec<u8> {
    let mut order: [u8; 256] = std::array::from_fn(|i| i as u8);
    input
        .iter()
        .map(|&idx| {
            let b = order[idx as usize];
            order.copy_within(0..idx as usize, 1);
            order[0] = b;
            b
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        assert!(mtf_encode(&[]).is_empty());
        assert!(mtf_decode(&[]).is_empty());
    }

    #[test]
    fn identity_first_symbol() {
        // Byte 0 is initially at index 0.
        assert_eq!(mtf_encode(&[0]), vec![0]);
        // Byte 5 is initially at index 5.
        assert_eq!(mtf_encode(&[5]), vec![5]);
    }

    #[test]
    fn repeated_bytes_become_zeros() {
        let out = mtf_encode(b"aaaaaa");
        assert_eq!(out[0], b'a');
        assert!(out[1..].iter().all(|&x| x == 0));
    }

    #[test]
    fn clustered_input_yields_small_values() {
        let input = b"aaaabbbbccccaaaa";
        let out = mtf_encode(input);
        // Within each run, everything after the first occurrence is zero,
        // and re-visiting a recently-seen byte yields a small index.
        assert!(out[1..4].iter().all(|&x| x == 0), "{out:?}");
        assert!(out[5..8].iter().all(|&x| x == 0), "{out:?}");
        assert!(out[9..12].iter().all(|&x| x == 0), "{out:?}");
        assert!(out[12] <= 3, "{out:?}"); // 'a' again, two distinct bytes since
        assert!(out[13..].iter().all(|&x| x == 0), "{out:?}");
    }

    #[test]
    fn round_trip_all_bytes() {
        let input: Vec<u8> = (0..=255u8).chain((0..=255u8).rev()).collect();
        assert_eq!(mtf_decode(&mtf_encode(&input)), input);
    }

    #[test]
    fn round_trip_text() {
        let input = b"move to front transforms clustered data into small indices";
        assert_eq!(mtf_decode(&mtf_encode(input)), input);
    }

    #[test]
    fn known_sequence() {
        // input: b a b
        // order [0..]: ..., encode 'b'(98): idx 98; order: b,0,1,...
        // encode 'a'(97): 'a' was at 97, now shifted to 98 by 'b' moving front.
        let out = mtf_encode(b"bab");
        assert_eq!(out, vec![98, 98, 1]);
        assert_eq!(mtf_decode(&out), b"bab");
    }
}
