//! Sampling-based compressibility estimation (paper §III-D).
//!
//! EDC decides *whether* to compress a block before spending the CPU time
//! compressing it, by probing a small sample. The paper cites
//! content-based sampling (Xie et al., ATC'13; Harnik et al., FAST'13);
//! following that line, the estimator here:
//!
//! 1. gathers a strided sample of the block (so that locally uniform
//!    regions do not dominate),
//! 2. computes the byte-entropy of the sample, and
//! 3. runs the cheap [`Lzf`] codec over the sample as an LZ
//!    probe.
//!
//! The final estimated *compressed fraction* (compressed/original, lower is
//! more compressible) is the minimum of the two signals: entropy catches
//! skewed byte distributions, the LZ probe catches repetition that entropy
//! misses. Blocks whose estimate exceeds the write-through threshold (75 %
//! in the paper — the same quantum EDC's allocator uses) are stored
//! uncompressed.

use crate::{Codec, Lzf};


/// Compressibility class, aligned with EDC's quantized allocation sizes
/// (paper Fig. 5: compressed blocks get 25 %, 50 % or 75 % of the original
/// size; anything worse is written through).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CompressibilityClass {
    /// Estimated to fit in ≤ 25 % of the original size.
    High,
    /// Estimated to fit in ≤ 50 %.
    Medium,
    /// Estimated to fit in ≤ 75 %.
    Low,
    /// Estimated > 75 %: write through uncompressed.
    Incompressible,
}

impl CompressibilityClass {
    /// The allocation quantum for this class as a fraction of the original
    /// block size (1.0 = stored uncompressed).
    pub fn allocation_fraction(self) -> f64 {
        match self {
            CompressibilityClass::High => 0.25,
            CompressibilityClass::Medium => 0.50,
            CompressibilityClass::Low => 0.75,
            CompressibilityClass::Incompressible => 1.0,
        }
    }

    /// Classify an exact or estimated compressed fraction.
    pub fn from_fraction(fraction: f64, write_through_threshold: f64) -> Self {
        if fraction > write_through_threshold {
            CompressibilityClass::Incompressible
        } else if fraction > 0.50 {
            CompressibilityClass::Low
        } else if fraction > 0.25 {
            CompressibilityClass::Medium
        } else {
            CompressibilityClass::High
        }
    }
}

/// Configuration for the sampling estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Bytes of sample gathered per block (clamped to the block size).
    pub sample_len: usize,
    /// Number of strided sub-samples the sample is gathered from.
    pub sample_chunks: usize,
    /// Estimated-fraction threshold above which a block is written through
    /// uncompressed (the paper's 75 % rule).
    pub write_through_threshold: f64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig { sample_len: 512, sample_chunks: 4, write_through_threshold: 0.75 }
    }
}

/// Result of probing one block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressibilityEstimate {
    /// Estimated compressed/original fraction (lower = more compressible).
    pub fraction: f64,
    /// Quantized class.
    pub class: CompressibilityClass,
}

/// Sampling compressibility estimator. Stateless and cheap enough to sit on
/// the write path (it touches `sample_len` bytes per block, not the block).
///
/// ```
/// use edc_compress::Estimator;
///
/// let estimator = Estimator::default();
/// assert!(!estimator.is_incompressible(&vec![0u8; 4096])); // zeros compress
/// let noise: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
/// assert!(estimator.is_incompressible(&noise)); // pseudo-random does not
/// ```
#[derive(Debug, Clone)]
pub struct Estimator {
    config: EstimatorConfig,
    probe: Lzf,
}

impl Default for Estimator {
    fn default() -> Self {
        Estimator::new(EstimatorConfig::default())
    }
}

impl Estimator {
    /// Create an estimator with the given configuration.
    pub fn new(config: EstimatorConfig) -> Self {
        assert!(config.sample_len > 0, "sample_len must be positive");
        assert!(config.sample_chunks > 0, "sample_chunks must be positive");
        assert!(
            (0.0..=1.0).contains(&config.write_through_threshold),
            "threshold must be a fraction"
        );
        Estimator { config, probe: Lzf::new() }
    }

    /// The active configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Gather the strided sample of `block` into `buf`.
    fn sample_into(&self, block: &[u8], buf: &mut Vec<u8>) {
        buf.clear();
        let want = self.config.sample_len.min(block.len());
        if want == block.len() {
            buf.extend_from_slice(block);
            return;
        }
        let chunks = self.config.sample_chunks.min(want);
        let per_chunk = want / chunks;
        // Spread chunk starts evenly across the block.
        for c in 0..chunks {
            let start = c * (block.len() - per_chunk) / chunks.max(1);
            buf.extend_from_slice(&block[start..start + per_chunk]);
        }
    }

    /// Shannon entropy of `data` in bits/byte, divided by 8 to give the
    /// entropy-coding lower bound as a compressed fraction.
    fn entropy_fraction(data: &[u8]) -> f64 {
        if data.is_empty() {
            return 1.0;
        }
        let mut counts = [0u32; 256];
        for &b in data {
            counts[b as usize] += 1;
        }
        let n = data.len() as f64;
        let mut bits = 0.0f64;
        for &c in &counts {
            if c > 0 {
                let p = f64::from(c) / n;
                bits -= p * p.log2();
            }
        }
        bits / 8.0
    }

    /// Estimate the compressibility of `block`.
    pub fn estimate(&self, block: &[u8]) -> CompressibilityEstimate {
        if block.is_empty() {
            return CompressibilityEstimate {
                fraction: 1.0,
                class: CompressibilityClass::Incompressible,
            };
        }
        let mut sample = Vec::with_capacity(self.config.sample_len);
        self.sample_into(block, &mut sample);
        let entropy = Self::entropy_fraction(&sample);
        let lz = self.probe.compress(&sample).len() as f64 / sample.len() as f64;
        let fraction = entropy.min(lz).clamp(0.0, 2.0);
        CompressibilityEstimate {
            fraction,
            class: CompressibilityClass::from_fraction(
                fraction,
                self.config.write_through_threshold,
            ),
        }
    }

    /// Convenience: should this block be written through uncompressed?
    pub fn is_incompressible(&self, block: &[u8]) -> bool {
        self.estimate(block).class == CompressibilityClass::Incompressible
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_bytes(n: usize, mut x: u64) -> Vec<u8> {
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn zeros_are_highly_compressible() {
        let est = Estimator::default().estimate(&vec![0u8; 4096]);
        assert_eq!(est.class, CompressibilityClass::High);
        assert!(est.fraction < 0.1, "fraction {}", est.fraction);
    }

    #[test]
    fn random_bytes_are_incompressible() {
        let data = xorshift_bytes(4096, 0xABCD_EF01_2345_6789);
        let est = Estimator::default().estimate(&data);
        assert_eq!(est.class, CompressibilityClass::Incompressible);
        assert!(est.fraction > 0.9, "fraction {}", est.fraction);
    }

    #[test]
    fn text_is_compressible() {
        let data: Vec<u8> = b"the elastic compression scheme monitors io intensity "
            .iter()
            .copied()
            .cycle()
            .take(4096)
            .collect();
        let est = Estimator::default().estimate(&data);
        assert!(est.class < CompressibilityClass::Incompressible);
        assert!(est.fraction < 0.5, "fraction {}", est.fraction);
    }

    #[test]
    fn empty_block_is_write_through() {
        let est = Estimator::default().estimate(&[]);
        assert_eq!(est.class, CompressibilityClass::Incompressible);
    }

    #[test]
    fn small_block_smaller_than_sample() {
        let est = Estimator::default().estimate(b"tiny");
        // Must not panic; 4 incompressible-looking bytes.
        assert!(est.fraction > 0.0);
    }

    #[test]
    fn strided_sampling_sees_mixed_content() {
        // Compressible head, incompressible tail: a head-only sampler would
        // say "High"; strided sampling must notice the random half.
        let mut data = vec![b'a'; 8192];
        data.extend(xorshift_bytes(8192, 99));
        let est = Estimator::default().estimate(&data);
        assert!(
            est.fraction > 0.25,
            "strided sample must see the random tail, got {}",
            est.fraction
        );
    }

    #[test]
    fn class_thresholds() {
        let t = 0.75;
        assert_eq!(CompressibilityClass::from_fraction(0.1, t), CompressibilityClass::High);
        assert_eq!(CompressibilityClass::from_fraction(0.25, t), CompressibilityClass::High);
        assert_eq!(CompressibilityClass::from_fraction(0.3, t), CompressibilityClass::Medium);
        assert_eq!(CompressibilityClass::from_fraction(0.50, t), CompressibilityClass::Medium);
        assert_eq!(CompressibilityClass::from_fraction(0.6, t), CompressibilityClass::Low);
        assert_eq!(CompressibilityClass::from_fraction(0.75, t), CompressibilityClass::Low);
        assert_eq!(
            CompressibilityClass::from_fraction(0.76, t),
            CompressibilityClass::Incompressible
        );
    }

    #[test]
    fn allocation_fractions_match_paper_quanta() {
        assert_eq!(CompressibilityClass::High.allocation_fraction(), 0.25);
        assert_eq!(CompressibilityClass::Medium.allocation_fraction(), 0.50);
        assert_eq!(CompressibilityClass::Low.allocation_fraction(), 0.75);
        assert_eq!(CompressibilityClass::Incompressible.allocation_fraction(), 1.0);
    }

    #[test]
    fn custom_threshold_is_respected() {
        // With a strict threshold, mildly compressible data is written through.
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 64) as u8).collect();
        let strict = Estimator::new(EstimatorConfig {
            write_through_threshold: 0.05,
            ..EstimatorConfig::default()
        });
        assert!(strict.is_incompressible(&data));
        let lax = Estimator::default();
        assert!(!lax.is_incompressible(&data));
    }

    #[test]
    #[should_panic(expected = "sample_len must be positive")]
    fn zero_sample_len_rejected() {
        let _ = Estimator::new(EstimatorConfig { sample_len: 0, ..EstimatorConfig::default() });
    }

    #[test]
    fn estimator_is_deterministic() {
        let data = xorshift_bytes(4096, 7);
        let e = Estimator::default();
        assert_eq!(e.estimate(&data), e.estimate(&data));
    }
}
