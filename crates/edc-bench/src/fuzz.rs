//! Dependency-free, seeded, structure-aware fuzzer for every
//! `edc-compress` decoder.
//!
//! The decoder-hardening contract (DESIGN.md §10) says: for *arbitrary*
//! input bytes, `decompress`/`decompress_into` must return a typed error
//! or an exactly-sized `Ok` — never panic, never loop unboundedly, and
//! never grow the output past `expected_len`. This module is the proof
//! engine behind that claim:
//!
//! * **Corpus** — valid compressed streams of every codec over text-like,
//!   zero, periodic and random blocks (plus framed streams for
//!   [`edc_compress::frame`]).
//! * **Mutations** — seeded bit flips, byte sets, truncations, random
//!   extensions, cross-stream splices, region duplications, and pure
//!   random byte strings; each decoded against several expected lengths
//!   (the true one, zero, small, and decorrelated random values).
//! * **Oracle** — every decode runs under [`std::panic::catch_unwind`]
//!   (with the default hook silenced for the run): a panic, an `Ok` of
//!   the wrong size, or an output buffer past `expected_len` is a crash.
//! * **Minimizer** — greedy chunk-then-byte removal shrinks any crasher
//!   before it is reported, so the reproducer that lands in a regression
//!   fixture is as small as the failure allows.
//!
//! The `edc-bench fuzz` subcommand drives [`run_campaign`] and fails the
//! process on any crash; minimized crashers are printed as Rust array
//! literals ready to check in under
//! `crates/edc-compress/tests/fuzz_regressions.rs`.

use edc_compress::{codec_by_id, frame, Codec, CodecId};
use edc_datagen::rng::Rng64;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What the oracle observed for one decoded input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Typed error, buffer within bounds — the expected outcome for
    /// mutated input.
    Rejected,
    /// Clean decode of exactly `expected_len` bytes (mutations that load
    /// only dead stream regions can still decode).
    Accepted,
    /// The decoder panicked.
    Panicked,
    /// `Ok` was returned but the output length was not `expected_len`.
    WrongLength,
    /// The output buffer exceeded `expected_len` (even on an `Err`).
    Overrun,
}

/// A minimized crashing input.
#[derive(Debug, Clone)]
pub struct Crash {
    /// Codec whose decoder misbehaved (`None` = the frame decoder).
    pub codec: Option<CodecId>,
    /// Expected length passed to the decoder.
    pub expected_len: usize,
    /// Minimized input bytes that still reproduce the failure.
    pub input: Vec<u8>,
    /// Which contract clause was violated.
    pub verdict: Verdict,
}

/// Aggregate result of a fuzz campaign.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Total mutated/random inputs decoded (each counted once, even
    /// though several expected lengths are tried per input).
    pub inputs: u64,
    /// Decodes that returned a typed error within bounds.
    pub rejected: u64,
    /// Decodes that legitimately succeeded.
    pub accepted: u64,
    /// Contract violations, minimized. Empty means the campaign passed.
    pub crashes: Vec<Crash>,
}

impl FuzzReport {
    /// True when no decoder violated the hardening contract.
    pub fn passed(&self) -> bool {
        self.crashes.is_empty()
    }
}

/// Decode `input` with `codec` against `expected_len` under the panic
/// oracle. Returns the verdict for this single decode.
fn oracle(codec: &dyn Codec, input: &[u8], expected_len: usize) -> Verdict {
    let mut out = Vec::new();
    let result = catch_unwind(AssertUnwindSafe(|| codec.decompress_into(input, expected_len, &mut out)));
    match result {
        Err(_) => Verdict::Panicked,
        Ok(Ok(())) => {
            if out.len() == expected_len {
                Verdict::Accepted
            } else {
                Verdict::WrongLength
            }
        }
        Ok(Err(_)) => {
            if out.len() > expected_len {
                Verdict::Overrun
            } else {
                Verdict::Rejected
            }
        }
    }
}

/// Decode a frame under the panic oracle (frames carry their own length).
fn frame_oracle(input: &[u8]) -> Verdict {
    match catch_unwind(AssertUnwindSafe(|| frame::decompress(input))) {
        Err(_) => Verdict::Panicked,
        Ok(Ok(_)) => Verdict::Accepted,
        Ok(Err(_)) => Verdict::Rejected,
    }
}

fn is_crash(v: Verdict) -> bool {
    matches!(v, Verdict::Panicked | Verdict::WrongLength | Verdict::Overrun)
}

/// One corpus entry: a valid stream and the original length it encodes.
struct Seed {
    stream: Vec<u8>,
    original_len: usize,
}

/// Build the valid-stream corpus for one codec: text-like, all-zero,
/// periodic, random, tiny and empty blocks.
fn corpus_for(codec: &dyn Codec, rng: &mut Rng64) -> Vec<Seed> {
    let mut blocks: Vec<Vec<u8>> = vec![
        Vec::new(),
        vec![0u8; 4096],
        b"elastic data compression for flash based storage systems "
            .iter()
            .copied()
            .cycle()
            .take(4096)
            .collect(),
        (0..=255u8).cycle().take(2048).collect(),
        vec![rng.next_u64() as u8; 37],
    ];
    let mut random = vec![0u8; 1024];
    rng.fill_bytes(&mut random);
    blocks.push(random);
    let mut alphabet = vec![0u8; 3000];
    for b in &mut alphabet {
        *b = b'a' + rng.below(5) as u8;
    }
    blocks.push(alphabet);
    blocks
        .into_iter()
        .map(|b| Seed { stream: codec.compress(&b), original_len: b.len() })
        .collect()
}

/// Apply one seeded mutation to `stream` in place; may change its length.
fn mutate(rng: &mut Rng64, stream: &mut Vec<u8>, donor: &[u8]) {
    match rng.below(7) {
        // Bit flips.
        0 => {
            if stream.is_empty() {
                stream.push(rng.next_u64() as u8);
                return;
            }
            for _ in 0..rng.range_usize(1, 9) {
                let pos = rng.below_usize(stream.len());
                stream[pos] ^= 1 << rng.below(8);
            }
        }
        // Byte sets.
        1 => {
            if stream.is_empty() {
                return;
            }
            for _ in 0..rng.range_usize(1, 5) {
                let pos = rng.below_usize(stream.len());
                stream[pos] = rng.next_u64() as u8;
            }
        }
        // Truncation.
        2 => {
            let keep = rng.below_usize(stream.len() + 1);
            stream.truncate(keep);
        }
        // Random extension.
        3 => {
            let mut tail = vec![0u8; rng.range_usize(1, 64)];
            rng.fill_bytes(&mut tail);
            stream.extend_from_slice(&tail);
        }
        // Splice a window from another valid stream.
        4 => {
            if donor.is_empty() {
                return;
            }
            let from = rng.below_usize(donor.len());
            let len = rng.range_usize(1, (donor.len() - from).min(64) + 1);
            let at = rng.below_usize(stream.len() + 1);
            for (k, b) in donor[from..from + len].iter().enumerate() {
                stream.insert(at + k, *b);
            }
        }
        // Duplicate an internal region (length-extension style streams
        // stress accumulator paths this way).
        5 => {
            if stream.is_empty() {
                return;
            }
            let from = rng.below_usize(stream.len());
            let len = rng.range_usize(1, (stream.len() - from).min(32) + 1);
            let chunk = stream[from..from + len].to_vec();
            let at = rng.below_usize(stream.len() + 1);
            for (k, b) in chunk.into_iter().enumerate() {
                stream.insert(at + k, b);
            }
        }
        // Saturate a region with 0xFF (maximal length nibbles/extensions).
        _ => {
            if stream.is_empty() {
                return;
            }
            let from = rng.below_usize(stream.len());
            let len = rng.range_usize(1, (stream.len() - from).min(16) + 1);
            for b in &mut stream[from..from + len] {
                *b = 0xFF;
            }
        }
    }
}

/// Expected lengths to try for a mutated stream whose seed decoded to
/// `original_len` bytes.
fn expected_lens(rng: &mut Rng64, original_len: usize) -> [usize; 4] {
    [original_len, 0, rng.below_usize(64), rng.below_usize(1 << 16)]
}

/// Greedy minimizer: repeatedly remove chunks (halving window sizes down
/// to single bytes) while the crash still reproduces.
fn minimize(codec: &dyn Codec, mut input: Vec<u8>, expected_len: usize, want: Verdict) -> Vec<u8> {
    let reproduces = |bytes: &[u8]| oracle(codec, bytes, expected_len) == want;
    let mut window = (input.len() / 2).max(1);
    while window >= 1 {
        let mut i = 0;
        while i + window <= input.len() {
            let mut candidate = input.clone();
            candidate.drain(i..i + window);
            if reproduces(&candidate) {
                input = candidate;
                // Do not advance: the next window now sits at `i`.
            } else {
                i += 1;
            }
        }
        if window == 1 {
            break;
        }
        window /= 2;
    }
    input
}

/// Run a fuzz campaign of `total_inputs` mutated/random inputs spread
/// across all codecs plus the frame decoder, deterministically from
/// `seed`. The default panic hook is silenced for the duration so the
/// intentional panic-probing stays quiet; it is restored before return.
pub fn run_campaign(total_inputs: u64, seed: u64) -> FuzzReport {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_campaign_inner(total_inputs, seed);
    std::panic::set_hook(prev_hook);
    report
}

fn run_campaign_inner(total_inputs: u64, seed: u64) -> FuzzReport {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut report = FuzzReport::default();

    let codecs: Vec<&'static dyn Codec> =
        CodecId::ALL_CODECS.iter().map(|&id| codec_by_id(id).expect("ladder codec")).collect();
    let corpora: Vec<Vec<Seed>> = codecs.iter().map(|c| corpus_for(*c, &mut rng)).collect();
    // Frame corpus: framed streams of every codec (incl. write-through).
    let frame_corpus: Vec<Vec<u8>> = [CodecId::None, CodecId::Lzf, CodecId::Lz4, CodecId::Deflate, CodecId::Bwt]
        .iter()
        .map(|&id| {
            frame::compress(id, b"framed fuzz corpus payload framed fuzz corpus payload")
        })
        .collect();

    while report.inputs < total_inputs {
        report.inputs += 1;
        // ~1 in 8 inputs fuzz the frame decoder; the rest a raw codec.
        if rng.chance(0.125) {
            let mut stream = if rng.chance(0.3) {
                let mut raw = vec![0u8; rng.below_usize(256)];
                rng.fill_bytes(&mut raw);
                raw
            } else {
                frame_corpus[rng.below_usize(frame_corpus.len())].clone()
            };
            let donor = frame_corpus[rng.below_usize(frame_corpus.len())].clone();
            mutate(&mut rng, &mut stream, &donor);
            match frame_oracle(&stream) {
                Verdict::Rejected => report.rejected += 1,
                Verdict::Accepted => report.accepted += 1,
                v => report.crashes.push(Crash {
                    codec: None,
                    expected_len: 0,
                    input: stream,
                    verdict: v,
                }),
            }
            continue;
        }

        let ci = rng.below_usize(codecs.len());
        let codec = codecs[ci];
        let corpus = &corpora[ci];
        // Structure-aware mutation of a valid stream, or pure random bytes.
        let (mut stream, original_len) = if rng.chance(0.75) {
            let s = &corpus[rng.below_usize(corpus.len())];
            (s.stream.clone(), s.original_len)
        } else {
            let mut raw = vec![0u8; rng.below_usize(512)];
            rng.fill_bytes(&mut raw);
            let len = raw.len() * 2;
            (raw, len)
        };
        let donor = corpus[rng.below_usize(corpus.len())].stream.clone();
        for _ in 0..rng.range_usize(1, 4) {
            mutate(&mut rng, &mut stream, &donor);
        }

        let mut worst: Option<(Verdict, usize)> = None;
        for expected in expected_lens(&mut rng, original_len) {
            let v = oracle(codec, &stream, expected);
            if is_crash(v) {
                worst = Some((v, expected));
                break;
            }
            match v {
                Verdict::Rejected => report.rejected += 1,
                Verdict::Accepted => report.accepted += 1,
                _ => unreachable!("crash verdicts break above"),
            }
        }
        if let Some((verdict, expected_len)) = worst {
            let input = minimize(codec, stream, expected_len, verdict);
            report.crashes.push(Crash {
                codec: Some(codec.id()),
                expected_len,
                input,
                verdict,
            });
            // Keep hunting: one campaign can surface several distinct bugs.
        }
    }
    report
}

/// Render a crash as a ready-to-paste Rust byte-array literal.
pub fn render_crash(c: &Crash) -> String {
    let codec = c.codec.map_or("frame".to_string(), |id| id.name().to_string());
    let bytes: Vec<String> = c.input.iter().map(|b| format!("0x{b:02X}")).collect();
    format!(
        "// {codec} {:?} expected_len={}\nlet stream = [{}];",
        c.verdict,
        c.expected_len,
        bytes.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small deterministic campaign must find nothing on the hardened
    /// decoders — this is the in-tree smoke version of `edc-bench fuzz`.
    #[test]
    fn small_campaign_is_clean() {
        let report = run_campaign(1500, 0xEDC_F022);
        assert_eq!(report.inputs, 1500);
        assert!(report.passed(), "crashes: {:?}", report.crashes);
        assert!(report.rejected > 0, "mutations never rejected — corpus broken?");
        assert!(report.accepted > 0, "nothing decoded — corpus broken?");
    }

    /// The campaign is deterministic in its seed.
    #[test]
    fn campaign_is_deterministic() {
        let a = run_campaign(300, 42);
        let b = run_campaign(300, 42);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.crashes.len(), b.crashes.len());
    }

    /// The minimizer shrinks a known crasher-shaped input while the
    /// verdict is preserved (exercised against a Rejected verdict, which
    /// the minimizer treats identically to a crash verdict).
    #[test]
    fn minimizer_preserves_verdict() {
        let codec = codec_by_id(CodecId::Lzf).unwrap();
        let data = vec![7u8; 512];
        let mut stream = codec.compress(&data);
        stream.truncate(stream.len() / 2);
        let v = oracle(codec, &stream, data.len());
        assert_eq!(v, Verdict::Rejected);
        let min = minimize(codec, stream.clone(), data.len(), v);
        assert!(min.len() <= stream.len());
        assert_eq!(oracle(codec, &min, data.len()), v);
    }

    #[test]
    fn render_crash_is_pasteable() {
        let c = Crash {
            codec: Some(CodecId::Lz4),
            expected_len: 64,
            input: vec![0x4F, 0xFF],
            verdict: Verdict::Overrun,
        };
        let s = render_crash(&c);
        assert!(s.contains("0x4F, 0xFF"));
        assert!(s.contains("expected_len=64"));
    }
}
