//! Table formatting and CSV output for experiment results.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table that can render to the terminal and to CSV.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (figure/table id plus description).
    pub title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Serialize as CSV (RFC-4180-enough: quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.iter().map(|s| esc(s)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Write the CSV into `dir/<name>.csv`.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{name}.csv")), self.to_csv())
    }
}

/// Format a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long-name"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["hello, world".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("edc-bench-test-output");
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into()]);
        t.write_csv(&dir, "unit").unwrap();
        let content = std::fs::read_to_string(dir.join("unit.csv")).unwrap();
        assert_eq!(content, "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
