//! Shared experiment environment: device model, cost model, calibrated
//! content model, and trace cache — built once, reused by every figure.

use edc_core::{CalibrationConfig, ContentModel, EdcConfig, Policy, SimConfig, SimScheme};
use edc_datagen::DataMix;
use edc_flash::{HddTiming, RaisLevel, SsdConfig};
use edc_sim::replay::{replay, ReplayReport};
use edc_sim::Storage;
use edc_trace::{Trace, TracePreset};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything an experiment needs, built once.
pub struct ExperimentEnv {
    /// Trace length in seconds.
    pub duration_s: f64,
    /// Master seed.
    pub seed: u64,
    /// Single-SSD configuration (Table I's device analogue).
    pub ssd: SsdConfig,
    /// Engine configuration (one compression worker — the paper's
    /// lightweight prototype).
    pub sim: SimConfig,
    /// Calibrated content model (shared across schemes).
    pub content: Arc<ContentModel>,
    traces: HashMap<&'static str, Trace>,
}

/// A scheme under test, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// No compression.
    Native,
    /// Fixed Lzf.
    Lzf,
    /// Fixed Gzip-class.
    Gzip,
    /// Fixed Bzip2-class.
    Bzip2,
    /// Elastic Data Compression with the default configuration.
    Edc,
}

impl SchemeKind {
    /// The five schemes of the paper's figures, in figure order.
    pub const ALL: [SchemeKind; 5] = [
        SchemeKind::Native,
        SchemeKind::Lzf,
        SchemeKind::Gzip,
        SchemeKind::Bzip2,
        SchemeKind::Edc,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Native => "Native",
            SchemeKind::Lzf => "Lzf",
            SchemeKind::Gzip => "Gzip",
            SchemeKind::Bzip2 => "Bzip2",
            SchemeKind::Edc => "EDC",
        }
    }

    /// The policy this kind runs.
    pub fn policy(self) -> Policy {
        match self {
            SchemeKind::Native => Policy::Native,
            SchemeKind::Lzf => Policy::Fixed(edc_compress::CodecId::Lzf),
            SchemeKind::Gzip => Policy::Fixed(edc_compress::CodecId::Deflate),
            SchemeKind::Bzip2 => Policy::Fixed(edc_compress::CodecId::Bwt),
            SchemeKind::Edc => Policy::Elastic(EdcConfig::default()),
        }
    }
}

/// Storage platform of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// One SSD (Fig. 10).
    SingleSsd,
    /// Five-device RAIS5 (Fig. 11).
    Rais5,
    /// One HDD (paper §VI future work #2).
    Hdd,
}

/// One cell of the scheme × trace matrix.
pub struct MatrixCell {
    /// Scheme under test.
    pub kind: SchemeKind,
    /// Trace name.
    pub trace: &'static str,
    /// Replay outcome.
    pub report: ReplayReport,
    /// Per-codec usage (EDC's Gzip share etc.).
    pub usage: edc_core::CodecUsage,
    /// SD merge rate.
    pub merge_rate: f64,
}

impl ExperimentEnv {
    /// Build the environment. `quick` shrinks durations for smoke runs.
    pub fn new(quick: bool) -> Self {
        let duration_s = if quick { 45.0 } else { 240.0 };
        let seed = 42;
        // 1 GiB logical, preconditioned to 80 %: the heavier write streams
        // (Prxy_0) overrun the free space and exercise GC, while lighter
        // ones (Fin1) barely trigger it — mirroring the mixed GC pressure
        // of the paper's well-worn but large devices.
        let ssd = SsdConfig { logical_bytes: 1 << 30, ..SsdConfig::default() };
        let sim = SimConfig { cpu_workers: 1, precondition: 0.8, ..SimConfig::default() };
        let content = Arc::new(ContentModel::calibrate(
            DataMix::primary_storage(),
            seed,
            if quick {
                CalibrationConfig { samples: 1, small_bytes: 4096, large_bytes: 16384 }
            } else {
                CalibrationConfig::default()
            },
        ));
        let mut traces = HashMap::new();
        for preset in TracePreset::ALL {
            traces.insert(preset.name(), preset.generate(duration_s, seed));
        }
        ExperimentEnv { duration_s, seed, ssd, sim, content, traces }
    }

    /// The four paper traces in figure order.
    pub fn trace_names(&self) -> [&'static str; 4] {
        [
            TracePreset::Fin1.name(),
            TracePreset::Fin2.name(),
            TracePreset::Usr0.name(),
            TracePreset::Prxy0.name(),
        ]
    }

    /// Fetch a generated trace by name.
    pub fn trace(&self, name: &str) -> &Trace {
        self.traces.get(name).expect("unknown trace")
    }

    /// Fresh storage for `platform`.
    pub fn storage(&self, platform: Platform) -> Storage {
        match platform {
            Platform::SingleSsd => Storage::single(self.ssd),
            Platform::Rais5 => Storage::rais(RaisLevel::Rais5, 5, self.ssd)
                .expect("five-member RAIS5 over the bench SSD config is a valid shape"),
            Platform::Hdd => Storage::hdd(self.ssd.logical_bytes, HddTiming::default()),
        }
    }

    /// Build a scheme of `kind` over fresh storage.
    pub fn scheme(&self, kind: SchemeKind, platform: Platform) -> SimScheme {
        SimScheme::new(kind.policy(), self.storage(platform), self.sim.clone(), self.content.clone())
    }

    /// Build a scheme with an explicit policy (threshold sweeps, ablations).
    pub fn scheme_with(&self, policy: Policy, platform: Platform) -> SimScheme {
        SimScheme::new(policy, self.storage(platform), self.sim.clone(), self.content.clone())
    }

    /// Replay one (scheme, trace) cell.
    pub fn run_cell(&self, kind: SchemeKind, trace: &'static str, platform: Platform) -> MatrixCell {
        let mut scheme = self.scheme(kind, platform);
        let report = replay(self.trace(trace), &mut scheme);
        MatrixCell {
            kind,
            trace,
            report,
            usage: scheme.codec_usage(),
            merge_rate: scheme.merge_rate(),
        }
    }

    /// Replay the full scheme × trace matrix on `platform`.
    ///
    /// Cells are independent (each builds its own device and scheme), so
    /// they run on a `std::thread::scope` worker pool; results are
    /// identical to the sequential order by construction (pure functions
    /// of the shared read-only environment).
    pub fn run_matrix(&self, platform: Platform) -> Vec<MatrixCell> {
        let work: Vec<(SchemeKind, &'static str)> = self
            .trace_names()
            .iter()
            .flat_map(|&trace| SchemeKind::ALL.iter().map(move |&kind| (kind, trace)))
            .collect();
        let n = work.len();
        let threads = std::thread::available_parallelism()
            .map_or(2, |c| c.get())
            .min(n)
            .max(1);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<MatrixCell>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let (kind, trace) = work[i];
                            done.push((i, self.run_cell(kind, trace, platform)));
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                for (i, cell) in h.join().expect("matrix worker panicked") {
                    slots[i] = Some(cell);
                }
            }
        });
        slots.into_iter().map(|c| c.expect("cell computed")).collect()
    }
}

/// Find a cell in matrix results.
pub fn cell<'a>(cells: &'a [MatrixCell], kind: SchemeKind, trace: &str) -> &'a MatrixCell {
    cells
        .iter()
        .find(|c| c.kind == kind && c.trace == trace)
        .expect("matrix cell present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_builds_and_runs_one_cell() {
        let env = ExperimentEnv::new(true);
        assert_eq!(env.trace_names().len(), 4);
        let c = env.run_cell(SchemeKind::Native, "Fin2", Platform::SingleSsd);
        assert!(c.report.overall.count > 100);
        assert_eq!(c.report.scheme, "Native");
    }

    #[test]
    fn scheme_kinds_have_unique_names() {
        let names: std::collections::HashSet<&str> =
            SchemeKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
