//! One function per paper table/figure (see DESIGN.md §4), plus the
//! DESIGN.md §6 ablations.

use crate::env::{cell, ExperimentEnv, MatrixCell, Platform, SchemeKind};
use crate::output::{f2, f3, Table};
use edc_compress::{codec_by_id, CodecId};
use edc_core::{AllocPolicy, EdcConfig, FeedbackConfig, Policy, SelectorConfig, SimConfig};
use edc_datagen::corpus::{firefox_binary_like, linux_source_like, Corpus};
use edc_flash::{IoKind, SsdDevice};
use edc_sim::replay::replay;
use edc_trace::stats::{intensity_series, WorkloadStats};
use edc_trace::TracePreset;
use std::time::Instant;

/// Fig. 1 — SSD response time vs request size (linear correlation).
pub fn fig1(env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "Fig.1  SSD response time vs request size (normalized to 4 KiB read)",
        &["size_kib", "read_ms", "write_ms", "read_norm", "write_norm"],
    );
    let mut dev = SsdDevice::new(env.ssd);
    let mut base_read = 0.0f64;
    for kib in [4u32, 8, 16, 32, 64, 128, 256] {
        let len = kib * 1024;
        let now = dev.busy_until();
        let r = dev.submit(now, IoKind::Read, 0, len);
        let read_ms = (r.finish_ns - r.start_ns) as f64 / 1e6;
        let now = dev.busy_until();
        let w = dev.submit(now, IoKind::Write, 0, len);
        let write_ms = (w.finish_ns - w.start_ns) as f64 / 1e6;
        if kib == 4 {
            base_read = read_ms;
        }
        t.row(vec![
            kib.to_string(),
            f3(read_ms),
            f3(write_ms),
            f2(read_ms / base_read),
            f2(write_ms / base_read),
        ]);
    }
    t
}

/// Fig. 2 — compression efficiency of the codecs on the two datasets:
/// compression speed, decompression speed (MB/s, wall clock) and ratio.
pub fn fig2(quick: bool) -> Table {
    let blocks = if quick { 8 } else { 32 };
    let corpora = [linux_source_like(7, blocks, 65536), firefox_binary_like(7, blocks, 65536)];
    let mut t = Table::new(
        "Fig.2  Compression efficiency (measured on this build's codecs)",
        &["dataset", "codec", "c_speed_mb_s", "d_speed_mb_s", "c_ratio"],
    );
    for corpus in &corpora {
        for id in [CodecId::Lzf, CodecId::Lz4, CodecId::Deflate, CodecId::Bwt] {
            let (c_mb, d_mb, ratio) = measure_codec(corpus, id);
            t.row(vec![corpus.name.to_string(), id.name().to_string(), f2(c_mb), f2(d_mb), f3(ratio)]);
        }
    }
    t
}

fn measure_codec(corpus: &Corpus, id: CodecId) -> (f64, f64, f64) {
    let codec = codec_by_id(id).expect("real codec");
    let total: usize = corpus.total_bytes();
    let start = Instant::now();
    let streams: Vec<Vec<u8>> = corpus.blocks.iter().map(|b| codec.compress(b)).collect();
    let c_s = start.elapsed().as_secs_f64();
    let comp_total: usize = streams.iter().map(Vec::len).sum();
    let start = Instant::now();
    for (s, b) in streams.iter().zip(&corpus.blocks) {
        let out = codec.decompress(s, b.len()).expect("round trip");
        std::hint::black_box(&out);
    }
    let d_s = start.elapsed().as_secs_f64();
    let mb = total as f64 / 1e6;
    (mb / c_s.max(1e-9), mb / d_s.max(1e-9), total as f64 / comp_total as f64)
}

/// Fig. 3 — burstiness/idleness of the OLTP and enterprise workloads
/// (per-second intensity; full series goes to CSV, the table shows a
/// summary row per trace).
pub fn fig3(env: &ExperimentEnv) -> (Table, Table) {
    let mut series = Table::new(
        "Fig.3  I/O intensity time series (1 s buckets)",
        &["trace", "t_s", "raw_iops", "calc_iops"],
    );
    let mut summary = Table::new(
        "Fig.3  Burstiness summary",
        &["trace", "mean_iops", "peak_iops", "peak_to_mean", "idle_s_fraction"],
    );
    for name in [TracePreset::Fin1.name(), TracePreset::Usr0.name()] {
        let trace = env.trace(name);
        let pts = intensity_series(&trace.requests, 1.0);
        for p in &pts {
            series.row(vec![name.to_string(), f2(p.t_s), f2(p.raw_iops), f2(p.calculated_iops)]);
        }
        let stats = WorkloadStats::from_trace(trace);
        summary.row(vec![
            name.to_string(),
            f2(stats.avg_iops),
            f2(pts.iter().map(|p| p.raw_iops).fold(0.0, f64::max)),
            f2(stats.burstiness),
            f3(stats.idle_fraction),
        ]);
    }
    (series, summary)
}

/// Table I — experimental setup (the simulated analogue).
pub fn table1(env: &ExperimentEnv) -> Table {
    let mut t = Table::new("Table I  Experimental setup", &["component", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("Platform", "edc-sim discrete-event simulator (deterministic)".into()),
        ("Device model", format!(
            "simulated SLC SATA SSD: {} MiB logical, {:.0}% OP, {} KiB erase blocks",
            env.ssd.logical_bytes >> 20,
            env.ssd.overprovision * 100.0,
            env.ssd.block_bytes() >> 10,
        )),
        ("Device timing", format!(
            "read {} us + {} ns/B, write {} us + {} ns/B, erase {} ms",
            env.ssd.timing.read_overhead_ns / 1000,
            env.ssd.timing.read_ns_per_byte,
            env.ssd.timing.write_overhead_ns / 1000,
            env.ssd.timing.write_ns_per_byte,
            env.ssd.timing.erase_ns as f64 / 1e6,
        )),
        ("Array", "RAIS5 of 5 devices, 64 KiB chunks (Fig. 11)".into()),
        ("Compression engine", format!("{} worker(s), paper-default cost model", env.sim.cpu_workers)),
        ("Traces", format!("synthetic Fin1/Fin2 (SPC-like), Usr_0/Prxy_0 (MSR-like), {} s", env.duration_s)),
        ("Content", "edc-datagen primary-storage mix (SDGen substitute)".into()),
        ("Compression algorithms", "Lzf, Lz4, Gzip-class (Deflate), Bzip2-class (BWT) — from scratch".into()),
        ("Seed", env.seed.to_string()),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    t
}

/// Table II — workload characteristics of the four traces.
pub fn table2(env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "Table II  Workload characteristics",
        &["trace", "requests", "write_pct", "read_pct", "avg_req_kib", "avg_iops", "avg_calc_iops", "burstiness"],
    );
    for name in env.trace_names() {
        let s = WorkloadStats::from_trace(env.trace(name));
        t.row(vec![
            name.to_string(),
            s.requests.to_string(),
            f2(s.write_fraction * 100.0),
            f2(s.read_fraction * 100.0),
            f2(s.avg_request_kib),
            f2(s.avg_iops),
            f2(s.avg_calculated_iops),
            f2(s.burstiness),
        ]);
    }
    t
}

/// Fig. 8 — compression ratio normalized to Native.
pub fn fig8(cells: &[MatrixCell], env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "Fig.8  Compression ratio (normalized to Native = 1.0)",
        &["trace", "Native", "Lzf", "Gzip", "Bzip2", "EDC"],
    );
    for trace in env.trace_names() {
        let mut row = vec![trace.to_string()];
        for kind in SchemeKind::ALL {
            row.push(f3(cell(cells, kind, trace).report.space.compression_ratio()));
        }
        t.row(row);
    }
    t
}

/// Fig. 9 — composite ratio/response-time metric normalized to Native.
pub fn fig9(cells: &[MatrixCell], env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "Fig.9  Ratio/Time composite (normalized to Native = 1.0)",
        &["trace", "Native", "Lzf", "Gzip", "Bzip2", "EDC"],
    );
    for trace in env.trace_names() {
        let native = cell(cells, SchemeKind::Native, trace).report.composite();
        let mut row = vec![trace.to_string()];
        for kind in SchemeKind::ALL {
            row.push(f3(cell(cells, kind, trace).report.composite() / native));
        }
        t.row(row);
    }
    t
}

/// Fig. 10 / Fig. 11 — average response time normalized to Native.
pub fn fig_response(
    cells: &[MatrixCell],
    env: &ExperimentEnv,
    title: &str,
) -> Table {
    let mut t = Table::new(title, &["trace", "Native", "Lzf", "Gzip", "Bzip2", "EDC"]);
    for trace in env.trace_names() {
        let native = cell(cells, SchemeKind::Native, trace).report.overall.mean_ns as f64;
        let mut row = vec![trace.to_string()];
        for kind in SchemeKind::ALL {
            let v = cell(cells, kind, trace).report.overall.mean_ns as f64;
            row.push(f3(v / native));
        }
        t.row(row);
    }
    t
}

/// Fig. 12 — sensitivity to the Gzip/Lzf calculated-IOPS threshold on Fin2.
pub fn fig12(env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "Fig.12  Threshold sensitivity (Fin2, single SSD)",
        &["gzip_below_iops", "gzip_share_pct", "ratio", "resp_ms", "ratio_norm", "resp_norm"],
    );
    // Native baseline for normalization.
    let native = env.run_cell(SchemeKind::Native, "Fin2", Platform::SingleSsd);
    let native_ratio = native.report.space.compression_ratio();
    let native_ms = native.report.mean_response_ms();
    for gzip_below in [0.0, 100.0, 200.0, 400.0, 800.0, 1200.0, 2000.0, 3000.0, 3999.0] {
        let cfg = EdcConfig {
            selector: if gzip_below == 0.0 {
                // All-Lzf ladder (no Gzip band).
                SelectorConfig::two_level(1e-9, 4000.0)
            } else {
                SelectorConfig::two_level(gzip_below, 4000.0)
            },
            ..EdcConfig::default()
        };
        let mut scheme = env.scheme_with(Policy::Elastic(cfg), Platform::SingleSsd);
        let report = replay(env.trace("Fin2"), &mut scheme);
        let usage = scheme.codec_usage();
        let gzip_share = usage.share(CodecId::Deflate);
        t.row(vec![
            f2(gzip_below),
            f2(gzip_share * 100.0),
            f3(report.space.compression_ratio()),
            f3(report.mean_response_ms()),
            f3(report.space.compression_ratio() / native_ratio),
            f3(report.mean_response_ms() / native_ms),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// DESIGN.md §6 ablations
// ---------------------------------------------------------------------------

/// Ablation 1 — Sequentiality Detector on/off.
pub fn ablate_sd(env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "Ablation  SD merge buffer on/off",
        &["trace", "sd", "merge_rate", "ratio", "resp_ms"],
    );
    for trace in env.trace_names() {
        for use_sd in [true, false] {
            let cfg = EdcConfig { use_sd, ..EdcConfig::default() };
            let mut scheme = env.scheme_with(Policy::Elastic(cfg), Platform::SingleSsd);
            let report = replay(env.trace(trace), &mut scheme);
            t.row(vec![
                trace.to_string(),
                if use_sd { "on" } else { "off" }.to_string(),
                f3(scheme.merge_rate()),
                f3(report.space.compression_ratio()),
                f3(report.mean_response_ms()),
            ]);
        }
    }
    t
}

/// Ablation 2 — quantized vs exact-fit allocation.
pub fn ablate_alloc(env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "Ablation  Quantized vs exact-fit allocation (Fin1)",
        &["alloc", "ratio", "resp_ms", "quantum_changes", "frag_mib"],
    );
    for (name, alloc) in [("quantized", AllocPolicy::Quantized), ("exact-fit", AllocPolicy::ExactFit)] {
        let cfg = EdcConfig { alloc, ..EdcConfig::default() };
        let mut scheme = env.scheme_with(Policy::Elastic(cfg), Platform::SingleSsd);
        let report = replay(env.trace("Fin1"), &mut scheme);
        let a = scheme.alloc_stats();
        t.row(vec![
            name.to_string(),
            f3(report.space.compression_ratio()),
            f3(report.mean_response_ms()),
            a.quantum_changes.to_string(),
            f2(a.internal_frag_bytes as f64 / (1 << 20) as f64),
        ]);
    }
    t
}

/// Ablation 3 — write-through threshold sweep.
pub fn ablate_threshold(env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "Ablation  Write-through threshold (Fin1)",
        &["threshold", "write_through_pct", "ratio", "resp_ms"],
    );
    for thr in [0.55, 0.65, 0.75, 0.85, 0.95] {
        let cfg = EdcConfig { write_through_threshold: thr, ..EdcConfig::default() };
        let mut scheme = env.scheme_with(Policy::Elastic(cfg), Platform::SingleSsd);
        let report = replay(env.trace("Fin1"), &mut scheme);
        let usage = scheme.codec_usage();
        let total: u64 = usage.blocks.iter().sum();
        let wt = usage.blocks[0] as f64 / total.max(1) as f64;
        t.row(vec![
            f2(thr),
            f2(wt * 100.0),
            f3(report.space.compression_ratio()),
            f3(report.mean_response_ms()),
        ]);
    }
    t
}

/// Ablation 4 — two-level vs three-level ladder (Bzip2 in deep idle).
pub fn ablate_ladder(env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "Ablation  Ladder shape (Usr_0: idle-heavy)",
        &["ladder", "ratio", "resp_ms", "bzip2_share_pct"],
    );
    let ladders: [(&str, SelectorConfig); 2] = [
        ("2-level (Gzip/Lzf)", SelectorConfig::paper_default()),
        ("3-level (+Bzip2 idle)", SelectorConfig::three_level(40.0, 1200.0, 4000.0)),
    ];
    for (name, selector) in ladders {
        let cfg = EdcConfig { selector, ..EdcConfig::default() };
        let mut scheme = env.scheme_with(Policy::Elastic(cfg), Platform::SingleSsd);
        let report = replay(env.trace("Usr_0"), &mut scheme);
        let usage = scheme.codec_usage();
        let total: u64 = usage.blocks.iter().sum();
        t.row(vec![
            name.to_string(),
            f3(report.space.compression_ratio()),
            f3(report.mean_response_ms()),
            f2(usage.blocks[CodecId::Bwt.tag() as usize] as f64 / total.max(1) as f64 * 100.0),
        ]);
    }
    t
}

/// Read/write response breakdown — verifies the paper's §III-E claim that
/// "the overall read response times are not affected" by decompression
/// (smaller reads offset the decompression cost), while writes carry the
/// compression cost.
pub fn rw_breakdown(cells: &[MatrixCell], env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "Read/write response breakdown (normalized to Native per column)",
        &["trace", "scheme", "read_norm", "write_norm", "dev_util", "cpu_util"],
    );
    let duration_ns = (env.duration_s * 1e9) as u64;
    for trace in env.trace_names() {
        let native = cell(cells, SchemeKind::Native, trace);
        let nr = native.report.reads.mean_ns.max(1) as f64;
        let nw = native.report.writes.mean_ns.max(1) as f64;
        for kind in SchemeKind::ALL {
            let c = cell(cells, kind, trace);
            t.row(vec![
                trace.to_string(),
                kind.name().to_string(),
                f3(c.report.reads.mean_ns as f64 / nr),
                f3(c.report.writes.mean_ns as f64 / nw),
                f3(c.report.device_utilization(duration_ns)),
                f3(c.report.cpu_utilization(duration_ns, env.sim.cpu_workers)),
            ]);
        }
    }
    t
}

/// Ablation 7 — NVRAM write-buffer capacity: how much controller DRAM the
/// write-back acknowledgement actually needs before back-pressure sets in.
pub fn ablate_nvram(env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "Ablation  NVRAM write-buffer capacity (Prxy_0)",
        &["nvram", "write_ms", "p99_ms"],
    );
    for (label, nvram) in
        [("64 KiB", 64u64 << 10), ("1 MiB", 1 << 20), ("8 MiB", 8 << 20), ("64 MiB", 64 << 20)]
    {
        let cfg = EdcConfig { nvram_bytes: nvram, ..EdcConfig::default() };
        let mut scheme = env.scheme_with(Policy::Elastic(cfg), Platform::SingleSsd);
        let report = replay(env.trace("Prxy_0"), &mut scheme);
        t.row(vec![
            label.to_string(),
            f3(report.writes.mean_ns as f64 / 1e6),
            f3(report.overall.p99_ns as f64 / 1e6),
        ]);
    }
    t
}

/// Mixed-workload consolidation: Fin1 (OLTP) and Usr_0 (enterprise)
/// merged onto one device — the multi-tenant scenario where a single
/// static tuning can't fit both tenants, but elastic selection adapts to
/// the combined intensity. Exercises `Trace::merge`.
pub fn mixed(env: &ExperimentEnv) -> Table {
    use edc_trace::Trace;
    let merged =
        Trace::merge("Fin1+Usr_0", &[env.trace("Fin1"), env.trace("Usr_0")]);
    let mut t = Table::new(
        "Mixed  Consolidated Fin1+Usr_0 on one SSD (normalized to Native)",
        &["scheme", "ratio", "resp_norm", "p99_norm"],
    );
    let mut native_mean = 0.0f64;
    let mut native_p99 = 0.0f64;
    for kind in SchemeKind::ALL {
        let mut scheme = env.scheme(kind, Platform::SingleSsd);
        let report = replay(&merged, &mut scheme);
        if kind == SchemeKind::Native {
            native_mean = report.overall.mean_ns as f64;
            native_p99 = report.overall.p99_ns as f64;
        }
        t.row(vec![
            kind.name().to_string(),
            f3(report.space.compression_ratio()),
            f3(report.overall.mean_ns as f64 / native_mean),
            f3(report.overall.p99_ns as f64 / native_p99),
        ]);
    }
    t
}

/// Cost-model provenance: measure this machine's actual codec throughputs
/// and print them next to the paper-default constants the simulator uses.
pub fn calibrate(quick: bool) -> Table {
    use edc_compress::CostModel;
    let blocks = if quick { 4 } else { 16 };
    let corpus: Vec<Vec<u8>> = linux_source_like(13, blocks, 65536).blocks;
    let measured = CostModel::calibrate(&corpus, 2);
    let defaults = CostModel::paper_defaults();
    let mut t = Table::new(
        "Calibration  This machine's codecs vs the simulator's cost model",
        &["codec", "measured_c_mb_s", "model_c_mb_s", "measured_d_mb_s", "model_d_mb_s"],
    );
    for id in CodecId::ALL_CODECS {
        let m = measured.cost(id).expect("cost");
        let d = defaults.cost(id).expect("cost");
        t.row(vec![
            id.name().to_string(),
            f2(m.compress_mb_per_s()),
            f2(d.compress_mb_per_s()),
            f2(m.decompress_mb_per_s()),
            f2(d.decompress_mb_per_s()),
        ]);
    }
    t
}

/// Latency timeline — per-second mean response of Native vs EDC on the
/// bursty OLTP trace, showing queue build-up during ON phases and
/// recovery during idle (the dynamics behind Fig. 10's averages).
pub fn timeline(env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "Latency timeline (Fin1, 1 s buckets)",
        &["t_s", "scheme", "arrivals", "mean_ms"],
    );
    for kind in [SchemeKind::Native, SchemeKind::Gzip, SchemeKind::Edc] {
        let c = env.run_cell(kind, "Fin1", Platform::SingleSsd);
        for p in &c.report.timeline {
            if p.count == 0 {
                continue;
            }
            t.row(vec![
                f2(p.t_s),
                kind.name().to_string(),
                p.count.to_string(),
                f3(p.mean_ms),
            ]);
        }
    }
    t
}

/// Ablation 5 — Fig. 6 feedback controller: a deliberately mis-tuned
/// ladder (Gzip band far too wide) with and without the adaptive
/// controller, against the hand-tuned default, on a sustained overload
/// microworkload (the paper traces never saturate the engine; the
/// controller exists for exactly the case where the static tuning is
/// wrong for the load).
pub fn ablate_feedback(env: &ExperimentEnv) -> Table {
    use edc_trace::{OpType, Request, Trace};
    let mut t = Table::new(
        "Ablation  Fig.6 feedback controller (8.3k writes/s overload, inline acks)",
        &["ladder", "ratio", "resp_ms", "p99_ms", "final_scale"],
    );
    // 8.3k non-contiguous 4 KiB writes/s for 3.6 s: ~107 % of one Gzip
    // worker once the ~31 % incompressible share is written through.
    let overload = Trace::new(
        "overload",
        (0..30_000u64)
            .map(|i| Request {
                arrival_ns: i * 120_000,
                op: OpType::Write,
                offset: (i * 7) * 4096,
                len: 4096,
            })
            .collect(),
    );
    let mis_tuned = SelectorConfig::two_level(50_000.0, 1e7);
    let variants: [(&str, SelectorConfig, Option<FeedbackConfig>); 3] = [
        ("hand-tuned static", SelectorConfig::paper_default(), None),
        ("mis-tuned static", mis_tuned.clone(), None),
        ("mis-tuned + feedback", mis_tuned, Some(FeedbackConfig::default())),
    ];
    for (name, selector, feedback) in variants {
        let cfg = EdcConfig { selector, feedback, ack_on_buffer: false, ..EdcConfig::default() };
        let sim = SimConfig { cpu_workers: 1, ..env.sim.clone() };
        let mut scheme = edc_core::SimScheme::new(
            Policy::Elastic(cfg),
            env.storage(Platform::SingleSsd),
            sim,
            env.content.clone(),
        );
        let report = replay(&overload, &mut scheme);
        let scale = scheme.feedback_state().map_or("-".to_string(), |(s, _)| f2(s));
        t.row(vec![
            name.to_string(),
            f3(report.space.compression_ratio()),
            f3(report.mean_response_ms()),
            f3(report.overall.p99_ns as f64 / 1e6),
            scale,
        ]);
    }
    t
}

/// Ablation 6 — decompressed-run DRAM cache on the read-dominated trace.
pub fn ablate_cache(env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "Ablation  Decompressed-run read cache (Fin2)",
        &["cache_runs", "hit_rate_pct", "read_ms", "resp_ms"],
    );
    for runs in [0usize, 64, 512, 4096] {
        let sim = SimConfig { read_cache_runs: runs, ..env.sim.clone() };
        let mut scheme = edc_core::SimScheme::new(
            Policy::Elastic(EdcConfig::default()),
            env.storage(Platform::SingleSsd),
            sim,
            env.content.clone(),
        );
        let report = replay(env.trace("Fin2"), &mut scheme);
        t.row(vec![
            runs.to_string(),
            f2(scheme.cache_stats().hit_rate() * 100.0),
            f3(report.reads.mean_ns as f64 / 1e6),
            f3(report.mean_response_ms()),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Paper §VI future-work experiments (implemented, not just proposed)
// ---------------------------------------------------------------------------

/// Endurance/reliability: erase counts, write amplification, wear evenness
/// and projected lifetime per scheme (the paper's objective 3 and future
/// work #4). Uses the write-heaviest trace (Prxy_0).
pub fn endurance(env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "Endurance  Flash wear per scheme (Prxy_0, single SSD)",
        &["scheme", "flash_writes_mib", "WAF", "erases", "wear_gini", "max_erase", "life_vs_native"],
    );
    let mut native_life = 0.0f64;
    for kind in SchemeKind::ALL {
        let c = env.run_cell(kind, "Prxy_0", Platform::SingleSsd);
        // SLC-class 100k P/E rating; lifetime relative to Native.
        let life = c.report.wear.projected_lifetime_days(100_000, env.duration_s);
        if kind == SchemeKind::Native {
            native_life = life;
        }
        let rel = if native_life.is_finite() && native_life > 0.0 { life / native_life } else { f64::NAN };
        t.row(vec![
            kind.name().to_string(),
            f2(c.report.device.bytes_written as f64 / (1 << 20) as f64),
            f3(c.report.ftl.write_amplification()),
            c.report.ftl.erases.to_string(),
            f3(c.report.wear.gini),
            c.report.wear.max.to_string(),
            if rel.is_nan() { "inf".to_string() } else { f2(rel) },
        ]);
    }
    t
}

/// Energy: CPU vs data-movement energy per scheme (future work #3) —
/// "compression consumes additional energy \[but\] data reduction decreases
/// data movement and thus energy".
pub fn energy(env: &ExperimentEnv) -> Table {
    use edc_sim::EnergyModel;
    let mut t = Table::new(
        "Energy  Per-scheme energy on Fin1 (single SSD)",
        &["scheme", "cpu_j", "transfer_j", "erase_j", "background_j", "total_j", "j_per_gb"],
    );
    let model = EnergyModel::default();
    let duration_ns = (env.duration_s * 1e9) as u64;
    for kind in SchemeKind::ALL {
        let c = env.run_cell(kind, "Fin1", Platform::SingleSsd);
        let e = model.assess(&c.report, duration_ns);
        let logical = c.report.space.logical_bytes + c.report.device.bytes_read;
        t.row(vec![
            kind.name().to_string(),
            f3(e.cpu_j),
            f3(e.transfer_j),
            f3(e.erase_j),
            f3(e.background_j),
            f3(e.total_j()),
            f2(e.j_per_gb(logical)),
        ]);
    }
    t
}

/// HDD backend: the scheme matrix on a disk (future work #2), where seeks
/// dominate and byte savings matter less.
pub fn hdd(env: &ExperimentEnv) -> Table {
    let mut t = Table::new(
        "HDD  Avg response time on one disk (normalized to Native = 1.0)",
        &["trace", "Native", "Lzf", "Gzip", "Bzip2", "EDC"],
    );
    for trace in ["Fin2", "Usr_0"] {
        let native = env.run_cell(SchemeKind::Native, trace, Platform::Hdd);
        let base = native.report.overall.mean_ns as f64;
        let mut row = vec![trace.to_string()];
        for kind in SchemeKind::ALL {
            let c = env.run_cell(kind, trace, Platform::Hdd);
            row.push(f3(c.report.overall.mean_ns as f64 / base));
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_is_linear_in_size() {
        let env = ExperimentEnv::new(true);
        let t = fig1(&env);
        assert_eq!(t.len(), 7);
        let csv = t.to_csv();
        // 256 KiB read must be ~ (25us + 256K*3ns) / (25us + 4K*3ns) ≈ 22x
        // the 4 KiB read; just assert monotonic growth is present.
        assert!(csv.contains("256"));
    }

    #[test]
    fn fig2_preserves_tradeoff_ordering() {
        let t = fig2(true);
        let csv = t.to_csv();
        // Parse the linux-src rows: codec -> (c_speed, ratio)
        let mut speed = std::collections::HashMap::new();
        let mut ratio = std::collections::HashMap::new();
        for line in csv.lines().skip(1) {
            let f: Vec<&str> = line.split(',').collect();
            if f[0] == "linux-src" {
                speed.insert(f[1].to_string(), f[2].parse::<f64>().unwrap());
                ratio.insert(f[1].to_string(), f[4].parse::<f64>().unwrap());
            }
        }
        assert!(ratio["Bzip2"] > ratio["Lzf"], "ratio ordering");
        assert!(speed["Lzf"] > speed["Gzip"], "speed ordering lzf>gzip");
        assert!(speed["Gzip"] > speed["Bzip2"], "speed ordering gzip>bzip2");
    }
}
