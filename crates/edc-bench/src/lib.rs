//! # edc-bench
//!
//! Experiment harness regenerating every table and figure of the EDC
//! paper's evaluation (§II measurements and §IV results). Each experiment
//! is a function that runs the simulation/codecs, writes a CSV into the
//! results directory, and returns a printable table. The `edc-bench`
//! binary exposes them as subcommands (`fig1` … `fig12`, `table1`,
//! `table2`, the DESIGN.md ablations, and `all`).
//!
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod experiments;
pub mod fuzz;
pub mod harness;
pub mod output;

pub use env::ExperimentEnv;
pub use harness::Harness;
pub use output::Table;
