//! `edc-bench` — regenerate the EDC paper's tables and figures.
//!
//! ```text
//! cargo run -p edc-bench --release -- all
//! cargo run -p edc-bench --release -- fig10 --quick
//! cargo run -p edc-bench --release -- fig12 --out results
//! ```
//!
//! Subcommands: `fig1 fig2 fig3 table1 table2 fig8 fig9 fig10 fig11 fig12
//! ablations bench-pipeline all`. `--quick` shrinks trace durations (and
//! bench workloads) for smoke runs; `--out DIR` sets the output directory
//! (default `results/`).

use edc_bench::env::{ExperimentEnv, Platform};
use edc_bench::experiments as ex;
use edc_bench::{Harness, Table};
use edc_core::pipeline::{BatchWrite, EdcPipeline, PipelineConfig};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Micro-benchmark of the batched multi-core write path against the
/// serial one, plus the decompressed-run read cache. Writes
/// `BENCH_pipeline.json` into the output directory.
///
/// The serial and batched pipelines receive the identical write sequence
/// and their device images are asserted bit-identical — the parallel
/// drain is a wall-clock optimization, never a semantic one.
fn bench_pipeline(quick: bool, out_dir: &Path) {
    const WORKERS: usize = 4;
    let runs: usize = if quick { 64 } else { 256 };
    let run_blocks: usize = 4; // 16 KiB per run
    let samples = if quick { 3 } else { 7 };

    // Compressible workload (Linux-source-like text) split into runs.
    // Timestamps 100 ms apart keep calculated IOPS in the strong-codec
    // band, where the compression fan-out matters most.
    let corpus = edc_datagen::corpus::linux_source_like(11, runs, run_blocks * 4096);
    let batch: Vec<BatchWrite<'_>> = corpus
        .blocks
        .iter()
        .enumerate()
        .map(|(i, data)| BatchWrite {
            now_ns: i as u64 * 100_000_000,
            // Stride leaves a gap between runs so none of them merge.
            offset: (i * (run_blocks + 1) * 4096) as u64,
            data,
        })
        .collect();
    let device_bytes = ((runs + 1) * (run_blocks + 1) * 4096) as u64;
    let end_ns = runs as u64 * 100_000_000;
    let make = |workers: usize| {
        EdcPipeline::new(device_bytes, PipelineConfig { workers, ..PipelineConfig::default() })
    };
    let total_bytes = corpus.total_bytes() as u64;

    let mut h = Harness::new("pipeline", samples);
    let serial_ns = h
        .run_prepared("flush_serial_1worker", Some(total_bytes), || make(1), |mut p| {
            for w in &batch {
                p.write(w.now_ns, w.offset, w.data);
            }
            p.flush(end_ns);
            p
        })
        .median_ns;
    let batched_ns = h
        .run_prepared(
            &format!("flush_batched_{WORKERS}workers"),
            Some(total_bytes),
            || make(WORKERS),
            |mut p| {
                p.write_batch(&batch);
                p.flush_all(end_ns);
                p
            },
        )
        .median_ns;

    // Correctness gate: the batched multi-core store must be bit-identical
    // to the serial one.
    let mut serial = make(1);
    for w in &batch {
        serial.write(w.now_ns, w.offset, w.data);
    }
    serial.flush(end_ns);
    let mut batched = make(WORKERS);
    batched.write_batch(&batch);
    batched.flush_all(end_ns);
    assert_eq!(
        serial.device_image(),
        batched.device_image(),
        "batched device image diverged from serial"
    );
    eprintln!("# bit-identical: serial and {WORKERS}-worker device images match");

    // Read path: repeated reads of every run, served from the run cache
    // after the first pass.
    h.run_prepared(
        "read_cached_two_passes",
        Some(2 * total_bytes),
        || {
            let mut p = make(WORKERS);
            p.write_batch(&batch);
            p.flush_all(end_ns);
            p
        },
        |mut p| {
            for pass in 0..2u64 {
                for w in &batch {
                    p.read(end_ns + pass + 1, w.offset, w.data.len() as u64).expect("read");
                }
            }
            p.cache_stats()
        },
    );
    let mut probe = make(WORKERS);
    probe.write_batch(&batch);
    probe.flush_all(end_ns);
    for pass in 0..2u64 {
        for w in &batch {
            probe.read(end_ns + pass + 1, w.offset, w.data.len() as u64).expect("read");
        }
    }
    let cache = probe.cache_stats();

    let speedup = serial_ns as f64 / batched_ns as f64;
    let cpus = std::thread::available_parallelism().map_or(1, |c| c.get());
    h.metric("speedup_batched_vs_serial", speedup);
    h.metric("workers", WORKERS as f64);
    h.metric("available_cpus", cpus as f64);
    h.metric("runs", runs as f64);
    h.metric("bit_identical", 1.0);
    h.metric("read_cache_hit_rate", cache.hit_rate());
    h.metric("read_cache_hits", cache.hits as f64);

    print!("{}", h.render());
    let path = h.write_json(out_dir).expect("writing BENCH_pipeline.json");
    eprintln!("# wrote {}", path.display());
    if cpus < WORKERS {
        eprintln!(
            "# note: only {cpus} CPU(s) available — the {WORKERS}-worker fan-out \
             cannot show its speedup on this machine"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let out_value_idx = args.iter().position(|a| a == "--out").map(|i| i + 1);
    let cmd = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && Some(*i) != out_value_idx)
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| "all".to_string());

    // The pipeline micro-bench needs no trace environment; run it before
    // the (expensive) ExperimentEnv construction.
    if cmd == "bench-pipeline" {
        bench_pipeline(quick, &out_dir);
        return;
    }

    let started = Instant::now();
    eprintln!("# edc-bench: building environment (quick={quick}) ...");
    let env = ExperimentEnv::new(quick);
    eprintln!("# environment ready in {:.1}s", started.elapsed().as_secs_f64());

    let emit = |t: &Table, name: &str| {
        t.write_csv(&out_dir, name).unwrap_or_else(|e| panic!("writing {name}.csv: {e}"));
        println!("{}", t.render());
    };

    let run_fig1 = || emit(&ex::fig1(&env), "fig1");
    let run_fig2 = || emit(&ex::fig2(quick), "fig2");
    let run_fig3 = || {
        let (series, summary) = ex::fig3(&env);
        series.write_csv(&out_dir, "fig3").expect("fig3.csv");
        println!("{}", summary.render());
        println!("(full per-second series written to fig3.csv)\n");
    };
    let run_table1 = || emit(&ex::table1(&env), "table1");
    let run_table2 = || emit(&ex::table2(&env), "table2");
    let run_single = || {
        eprintln!("# replaying scheme x trace matrix on a single SSD ...");
        let t0 = Instant::now();
        let cells = env.run_matrix(Platform::SingleSsd);
        eprintln!("# matrix done in {:.1}s", t0.elapsed().as_secs_f64());
        emit(&ex::fig8(&cells, &env), "fig8");
        emit(&ex::fig9(&cells, &env), "fig9");
        emit(
            &ex::fig_response(&cells, &env, "Fig.10  Avg response time, single SSD (normalized to Native = 1.0)"),
            "fig10",
        );
        emit(&ex::rw_breakdown(&cells, &env), "rw_breakdown");
    };
    let run_fig11 = || {
        eprintln!("# replaying scheme x trace matrix on RAIS5 ...");
        let t0 = Instant::now();
        let cells = env.run_matrix(Platform::Rais5);
        eprintln!("# matrix done in {:.1}s", t0.elapsed().as_secs_f64());
        emit(
            &ex::fig_response(&cells, &env, "Fig.11  Avg response time, RAIS5 (normalized to Native = 1.0)"),
            "fig11",
        );
    };
    let run_fig12 = || emit(&ex::fig12(&env), "fig12");
    let run_ablations = || {
        emit(&ex::ablate_sd(&env), "ablate_sd");
        emit(&ex::ablate_alloc(&env), "ablate_alloc");
        emit(&ex::ablate_threshold(&env), "ablate_threshold");
        emit(&ex::ablate_ladder(&env), "ablate_ladder");
        emit(&ex::ablate_feedback(&env), "ablate_feedback");
        emit(&ex::ablate_cache(&env), "ablate_cache");
        emit(&ex::ablate_nvram(&env), "ablate_nvram");
    };
    let run_future_work = || {
        emit(&ex::endurance(&env), "endurance");
        emit(&ex::energy(&env), "energy");
        emit(&ex::hdd(&env), "hdd");
    };
    let run_mixed = || emit(&ex::mixed(&env), "mixed");
    let run_calibrate = || emit(&ex::calibrate(quick), "calibrate");
    let run_timeline = || {
        let t = ex::timeline(&env);
        t.write_csv(&out_dir, "timeline").expect("timeline.csv");
        println!("== {} == ({} rows written to timeline.csv)\n", t.title, t.len());
    };

    match cmd.as_str() {
        "fig1" => run_fig1(),
        "fig2" => run_fig2(),
        "fig3" => run_fig3(),
        "table1" => run_table1(),
        "table2" => run_table2(),
        "fig8" | "fig9" | "fig10" => run_single(),
        "fig11" => run_fig11(),
        "fig12" => run_fig12(),
        "ablations" => run_ablations(),
        "endurance" | "energy" | "hdd" | "future-work" => run_future_work(),
        "timeline" => run_timeline(),
        "mixed" => run_mixed(),
        "calibrate" => run_calibrate(),
        "all" => {
            run_table1();
            run_table2();
            run_fig1();
            run_fig2();
            run_fig3();
            run_single();
            run_fig11();
            run_fig12();
            run_ablations();
            run_future_work();
            run_timeline();
            run_mixed();
            run_calibrate();
        }
        other => {
            eprintln!("unknown command {other:?}");
            eprintln!("commands: fig1 fig2 fig3 table1 table2 fig8 fig9 fig10 fig11 fig12 ablations future-work timeline mixed calibrate bench-pipeline all");
            std::process::exit(2);
        }
    }
    eprintln!("# total {:.1}s; CSVs in {}", started.elapsed().as_secs_f64(), out_dir.display());
}
