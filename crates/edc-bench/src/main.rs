//! `edc-bench` — regenerate the EDC paper's tables and figures.
//!
//! ```text
//! cargo run -p edc-bench --release -- all
//! cargo run -p edc-bench --release -- fig10 --quick
//! cargo run -p edc-bench --release -- fig12 --out results
//! ```
//!
//! Subcommands: `fig1 fig2 fig3 table1 table2 fig8 fig9 fig10 fig11 fig12
//! ablations all`. `--quick` shrinks trace durations for smoke runs;
//! `--out DIR` sets the CSV directory (default `results/`).

use edc_bench::env::{ExperimentEnv, Platform};
use edc_bench::experiments as ex;
use edc_bench::Table;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let out_value_idx = args.iter().position(|a| a == "--out").map(|i| i + 1);
    let cmd = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && Some(*i) != out_value_idx)
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| "all".to_string());

    let started = Instant::now();
    eprintln!("# edc-bench: building environment (quick={quick}) ...");
    let env = ExperimentEnv::new(quick);
    eprintln!("# environment ready in {:.1}s", started.elapsed().as_secs_f64());

    let emit = |t: &Table, name: &str| {
        t.write_csv(&out_dir, name).unwrap_or_else(|e| panic!("writing {name}.csv: {e}"));
        println!("{}", t.render());
    };

    let run_fig1 = || emit(&ex::fig1(&env), "fig1");
    let run_fig2 = || emit(&ex::fig2(quick), "fig2");
    let run_fig3 = || {
        let (series, summary) = ex::fig3(&env);
        series.write_csv(&out_dir, "fig3").expect("fig3.csv");
        println!("{}", summary.render());
        println!("(full per-second series written to fig3.csv)\n");
    };
    let run_table1 = || emit(&ex::table1(&env), "table1");
    let run_table2 = || emit(&ex::table2(&env), "table2");
    let run_single = || {
        eprintln!("# replaying scheme x trace matrix on a single SSD ...");
        let t0 = Instant::now();
        let cells = env.run_matrix(Platform::SingleSsd);
        eprintln!("# matrix done in {:.1}s", t0.elapsed().as_secs_f64());
        emit(&ex::fig8(&cells, &env), "fig8");
        emit(&ex::fig9(&cells, &env), "fig9");
        emit(
            &ex::fig_response(&cells, &env, "Fig.10  Avg response time, single SSD (normalized to Native = 1.0)"),
            "fig10",
        );
        emit(&ex::rw_breakdown(&cells, &env), "rw_breakdown");
    };
    let run_fig11 = || {
        eprintln!("# replaying scheme x trace matrix on RAIS5 ...");
        let t0 = Instant::now();
        let cells = env.run_matrix(Platform::Rais5);
        eprintln!("# matrix done in {:.1}s", t0.elapsed().as_secs_f64());
        emit(
            &ex::fig_response(&cells, &env, "Fig.11  Avg response time, RAIS5 (normalized to Native = 1.0)"),
            "fig11",
        );
    };
    let run_fig12 = || emit(&ex::fig12(&env), "fig12");
    let run_ablations = || {
        emit(&ex::ablate_sd(&env), "ablate_sd");
        emit(&ex::ablate_alloc(&env), "ablate_alloc");
        emit(&ex::ablate_threshold(&env), "ablate_threshold");
        emit(&ex::ablate_ladder(&env), "ablate_ladder");
        emit(&ex::ablate_feedback(&env), "ablate_feedback");
        emit(&ex::ablate_cache(&env), "ablate_cache");
        emit(&ex::ablate_nvram(&env), "ablate_nvram");
    };
    let run_future_work = || {
        emit(&ex::endurance(&env), "endurance");
        emit(&ex::energy(&env), "energy");
        emit(&ex::hdd(&env), "hdd");
    };
    let run_mixed = || emit(&ex::mixed(&env), "mixed");
    let run_calibrate = || emit(&ex::calibrate(quick), "calibrate");
    let run_timeline = || {
        let t = ex::timeline(&env);
        t.write_csv(&out_dir, "timeline").expect("timeline.csv");
        println!("== {} == ({} rows written to timeline.csv)\n", t.title, t.len());
    };

    match cmd.as_str() {
        "fig1" => run_fig1(),
        "fig2" => run_fig2(),
        "fig3" => run_fig3(),
        "table1" => run_table1(),
        "table2" => run_table2(),
        "fig8" | "fig9" | "fig10" => run_single(),
        "fig11" => run_fig11(),
        "fig12" => run_fig12(),
        "ablations" => run_ablations(),
        "endurance" | "energy" | "hdd" | "future-work" => run_future_work(),
        "timeline" => run_timeline(),
        "mixed" => run_mixed(),
        "calibrate" => run_calibrate(),
        "all" => {
            run_table1();
            run_table2();
            run_fig1();
            run_fig2();
            run_fig3();
            run_single();
            run_fig11();
            run_fig12();
            run_ablations();
            run_future_work();
            run_timeline();
            run_mixed();
            run_calibrate();
        }
        other => {
            eprintln!("unknown command {other:?}");
            eprintln!("commands: fig1 fig2 fig3 table1 table2 fig8 fig9 fig10 fig11 fig12 ablations future-work timeline mixed calibrate all");
            std::process::exit(2);
        }
    }
    eprintln!("# total {:.1}s; CSVs in {}", started.elapsed().as_secs_f64(), out_dir.display());
}
