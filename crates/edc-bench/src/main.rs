//! `edc-bench` — regenerate the EDC paper's tables and figures.
//!
//! ```text
//! cargo run -p edc-bench --release -- all
//! cargo run -p edc-bench --release -- fig10 --quick
//! cargo run -p edc-bench --release -- fig12 --out results
//! ```
//!
//! Subcommands: `fig1 fig2 fig3 table1 table2 fig8 fig9 fig10 fig11 fig12
//! ablations bench-pipeline bench-concurrency bench-codecs bench-heat
//! bench-dedup check-bench fault-campaign fuzz scrub-campaign
//! rais-campaign replay record-golden all`. `--quick` shrinks trace
//! durations (and bench workloads) for smoke runs; `--smoke` does the
//! same for `bench-concurrency`, `bench-codecs`, `bench-heat`,
//! `bench-dedup`, `fault-campaign`, `fuzz`, `scrub-campaign` and
//! `rais-campaign`; `--out DIR` sets the output directory (default
//! `results/`); `check-bench --baseline DIR --fresh DIR` compares
//! committed `BENCH_*.json` baselines against a fresh run and fails on
//! any >10% throughput regression (and on any `gate0_*` metric that is
//! nonzero in the fresh run); `replay <log.edcrr>...` re-executes
//! recorded op logs and exits non-zero on any divergence;
//! `record-golden <path>` regenerates the committed golden fixture.

use edc_bench::env::{ExperimentEnv, Platform};
use edc_bench::experiments as ex;
use edc_bench::{Harness, Table};
use edc_core::error::EdcError;
use edc_core::pipeline::{BatchWrite, EdcPipeline, PipelineConfig, PipelineStats};
use edc_core::{
    ManualClock, Op, OpOutput, Recorder, Replayer, Ring, RingConfig, RingStats, SelectorConfig,
    ShardConfig, ShardedPipeline, StoreSpec, Ticket, TieredSeries,
};
use edc_flash::{
    FaultError, FaultPlan, IoKind, LossReason, RaisArray, RaisLevel, SsdConfig, SsdDevice,
};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Micro-benchmark of the batched multi-core write path against the
/// serial one, plus the decompressed-run read cache. Writes
/// `BENCH_pipeline.json` into the output directory.
///
/// The serial and batched pipelines receive the identical write sequence
/// and their device images are asserted bit-identical — the parallel
/// drain is a wall-clock optimization, never a semantic one.
fn bench_pipeline(quick: bool, out_dir: &Path) {
    const WORKERS: usize = 4;
    let runs: usize = if quick { 64 } else { 256 };
    let run_blocks: usize = 4; // 16 KiB per run
    let samples = if quick { 3 } else { 7 };

    // Compressible workload (Linux-source-like text) split into runs.
    // Timestamps 100 ms apart keep calculated IOPS in the strong-codec
    // band, where the compression fan-out matters most.
    let corpus = edc_datagen::corpus::linux_source_like(11, runs, run_blocks * 4096);
    let batch: Vec<BatchWrite<'_>> = corpus
        .blocks
        .iter()
        .enumerate()
        .map(|(i, data)| BatchWrite {
            now_ns: i as u64 * 100_000_000,
            // Stride leaves a gap between runs so none of them merge.
            offset: (i * (run_blocks + 1) * 4096) as u64,
            data,
        })
        .collect();
    let device_bytes = ((runs + 1) * (run_blocks + 1) * 4096) as u64;
    let end_ns = runs as u64 * 100_000_000;
    let make = |workers: usize| {
        EdcPipeline::new(device_bytes, PipelineConfig { workers, ..PipelineConfig::default() })
    };
    let total_bytes = corpus.total_bytes() as u64;

    let mut h = Harness::new("pipeline", samples);
    let serial_ns = h
        .run_prepared("flush_serial_1worker", Some(total_bytes), || make(1), |mut p| {
            for w in &batch {
                p.write(w.now_ns, w.offset, w.data).expect("write");
            }
            p.flush(end_ns).expect("flush");
            p
        })
        .median_ns;
    let batched_ns = h
        .run_prepared(
            &format!("flush_batched_{WORKERS}workers"),
            Some(total_bytes),
            || make(WORKERS),
            |mut p| {
                p.write_batch(&batch).expect("write_batch");
                p.flush_all(end_ns).expect("flush_all");
                p
            },
        )
        .median_ns;

    // Correctness gate: the batched multi-core store must be bit-identical
    // to the serial one.
    let mut serial = make(1);
    for w in &batch {
        serial.write(w.now_ns, w.offset, w.data).expect("write");
    }
    serial.flush(end_ns).expect("flush");
    let mut batched = make(WORKERS);
    batched.write_batch(&batch).expect("write_batch");
    batched.flush_all(end_ns).expect("flush_all");
    assert_eq!(
        serial.device_image(),
        batched.device_image(),
        "batched device image diverged from serial"
    );
    eprintln!("# bit-identical: serial and {WORKERS}-worker device images match");

    // Read path: repeated reads of every run, served from the run cache
    // after the first pass.
    h.run_prepared(
        "read_cached_two_passes",
        Some(2 * total_bytes),
        || {
            let mut p = make(WORKERS);
            p.write_batch(&batch).expect("write_batch");
            p.flush_all(end_ns).expect("flush_all");
            p
        },
        |mut p| {
            for pass in 0..2u64 {
                for w in &batch {
                    p.read(end_ns + pass + 1, w.offset, w.data.len() as u64).expect("read");
                }
            }
            p.stats().cache
        },
    );
    let mut probe = make(WORKERS);
    probe.write_batch(&batch).expect("write_batch");
    probe.flush_all(end_ns).expect("flush_all");
    for pass in 0..2u64 {
        for w in &batch {
            probe.read(end_ns + pass + 1, w.offset, w.data.len() as u64).expect("read");
        }
    }
    let cache = probe.stats().cache;

    let speedup = serial_ns as f64 / batched_ns as f64;
    let cpus = std::thread::available_parallelism().map_or(1, |c| c.get());
    h.metric("speedup_batched_vs_serial", speedup);
    h.metric("workers", WORKERS as f64);
    h.metric("available_cpus", cpus as f64);
    h.metric("oversubscribed", f64::from(cpus < WORKERS));
    h.metric("runs", runs as f64);
    h.metric("bit_identical", 1.0);
    h.metric("read_cache_hit_rate", cache.hit_rate());
    h.metric("read_cache_hits", cache.hits as f64);
    // Annotate rather than silently report a sub-1 speedup: on a machine
    // with fewer CPUs than workers the fan-out *cannot* win, and the
    // number would otherwise read as a parallelism regression.
    if cpus < WORKERS {
        h.note(&format!(
            "only {cpus} CPU(s) available for {WORKERS} workers — \
             speedup_batched_vs_serial reflects oversubscription overhead, \
             not a parallel-drain regression"
        ));
    }

    print!("{}", h.render());
    let path = h.write_json(out_dir).expect("writing BENCH_pipeline.json");
    eprintln!("# wrote {}", path.display());
}

/// Simulated per-device-access service time for the concurrency bench:
/// 100 µs, the order of a NAND page program/read. Sleeps on different
/// shards overlap, which is exactly the effect the sharded front-end
/// exists to exploit — and it makes the bench meaningful even on a
/// single-CPU host, where pure-CPU overlap is impossible.
const CONC_DWELL_NS: u64 = 100_000;
/// Simulated-clock advance per operation: 500 µs/op ≈ 2000 calculated
/// IOPS, squarely in the selector's middle (Lzf) band regardless of the
/// client thread count, so every sweep point compresses the same way.
const CONC_CLOCK_STEP_NS: u64 = 500_000;
/// Extent size (blocks) used by the concurrency bench: small extents
/// stripe a thread's pool across every shard.
const CONC_EXTENT_BLOCKS: u64 = 4;
/// Extents per client thread; with stride-7 block selection each thread
/// touches all shard residues.
const CONC_EXTENTS_PER_THREAD: u64 = 8;

/// A compressible 4 KiB block unique to `(thread, block, version)`, so
/// every read in the mixed workload can assert the exact expected bytes.
fn conc_block(thread: usize, block: u64, version: u32) -> Vec<u8> {
    format!("edc concurrency bench t{thread} b{block} v{version} elastic compression payload ")
        .into_bytes()
        .into_iter()
        .cycle()
        .take(4096)
        .collect()
}

/// Outcome of one closed-loop mixed read/write run.
struct MixedRun {
    wall_ns: u64,
    ops: u64,
    p50_ns: u64,
    p99_ns: u64,
    hit_rate: f64,
    errors: u64,
}

impl MixedRun {
    fn ops_per_s(&self) -> f64 {
        self.ops as f64 / (self.wall_ns.max(1) as f64 * 1e-9)
    }
}

/// Drive `threads` closed-loop clients against a `shards`-way
/// [`ShardedPipeline`]: each thread owns a disjoint pool of
/// [`CONC_EXTENTS_PER_THREAD`] extents, pre-filled before timing, and
/// issues a 2:1 write/read mix with stride-7 block selection (no
/// sequential merging, so every write pays its device dwell inside the
/// loop). Every read is verified against the exact expected content, the
/// whole pool is re-verified after a final flush, and the aggregated
/// stats are cross-checked against the client-side byte counts.
fn conc_mixed_run(shards: usize, threads: usize, ops_per_thread: usize) -> MixedRun {
    let pool_blocks = CONC_EXTENTS_PER_THREAD * CONC_EXTENT_BLOCKS;
    let s = ShardedPipeline::new(
        64 << 20,
        ShardConfig {
            shards,
            extent_blocks: CONC_EXTENT_BLOCKS,
            pipeline: PipelineConfig {
                device_dwell_ns: CONC_DWELL_NS,
                ..PipelineConfig::default()
            },
        },
    );
    let clock = AtomicU64::new(0);
    let tick = |clock: &AtomicU64| clock.fetch_add(1, Ordering::Relaxed) * CONC_CLOCK_STEP_NS;

    // Fill every pool (untimed) so timed reads always have real data.
    for t in 0..threads {
        for local in 0..pool_blocks {
            let gb = t as u64 * pool_blocks + local;
            s.write(tick(&clock), gb * 4096, &conc_block(t, gb, 0)).expect("fill write");
        }
    }
    s.flush_all(tick(&clock)).expect("fill flush");
    let fill_bytes = threads as u64 * pool_blocks * 4096;

    let errors = AtomicU64::new(0);
    let written = AtomicU64::new(0);
    let t0 = Instant::now();
    let per_thread: Vec<(Vec<u64>, Vec<u32>)> = std::thread::scope(|sc| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (s, clock, errors, written) = (&s, &clock, &errors, &written);
                sc.spawn(move || {
                    let mut versions = vec![0u32; pool_blocks as usize];
                    let mut lat = Vec::with_capacity(ops_per_thread);
                    for i in 0..ops_per_thread {
                        // Stride 7 (coprime to the pool) scatters
                        // consecutive ops so writes never merge into the
                        // previous run; the per-thread phase offset
                        // decorrelates which shard each client hits at a
                        // given instant (every pool spans the same eight
                        // extent residues, so unphased clients would
                        // convoy on one shard at a time).
                        let local = (i as u64 * 7 + t as u64 * 13) % pool_blocks;
                        let gb = t as u64 * pool_blocks + local;
                        let now_ns = tick(clock);
                        let op_t0 = Instant::now();
                        if i % 3 == 2 {
                            let got = s.read(now_ns, gb * 4096, 4096).expect("mixed read");
                            if got != conc_block(t, gb, versions[local as usize]) {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        } else {
                            let v = versions[local as usize] + 1;
                            s.write(now_ns, gb * 4096, &conc_block(t, gb, v))
                                .expect("mixed write");
                            versions[local as usize] = v;
                            written.fetch_add(4096, Ordering::Relaxed);
                        }
                        lat.push(op_t0.elapsed().as_nanos() as u64);
                    }
                    (lat, versions)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;

    // Post-run: flush, verify every block against its final version, and
    // check the aggregated stats add up to the client-side ledger.
    s.flush_all(tick(&clock)).expect("final flush");
    let mut errors = errors.load(Ordering::Relaxed);
    for (t, (_, versions)) in per_thread.iter().enumerate() {
        for (local, &v) in versions.iter().enumerate() {
            let gb = t as u64 * pool_blocks + local as u64;
            let got = s.read(tick(&clock), gb * 4096, 4096).expect("verify read");
            if got != conc_block(t, gb, v) {
                errors += 1;
            }
        }
    }
    let stats = s.stats();
    if stats.logical_written != fill_bytes + written.load(Ordering::Relaxed) {
        eprintln!(
            "# FAIL: aggregated logical_written {} != client ledger {}",
            stats.logical_written,
            fill_bytes + written.load(Ordering::Relaxed)
        );
        errors += 1;
    }

    let mut lat: Vec<u64> = per_thread.iter().flat_map(|(l, _)| l.iter().copied()).collect();
    lat.sort_unstable();
    MixedRun {
        wall_ns,
        ops: lat.len() as u64,
        p50_ns: lat[lat.len() / 2],
        p99_ns: lat[lat.len() * 99 / 100],
        hit_rate: stats.cache.hit_rate(),
        errors,
    }
}

/// The identical single-client workload driven through a bare
/// [`EdcPipeline`] — the serial baseline the 1-thread sharded figure is
/// gated against (within 10%).
fn conc_serial_run(ops: usize) -> MixedRun {
    let pool_blocks = CONC_EXTENTS_PER_THREAD * CONC_EXTENT_BLOCKS;
    let mut p = EdcPipeline::new(
        64 << 20,
        PipelineConfig { device_dwell_ns: CONC_DWELL_NS, ..PipelineConfig::default() },
    );
    let mut clock = 0u64;
    let mut tick = || {
        clock += 1;
        (clock - 1) * CONC_CLOCK_STEP_NS
    };
    for local in 0..pool_blocks {
        p.write(tick(), local * 4096, &conc_block(0, local, 0)).expect("fill write");
    }
    p.flush_all(tick()).expect("fill flush");
    let mut versions = vec![0u32; pool_blocks as usize];
    let mut errors = 0u64;
    let mut lat = Vec::with_capacity(ops);
    let t0 = Instant::now();
    for i in 0..ops {
        let local = (i as u64 * 7) % pool_blocks;
        let now_ns = tick();
        let op_t0 = Instant::now();
        if i % 3 == 2 {
            let got = p.read(now_ns, local * 4096, 4096).expect("serial read");
            if got != conc_block(0, local, versions[local as usize]) {
                errors += 1;
            }
        } else {
            let v = versions[local as usize] + 1;
            p.write(now_ns, local * 4096, &conc_block(0, local, v)).expect("serial write");
            versions[local as usize] = v;
        }
        lat.push(op_t0.elapsed().as_nanos() as u64);
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    lat.sort_unstable();
    MixedRun {
        wall_ns,
        ops: lat.len() as u64,
        p50_ns: lat[lat.len() / 2],
        p99_ns: lat[lat.len() * 99 / 100],
        hit_rate: p.stats().cache.hit_rate(),
        errors,
    }
}

/// Outcome of one ring QD run: the closed-loop results plus the ring's
/// own telemetry, harvested before the drainers shut down.
struct RingRun {
    run: MixedRun,
    occupancy: Vec<(u64, f64)>,
    latency_us: Vec<(u64, f64)>,
    stats: RingStats,
}

/// Drive `qd` closed-loop *slots* from `threads` submitter threads
/// through a [`Ring`] over an 8-shard store — the async analogue of
/// [`conc_mixed_run`], where queue depth rather than submitter count
/// sets the in-flight op count. Each slot owns a disjoint
/// 32-block pool and runs the same stride-7 2:1 write/read mix; every
/// read completion's checksum is verified against the exact expected
/// block, the pool is re-verified after shutdown, and the store's
/// aggregated stats are cross-checked against the client byte ledger.
fn conc_ring_run(qd: usize, threads: usize, ops_per_slot: usize) -> RingRun {
    const RING_SHARDS: usize = 8;
    type Inflight = VecDeque<(usize, Ticket, Option<u64>, Instant)>;
    let pool_blocks = CONC_EXTENTS_PER_THREAD * CONC_EXTENT_BLOCKS;
    assert_eq!(qd % threads, 0, "slots divide evenly across submitters");
    let slots_per_thread = qd / threads;
    let s = ShardedPipeline::new(
        256 << 20,
        ShardConfig {
            shards: RING_SHARDS,
            extent_blocks: CONC_EXTENT_BLOCKS,
            pipeline: PipelineConfig {
                device_dwell_ns: CONC_DWELL_NS,
                ..PipelineConfig::default()
            },
        },
    );
    let clock = AtomicU64::new(0);
    let tick = |clock: &AtomicU64| clock.fetch_add(1, Ordering::Relaxed) * CONC_CLOCK_STEP_NS;

    // Fill every slot's pool (untimed) so timed reads always verify.
    for slot in 0..qd {
        for local in 0..pool_blocks {
            let gb = slot as u64 * pool_blocks + local;
            s.write(tick(&clock), gb * 4096, &conc_block(slot, gb, 0)).expect("fill write");
        }
    }
    s.flush_all(tick(&clock)).expect("fill flush");
    let fill_bytes = qd as u64 * pool_blocks * 4096;

    let errors = AtomicU64::new(0);
    let written = AtomicU64::new(0);
    // Per-shard depth = qd: the closed loop caps total in-flight at qd,
    // so the ring never rejects even if every slot lands on one shard —
    // backpressure is exercised by the smoke/property tests, not here.
    let (wall_ns, per_thread, occupancy, latency_us, stats) =
        Ring::serve(&s, RingConfig { depth: qd, shards: RING_SHARDS }, |ring| {
            let t0 = Instant::now();
            let per_thread: Vec<(Vec<u64>, Vec<Vec<u32>>)> = std::thread::scope(|sc| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let (clock, errors, written) = (&clock, &errors, &written);
                        sc.spawn(move || {
                            let base_slot = t * slots_per_thread;
                            let mut versions =
                                vec![vec![0u32; pool_blocks as usize]; slots_per_thread];
                            let mut next_op = vec![0usize; slots_per_thread];
                            let mut inflight: Inflight = VecDeque::new();
                            let mut lat = Vec::with_capacity(slots_per_thread * ops_per_slot);
                            let submit = |sl: usize,
                                          next_op: &mut [usize],
                                          versions: &mut [Vec<u32>],
                                          inflight: &mut Inflight| {
                                let i = next_op[sl];
                                next_op[sl] = i + 1;
                                // Same stride-7 walk as the blocking
                                // clients, with the same per-actor phase
                                // offset (here per slot) so concurrent
                                // slots spread across shards instead of
                                // marching on one in lockstep.
                                let slot = base_slot + sl;
                                let local =
                                    ((i as u64 * 7 + slot as u64 * 13) % pool_blocks) as usize;
                                let gb = slot as u64 * pool_blocks + local as u64;
                                let now_ns = tick(clock);
                                let (ticket, expect) = if i % 3 == 2 {
                                    let want = edc_compress::checksum64(
                                        &conc_block(slot, gb, versions[sl][local]),
                                        4096,
                                    );
                                    let op = Op::Read { offset: gb * 4096, len: 4096 };
                                    (ring.submit(now_ns, op).expect("ring read"), Some(want))
                                } else {
                                    let v = versions[sl][local] + 1;
                                    versions[sl][local] = v;
                                    written.fetch_add(4096, Ordering::Relaxed);
                                    let op = Op::Write {
                                        offset: gb * 4096,
                                        data: conc_block(slot, gb, v),
                                    };
                                    (ring.submit(now_ns, op).expect("ring write"), None)
                                };
                                inflight.push_back((sl, ticket, expect, Instant::now()));
                            };
                            let check = |expect: Option<u64>, out: OpOutput| match (expect, out)
                            {
                                (Some(want), OpOutput::Read { len, checksum }) => {
                                    if len != 4096 || checksum != want {
                                        errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                (None, OpOutput::Writes(_)) => {}
                                (_, other) => {
                                    eprintln!("# ring op failed: {}", other.kind());
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            };
                            // Prime one op per slot, then keep every slot
                            // closed-loop: poll the whole window and
                            // resubmit whatever landed, in *completion*
                            // order; block on the oldest ticket only when
                            // a full sweep reaps nothing. Strict FIFO
                            // reaping would park every slot behind the
                            // busiest shard's oldest op and let the other
                            // shards run dry.
                            for sl in 0..slots_per_thread {
                                submit(sl, &mut next_op, &mut versions, &mut inflight);
                            }
                            while !inflight.is_empty() {
                                let mut reaped = 0usize;
                                let mut i = 0;
                                while i < inflight.len() {
                                    let ticket = inflight[i].1;
                                    match ring.poll(ticket).expect("in-flight ticket known") {
                                        Some(out) => {
                                            let (sl, _, expect, t_submit) =
                                                inflight.remove(i).expect("index in bounds");
                                            lat.push(t_submit.elapsed().as_nanos() as u64);
                                            check(expect, out);
                                            if next_op[sl] < ops_per_slot {
                                                submit(
                                                    sl,
                                                    &mut next_op,
                                                    &mut versions,
                                                    &mut inflight,
                                                );
                                            }
                                            reaped += 1;
                                        }
                                        None => i += 1,
                                    }
                                }
                                if reaped > 0 {
                                    continue;
                                }
                                let (sl, ticket, expect, t_submit) =
                                    inflight.pop_front().expect("loop guard");
                                let out = ring.wait(ticket).expect("ring completion");
                                lat.push(t_submit.elapsed().as_nanos() as u64);
                                check(expect, out);
                                if next_op[sl] < ops_per_slot {
                                    submit(sl, &mut next_op, &mut versions, &mut inflight);
                                }
                            }
                            (lat, versions)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("submitter thread")).collect()
            });
            let wall_ns = t0.elapsed().as_nanos() as u64;
            let occ: Vec<(u64, f64)> =
                ring.occupancy_series().into_iter().map(|p| (p.t_ns, p.value)).collect();
            let lat_s: Vec<(u64, f64)> =
                ring.latency_series().into_iter().map(|p| (p.t_ns, p.value)).collect();
            (wall_ns, per_thread, occ, lat_s, ring.stats())
        });

    // Post-run: flush, verify every block against its final version, and
    // check the aggregated stats add up to the client-side ledger.
    s.flush_all(tick(&clock)).expect("final flush");
    let mut err_count = errors.load(Ordering::Relaxed);
    for (t, (_, vers)) in per_thread.iter().enumerate() {
        for (sl, slot_versions) in vers.iter().enumerate() {
            let slot = t * slots_per_thread + sl;
            for (local, &v) in slot_versions.iter().enumerate() {
                let gb = slot as u64 * pool_blocks + local as u64;
                let got = s.read(tick(&clock), gb * 4096, 4096).expect("verify read");
                if got != conc_block(slot, gb, v) {
                    err_count += 1;
                }
            }
        }
    }
    let pstats = s.stats();
    if pstats.logical_written != fill_bytes + written.load(Ordering::Relaxed) {
        eprintln!(
            "# FAIL: aggregated logical_written {} != client ledger {}",
            pstats.logical_written,
            fill_bytes + written.load(Ordering::Relaxed)
        );
        err_count += 1;
    }
    if stats.submitted != stats.completed {
        eprintln!(
            "# FAIL: ring submitted {} != completed {}",
            stats.submitted, stats.completed
        );
        err_count += 1;
    }

    let mut lat: Vec<u64> = per_thread.iter().flat_map(|(l, _)| l.iter().copied()).collect();
    lat.sort_unstable();
    RingRun {
        run: MixedRun {
            wall_ns,
            ops: lat.len() as u64,
            p50_ns: lat[lat.len() / 2],
            p99_ns: lat[lat.len() * 99 / 100],
            hit_rate: pstats.cache.hit_rate(),
            errors: err_count,
        },
        occupancy,
        latency_us,
        stats,
    }
}

/// Pull the recorded `flush_serial_1worker` throughput out of
/// `BENCH_pipeline.json` (hand-parsed; the harness writes one case per
/// line).
fn recorded_serial_flush_mib_s(path: &Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let line = text.lines().find(|l| l.contains("\"flush_serial_1worker\""))?;
    let key = "\"throughput_mib_s\": ";
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Closed-loop multi-threaded mixed read/write benchmark of the
/// [`ShardedPipeline`] front-end: a client-thread sweep (1/2/4/8 threads
/// against 8 shards), a shard-count sweep (1/2/4/8 shards under 8
/// threads), a [`Ring`] queue-depth sweep (QD 1/4/16/64/256 from at most
/// 4 submitter threads, with the ring's occupancy and completion-latency
/// series attached), per-op p50/p99 latency, cache hit ratio, and an
/// in-process serial [`EdcPipeline`] baseline. Writes
/// `BENCH_concurrency.json`; exits non-zero on any correctness
/// violation, on 1-thread throughput regressing the serial baseline by
/// more than 10%, on a sub-linear 8-thread speedup, on the ring at
/// QD >= 64 falling short of the 8-thread blocking figure (or QD=1
/// falling more than 10% behind 1-thread blocking), or on the 1-shard
/// front-end flush regressing the serial figure recorded in
/// `BENCH_pipeline.json`.
fn bench_concurrency(smoke: bool, out_dir: &Path) {
    let ops_per_thread: usize = if smoke { 252 } else { 2001 };
    let mut h = Harness::new("concurrency", 1);
    let mut failures = 0u64;
    let cpus = std::thread::available_parallelism().map_or(1, |c| c.get());
    h.metric("available_cpus", cpus as f64);
    h.metric("ops_per_thread", ops_per_thread as f64);
    h.metric("device_dwell_us", CONC_DWELL_NS as f64 / 1e3);
    h.metric("clock_step_us", CONC_CLOCK_STEP_NS as f64 / 1e3);
    h.note(
        "device_dwell_ns models per-access media service time as a sleep, so shard \
         parallelism overlaps device time even on a single-CPU host; latencies and \
         throughput are dwell-dominated by design",
    );
    if smoke {
        h.note("smoke run: reduced op count; absolute numbers are not comparable to full runs");
    }

    // Serial baseline: the same single-client workload on a bare pipeline.
    let serial = conc_serial_run(ops_per_thread);
    failures += serial.errors;
    h.metric("serial_ops_per_s", serial.ops_per_s());
    h.metric("serial_p50_us", serial.p50_ns as f64 / 1e3);
    h.metric("serial_p99_us", serial.p99_ns as f64 / 1e3);
    eprintln!(
        "# serial EdcPipeline baseline: {:.0} ops/s (p50 {:.0} µs, p99 {:.0} µs)",
        serial.ops_per_s(),
        serial.p50_ns as f64 / 1e3,
        serial.p99_ns as f64 / 1e3
    );

    // Client-thread sweep at 8 shards.
    let mut t1_ops_s = 0.0;
    let mut t8_ops_s = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let r = conc_mixed_run(8, threads, ops_per_thread);
        failures += r.errors;
        let ops_s = r.ops_per_s();
        if threads == 1 {
            t1_ops_s = ops_s;
        }
        if threads == 8 {
            t8_ops_s = ops_s;
        }
        h.metric(&format!("ops_per_s_t{threads}"), ops_s);
        h.metric(&format!("mib_s_t{threads}"), ops_s * 4096.0 / (1 << 20) as f64);
        h.metric(&format!("p50_us_t{threads}"), r.p50_ns as f64 / 1e3);
        h.metric(&format!("p99_us_t{threads}"), r.p99_ns as f64 / 1e3);
        h.metric(&format!("cache_hit_rate_t{threads}"), r.hit_rate);
        eprintln!(
            "# {threads} thread(s) x 8 shards: {ops_s:.0} ops/s (p50 {:.0} µs, p99 {:.0} µs, \
             cache hit {:.2}), {} verify error(s)",
            r.p50_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3,
            r.hit_rate,
            r.errors
        );
    }
    let speedup = t8_ops_s / t1_ops_s.max(1e-9);
    h.metric("speedup_t8_vs_t1", speedup);
    let vs_serial = t1_ops_s / serial.ops_per_s().max(1e-9);
    h.metric("sharded_t1_vs_serial", vs_serial);
    if vs_serial < 0.9 {
        eprintln!(
            "# FAIL: 1-thread sharded throughput is {vs_serial:.2}x the serial \
             EdcPipeline baseline (must stay within 10%)"
        );
        failures += 1;
    }
    // Dwell overlap makes the scaling CPU-independent; smoke runs get a
    // softer bar only because their op counts are small enough for warmup
    // noise to matter.
    let floor = if smoke { 1.5 } else { 2.0 };
    if speedup < floor {
        eprintln!("# FAIL: 8-thread speedup {speedup:.2}x below the {floor:.1}x floor");
        failures += 1;
    }

    // Shard-count sweep under a fixed 8-thread load: how much of the
    // scaling the partitioning itself buys.
    for shards in [1usize, 2, 4, 8] {
        let r = conc_mixed_run(shards, 8, ops_per_thread);
        failures += r.errors;
        h.metric(&format!("ops_per_s_shards{shards}_t8"), r.ops_per_s());
        eprintln!(
            "# 8 threads x {shards} shard(s): {:.0} ops/s, {} verify error(s)",
            r.ops_per_s(),
            r.errors
        );
    }

    // Ring QD sweep: at most 4 submitter threads drive 1/4/16/64/256
    // closed-loop slots through the async ring over the same 8-shard
    // store shape as the thread sweep. The point being demonstrated:
    // queue depth, not submitter thread count, saturates the device —
    // 4 threads at QD >= 64 must meet or beat the 8-thread blocking
    // figure, while QD=1 stays within 10% of 1-thread blocking (the
    // ring hand-off is noise next to the device dwell).
    let ring_total_target = 4 * ops_per_thread;
    let mut ring_qd1_ops_s = 0.0;
    let mut ring_sat_ops_s = 0.0f64;
    for qd in [1usize, 4, 16, 64, 256] {
        let threads = qd.min(4);
        let ops_per_slot = (ring_total_target / qd).max(16);
        let rr = conc_ring_run(qd, threads, ops_per_slot);
        failures += rr.run.errors;
        let ops_s = rr.run.ops_per_s();
        if qd == 1 {
            ring_qd1_ops_s = ops_s;
        }
        if qd >= 64 {
            ring_sat_ops_s = ring_sat_ops_s.max(ops_s);
        }
        h.record_case(
            &format!("ring_qd{qd}_t{threads}"),
            vec![rr.run.wall_ns.max(1)],
            Some(rr.run.ops * 4096),
        );
        h.metric(&format!("ring_ops_per_s_qd{qd}"), ops_s);
        h.metric(&format!("ring_p50_us_qd{qd}"), rr.run.p50_ns as f64 / 1e3);
        h.metric(&format!("ring_p99_us_qd{qd}"), rr.run.p99_ns as f64 / 1e3);
        eprintln!(
            "# ring qd {qd} x {threads} submitter(s): {ops_s:.0} ops/s (p50 {:.0} µs, p99 \
             {:.0} µs), {} batches (max {}), {} writes coalesced into {} groups, {} verify \
             error(s)",
            rr.run.p50_ns as f64 / 1e3,
            rr.run.p99_ns as f64 / 1e3,
            rr.stats.drained_batches,
            rr.stats.max_batch,
            rr.stats.coalesced_writes,
            rr.stats.coalesced_groups,
            rr.run.errors
        );
        if qd == 64 {
            // Queue-depth telemetry from the deep run: per-drain shard
            // occupancy and mean submit->completion latency, straight
            // from the ring's own tiered series.
            h.series("ring_occupancy", rr.occupancy);
            h.series("ring_completion_latency_us", rr.latency_us);
            h.metric("ring_qd64_drained_batches", rr.stats.drained_batches as f64);
            h.metric("ring_qd64_max_batch", rr.stats.max_batch as f64);
            h.metric("ring_qd64_coalesced_groups", rr.stats.coalesced_groups as f64);
            h.metric("ring_qd64_coalesced_writes", rr.stats.coalesced_writes as f64);
        }
    }
    let ring_saturation = ring_sat_ops_s / t8_ops_s.max(1e-9);
    h.metric("ring_saturation_vs_t8", ring_saturation);
    // Smoke runs get a softer bar: op counts are small enough that ring
    // spin-up and warmup noise are a visible fraction of the run.
    let sat_floor = if smoke { 0.8 } else { 1.0 };
    if ring_saturation < sat_floor {
        eprintln!(
            "# FAIL: ring at QD>=64 reaches {ring_saturation:.2}x of the 8-thread blocking \
             path (floor {sat_floor:.1}x) — 4 async submitters must saturate like 8 blocked \
             threads"
        );
        failures += 1;
    }
    let ring_qd1_vs_t1 = ring_qd1_ops_s / t1_ops_s.max(1e-9);
    h.metric("ring_qd1_vs_blocking_t1", ring_qd1_vs_t1);
    let qd1_floor = if smoke { 0.7 } else { 0.9 };
    if ring_qd1_vs_t1 < qd1_floor {
        eprintln!(
            "# FAIL: ring QD=1 throughput is {ring_qd1_vs_t1:.2}x the 1-thread blocking \
             path (floor {qd1_floor:.1}x) — the submit/complete hand-off must stay noise"
        );
        failures += 1;
    }

    // Front-end overhead tripwire: the bench-pipeline serial flush
    // workload pushed through a 1-shard sharded front-end must not
    // regress the figure recorded in BENCH_pipeline.json (the routing +
    // lock wrapper is supposed to be noise).
    let runs: usize = 64;
    let run_blocks: usize = 4;
    let corpus = edc_datagen::corpus::linux_source_like(11, runs, run_blocks * 4096);
    let batch: Vec<BatchWrite<'_>> = corpus
        .blocks
        .iter()
        .enumerate()
        .map(|(i, data)| BatchWrite {
            now_ns: i as u64 * 100_000_000,
            offset: (i * (run_blocks + 1) * 4096) as u64,
            data,
        })
        .collect();
    let device_bytes = ((runs + 1) * (run_blocks + 1) * 4096) as u64;
    let end_ns = runs as u64 * 100_000_000;
    let total_bytes = corpus.total_bytes() as u64;
    let mut fh = Harness::new("frontend", 3);
    let front = fh
        .run_prepared(
            "frontend_flush_1shard",
            Some(total_bytes),
            || {
                ShardedPipeline::new(
                    device_bytes,
                    ShardConfig {
                        shards: 1,
                        pipeline: PipelineConfig { workers: 1, ..PipelineConfig::default() },
                        ..ShardConfig::default()
                    },
                )
            },
            |s| {
                s.write_batch(&batch).expect("write_batch");
                s.flush_all(end_ns).expect("flush_all");
                s
            },
        )
        .throughput_mib_s()
        .unwrap_or(0.0);
    h.metric("frontend_flush_1shard_mib_s", front);
    match recorded_serial_flush_mib_s(&out_dir.join("BENCH_pipeline.json")) {
        Some(reference) => {
            let ratio = front / reference.max(1e-9);
            h.metric("recorded_serial_flush_mib_s", reference);
            h.metric("frontend_vs_recorded_serial", ratio);
            eprintln!(
                "# 1-shard front-end flush: {front:.1} MiB/s vs recorded serial \
                 {reference:.1} MiB/s ({ratio:.2}x)"
            );
            // 0.7 rather than 0.9: the recorded figure may come from a
            // different-sized run on a drifting shared machine; the gate
            // exists to catch the front-end getting structurally slow.
            if ratio < 0.7 {
                eprintln!("# FAIL: sharded front-end regresses the recorded serial flush");
                failures += 1;
            }
        }
        None => h.note(
            "BENCH_pipeline.json missing or without flush_serial_1worker throughput; \
             front-end regression tripwire skipped",
        ),
    }

    print!("{}", h.render());
    let path = h.write_json(out_dir).expect("writing BENCH_concurrency.json");
    eprintln!("# wrote {}", path.display());
    if failures > 0 {
        eprintln!("# concurrency bench FAILED with {failures} violation(s)");
        std::process::exit(1);
    }
    eprintln!(
        "# concurrency bench passed: {speedup:.2}x at 8 threads, 1-thread at \
         {vs_serial:.2}x of serial, zero verification errors"
    );
}

/// Per-codec throughput and ratio sweep: every codec in the elastic
/// ladder against every `edc-datagen` corpus class, compress and
/// decompress, with the frozen pre-refactor encoders
/// ([`edc_compress::baseline`]) timed by the same harness in the same run
/// as the hot-path speedup baseline. Writes `BENCH_codecs.json`.
fn bench_codecs(smoke: bool, out_dir: &Path) {
    use edc_compress::{baseline, CodecId, CodecRegistry, CompressorState};
    use edc_datagen::{BlockClass, ContentGenerator};

    let samples = if smoke { 3 } else { 9 };
    let n_blocks: usize = if smoke { 4 } else { 64 };
    // The paper's flash-page unit and the selector's per-block granularity;
    // this is the size the write path hands each codec. Merged-run-sized
    // (16 KiB) throughput is measured separately in the baseline section.
    let block_len: usize = 4 * 1024;

    let mut h = Harness::new("codecs", samples);
    let cpus = std::thread::available_parallelism().map_or(1, |c| c.get());
    h.metric("available_cpus", cpus as f64);
    h.metric("block_bytes", block_len as f64);
    h.metric("blocks_per_class", n_blocks as f64);
    if smoke {
        h.note("smoke run: reduced block count and samples; absolute numbers are not comparable to full runs");
    }

    for class in BlockClass::ALL {
        let mut gen = ContentGenerator::pure(0xEDC, class);
        let blocks: Vec<Vec<u8>> = (0..n_blocks).map(|_| gen.block_of(class, block_len)).collect();
        let total: u64 = blocks.iter().map(|b| b.len() as u64).sum();
        let cname = format!("{class:?}").to_lowercase();
        for id in CodecId::ALL_CODECS {
            let codec = CodecRegistry::get(id).expect("ladder codec");
            let label = id.name().to_lowercase();
            // Compress with a pooled state, as the pipeline's drain does.
            let mut state = CompressorState::new();
            let mut out = Vec::new();
            h.run_bytes(&format!("compress/{label}/{cname}"), total, || {
                for b in &blocks {
                    codec.compress_with(&mut state, b, &mut out);
                    std::hint::black_box(out.len());
                }
            });
            let streams: Vec<Vec<u8>> = blocks.iter().map(|b| codec.compress(b)).collect();
            let comp_total: u64 = streams.iter().map(|s| s.len() as u64).sum();
            h.metric(&format!("ratio_{label}_{cname}"), total as f64 / comp_total.max(1) as f64);
            let mut dec = Vec::new();
            h.run_bytes(&format!("decompress/{label}/{cname}"), total, || {
                for (s, b) in streams.iter().zip(&blocks) {
                    codec.decompress_into(s, b.len(), &mut dec).expect("round trip");
                    std::hint::black_box(dec.len());
                }
            });
        }
    }

    // Pre-refactor baseline, same harness, same run, same text corpus —
    // the honest denominator for the hot-path speedup claims. Bwt has no
    // frozen baseline (its hot path was not refactored). The refactored
    // encoder is re-timed here, back-to-back with its baseline, rather
    // than reusing the sweep's number from minutes earlier: on shared
    // machines throughput drifts over a run, and adjacency is what makes
    // the before/after pair comparable. Both the block-sized (4 KiB, the
    // write path's unit — where the eliminated per-call setup is a large
    // share of the work) and the merged-run-sized (16 KiB) pairs are
    // recorded; the speedup is size-dependent and both numbers are real.
    for (len, suffix) in [(block_len, ""), (16 * 1024, "_run16k")] {
        let mut gen = ContentGenerator::pure(0xEDC, BlockClass::Text);
        let blocks: Vec<Vec<u8>> = (0..n_blocks).map(|_| gen.block_of(BlockClass::Text, len)).collect();
        let total: u64 = blocks.iter().map(|b| b.len() as u64).sum();
        for id in [CodecId::Lzf, CodecId::Lz4, CodecId::Deflate] {
            let codec = CodecRegistry::get(id).expect("ladder codec");
            let label = id.name().to_lowercase();
            let pre = h
                .run_bytes(&format!("compress_prerefactor{suffix}/{label}/text"), total, || {
                    for b in &blocks {
                        std::hint::black_box(baseline::compress(id, b).len());
                    }
                })
                .throughput_mib_s()
                .unwrap_or(0.0);
            let mut state = CompressorState::new();
            let mut out = Vec::new();
            let live = h
                .run_bytes(&format!("compress_refactored{suffix}/{label}/text"), total, || {
                    for b in &blocks {
                        codec.compress_with(&mut state, b, &mut out);
                        std::hint::black_box(out.len());
                    }
                })
                .throughput_mib_s()
                .unwrap_or(0.0);
            h.metric(&format!("prerefactor_compress_mib_s_{label}{suffix}"), pre);
            h.metric(&format!("compress_mib_s_{label}{suffix}"), live);
            let speedup = if pre > 0.0 { live / pre } else { 0.0 };
            h.metric(&format!("compress_speedup_vs_prerefactor_{label}{suffix}"), speedup);
            eprintln!(
                "# {label}/{len}B: {pre:.1} -> {live:.1} MiB/s ({speedup:.2}x vs pre-refactor)"
            );
            if id == CodecId::Deflate && suffix.is_empty() && speedup < 2.0 {
                h.note(&format!(
                    "gzip hot-path speedup at the 4 KiB block size is {speedup:.2}x, short \
                     of the 2x goal on this machine/run: with the bit-identical-stream \
                     constraint the chain walk is unchanged algorithmically, so the gain \
                     comes from eliminated per-call setup, word-wide extension and emit \
                     batching only"
                ));
            }
        }
    }

    // Dedup content-hash primitive: the per-chunk fingerprint cost the
    // dedup front-end adds to every sealed run, at the 4 KiB block unit
    // and at a large merged-chunk size (64 KiB = 16 blocks, the chunker's
    // max). Reported in both MiB/s (harness unit) and GiB/s (metric).
    for (len, label) in [(4 * 1024usize, "4k"), (64 * 1024usize, "64k")] {
        let mut gen = ContentGenerator::pure(0xEDC, BlockClass::Text);
        let bufs: Vec<Vec<u8>> =
            (0..n_blocks).map(|_| gen.block_of(BlockClass::Text, len)).collect();
        let total: u64 = bufs.iter().map(|b| b.len() as u64).sum();
        let r = h.run_bytes(&format!("content_hash64/{label}"), total, || {
            for b in &bufs {
                std::hint::black_box(edc_core::content_hash64(b, 0xEDC0_DE0D));
            }
        });
        let gib_s = r.throughput_mib_s().unwrap_or(0.0) / 1024.0;
        h.metric(&format!("content_hash64_gib_s_{label}"), gib_s);
        eprintln!("# content_hash64/{label}: {gib_s:.2} GiB/s");
    }

    print!("{}", h.render());
    let path = h.write_json(out_dir).expect("writing BENCH_codecs.json");
    eprintln!("# wrote {}", path.display());
}

/// Blocks per run in the heat bench (16 KiB runs).
const HEAT_RUN_BLOCKS: u64 = 4;
/// Block slots between consecutive runs; the gap keeps the
/// sequentiality detector from merging neighbouring ranks and matches
/// the sharded front-end's extent size.
const HEAT_SLOT_BLOCKS: u64 = 8;
/// Simulated-clock step per op: 2 ms/op at 4 pages per op ≈ 2000
/// calculated IOPS — squarely in the paper ladder's middle (Lzf) band,
/// leaving the strongest rung as background-recompression headroom.
const HEAT_CLOCK_STEP_NS: u64 = 2_000_000;
/// Heat half-life used by the bench: one simulated second, so a round of
/// steady-state traffic is several half-lives and the untouched tail
/// genuinely cools.
const HEAT_HALF_LIFE_NS: u64 = 1_000_000_000;
/// Simulated idle window after the steady-state rounds: long enough for
/// the cold tail (and the mid-popularity middle) to decay below the cold
/// threshold while the hot head — orders of magnitude hotter — stays hot.
/// This is the idle bandwidth the background pass converts into space.
const HEAT_IDLE_GAP_NS: u64 = 3 * HEAT_HALF_LIFE_NS;

/// Compressible low-entropy payload unique to `(rank, version)`:
/// 4-symbol content that Lzf compresses modestly and Deflate much
/// better, so background recompression has headroom that survives the
/// quantized allocator.
fn heat_block(rank: u64, version: u64) -> Vec<u8> {
    let mut x = edc_datagen::rng::splitmix64(rank.wrapping_mul(1_000_003).wrapping_add(version)) | 1;
    (0..HEAT_RUN_BLOCKS * 4096)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            b"acgt"[((x >> 60) & 3) as usize]
        })
        .collect()
}

/// Device offset of a rank's run.
fn heat_offset(rank: u64) -> u64 {
    rank * HEAT_SLOT_BLOCKS * 4096
}

/// One steady-state op in the heat bench: `(rank, is_write)`.
type HeatOp = (u64, bool);

/// The heat bench's write-path config: the ladder is pinned to its
/// sustained-load rung (Lzf), which is what the elastic selector picks
/// under the bench's steady 2000-IOPS traffic — and the regime in which
/// recompression debt accumulates. The background pass upgrades whatever
/// of it goes cold to the strong codec; the control arm is the identical
/// write path with the pass never run (the "static ladder" outcome).
fn heat_pipeline_config() -> PipelineConfig {
    PipelineConfig {
        selector: edc_core::selector::SelectorConfig {
            rungs: vec![edc_core::LadderRung {
                max_calc_iops: f64::INFINITY,
                codec: edc_compress::CodecId::Lzf,
            }],
        },
        // Cache sized past the working set: hot reads must be hits in
        // BOTH arms, so the p99 gate isolates the cost of the background
        // pass rather than cache sizing.
        cache_runs: 512,
        heat: edc_core::HeatConfig {
            enabled: true,
            half_life_ns: HEAT_HALF_LIFE_NS,
            ..edc_core::HeatConfig::default()
        },
        ..PipelineConfig::default()
    }
}

/// Steady-state ops between telemetry samples in the heat bench. Coarse
/// enough that `stats()` (which locks every shard) stays off the hot
/// path, fine enough that a full run pushes a few hundred points through
/// the tiered ring.
const HEAT_SAMPLE_EVERY_OPS: usize = 50;

/// One driven arm of the heat bench, ready for latency measurement.
struct HeatArm {
    s: ShardedPipeline,
    versions: Vec<u64>,
    clock: u64,
    errors: u64,
    /// Live stored bytes over simulated time, tier-decimated so a soak
    /// run's full trajectory fits in O(log n) points.
    live_series: TieredSeries,
    /// Fleet-wide cache hit rate over simulated time, same decimation.
    hit_series: TieredSeries,
}

impl HeatArm {
    fn tick(&mut self) -> u64 {
        self.clock += HEAT_CLOCK_STEP_NS;
        self.clock
    }

    /// Push one telemetry sample at the current simulated time.
    fn sample_telemetry(&mut self) {
        let live = self.s.live_stored_bytes();
        let hit = self.s.stats().cache.hit_rate();
        self.live_series.push(self.clock, live as f64);
        self.hit_series.push(self.clock, hit);
    }

    /// Read one rank, verifying content; returns the wall-clock ns spent
    /// in the read call itself.
    fn timed_read(&mut self, rank: u64) -> u64 {
        let now = self.tick();
        let t0 = Instant::now();
        let got =
            self.s.read(now, heat_offset(rank), HEAT_RUN_BLOCKS * 4096).expect("measured read");
        let dt = t0.elapsed().as_nanos() as u64;
        if got != heat_block(rank, self.versions[rank as usize]) {
            self.errors += 1;
        }
        dt
    }
}

/// Drive one arm of the heat bench: fill every rank, replay the shared
/// steady-state schedule, recompressing after each round when
/// `recompress_target` is set. Both arms see byte-identical traffic —
/// the only difference is the background pass.
fn heat_drive(
    n_ranks: u64,
    schedule: &[Vec<HeatOp>],
    recompress_target: Option<edc_compress::CodecId>,
    budget_per_shard: usize,
) -> HeatArm {
    let s = ShardedPipeline::new(
        64 << 20,
        ShardConfig {
            shards: 4,
            extent_blocks: HEAT_SLOT_BLOCKS,
            pipeline: heat_pipeline_config(),
        },
    );
    let mut arm = HeatArm {
        s,
        versions: vec![0u64; n_ranks as usize],
        clock: 0,
        errors: 0,
        live_series: TieredSeries::new(32, 4),
        hit_series: TieredSeries::new(32, 4),
    };

    for rank in 0..n_ranks {
        let now = arm.tick();
        arm.s.write(now, heat_offset(rank), &heat_block(rank, 0)).expect("fill write");
    }
    let now = arm.tick();
    arm.s.flush_all(now).expect("fill flush");
    arm.sample_telemetry();

    let mut ops_since_sample = 0usize;
    for round in schedule {
        for &(rank, is_write) in round {
            let now = arm.tick();
            ops_since_sample += 1;
            if ops_since_sample >= HEAT_SAMPLE_EVERY_OPS {
                ops_since_sample = 0;
                arm.sample_telemetry();
            }
            if is_write {
                arm.versions[rank as usize] += 1;
                arm.s
                    .write(now, heat_offset(rank), &heat_block(rank, arm.versions[rank as usize]))
                    .expect("steady write");
            } else {
                let got = arm
                    .s
                    .read(now, heat_offset(rank), HEAT_RUN_BLOCKS * 4096)
                    .expect("steady read");
                if got != heat_block(rank, arm.versions[rank as usize]) {
                    arm.errors += 1;
                }
            }
        }
        let now = arm.tick();
        arm.s.flush_all(now).expect("round flush");
        if let Some(target) = recompress_target {
            let now = arm.tick();
            arm.s.recompress(now, target, budget_per_shard).expect("recompress pass");
        }
        arm.sample_telemetry();
    }

    // Idle window: traffic stops for several half-lives, then the
    // recompressing arm drains its backlog in budget-bounded passes —
    // the "turn idle bandwidth into space savings" half of the claim.
    arm.clock += HEAT_IDLE_GAP_NS;
    if let Some(target) = recompress_target {
        for _ in 0..16 {
            let now = arm.tick();
            let r = arm.s.recompress(now, target, budget_per_shard).expect("idle pass");
            arm.sample_telemetry();
            if r.recompressed == 0 && r.demoted == 0 {
                break;
            }
        }
    }
    arm
}

/// Fully verify an arm: every rank reads back its latest version and the
/// store audits clean. Returns the arm's accumulated error count.
fn heat_verify(arm: &mut HeatArm, n_ranks: u64) -> u64 {
    for rank in 0..n_ranks {
        let now = arm.tick();
        let got =
            arm.s.read(now, heat_offset(rank), HEAT_RUN_BLOCKS * 4096).expect("verify read");
        if got != heat_block(rank, arm.versions[rank as usize]) {
            arm.errors += 1;
        }
    }
    let audit = arm.s.verify().expect("verify audit");
    arm.errors += audit.unrecoverable;
    arm.errors
}

/// p99 of a sorted-in-place latency vector, ns.
fn p_ns(lat: &mut [u64], pct: usize) -> u64 {
    lat.sort_unstable();
    lat[lat.len() * pct / 100]
}

/// Power-cut sweep over a background recompression pass: learn the pass's
/// page-program count from a clean run, then cut at every program index,
/// recover, and verify every run reads back bit-exact. Returns
/// `(cut_points, lost_blocks, payload_mismatches)`.
fn heat_power_cut_sweep(smoke: bool) -> (u64, u64, u64) {
    use edc_compress::CodecId;
    let runs: u64 = if smoke { 6 } else { 16 };
    let mk = || EdcPipeline::new(8 << 20, heat_pipeline_config());
    let drive = |p: &mut EdcPipeline| {
        let mut clock = 0u64;
        for rank in 0..runs {
            clock += HEAT_CLOCK_STEP_NS;
            p.write(clock, heat_offset(rank), &heat_block(rank, 0)).expect("sweep write");
        }
        p.flush_all(clock + HEAT_CLOCK_STEP_NS).expect("sweep flush");
        // Everything cools far past the threshold before the pass runs.
        clock + 400 * HEAT_HALF_LIFE_NS
    };

    // Clean run: how many page programs does the pass itself issue?
    let mut clean = mk();
    let cold_at = drive(&mut clean);
    let before = clean.stats().programs;
    clean.recompress_pass(cold_at, CodecId::Deflate, usize::MAX).expect("clean pass");
    let pass_programs = clean.stats().programs - before;

    let (mut lost, mut mismatches) = (0u64, 0u64);
    for cut in 0..pass_programs {
        let mut p = mk();
        let cold_at = drive(&mut p);
        p.set_fault_plan(FaultPlan {
            power_cut_after_programs: Some(cut),
            ..FaultPlan::none()
        });
        // The cut aborts the pass mid-flight; that is the point.
        let _ = p.recompress_pass(cold_at, CodecId::Deflate, usize::MAX);
        let report = p.recover().expect("recovery after cut");
        mismatches += report.payload_mismatches;
        for rank in 0..runs {
            match p.read(1 << 40, heat_offset(rank), HEAT_RUN_BLOCKS * 4096) {
                Ok(got) if got == heat_block(rank, 0) => {}
                _ => lost += 1,
            }
        }
    }
    (pass_programs, lost, mismatches)
}

/// Heat-aware background recompression benchmark: a seeded Zipfian
/// steady-state workload driven through two byte-identical sharded
/// pipelines — one running `recompress` after every round, one never —
/// gated on the recompressing arm ending with a strictly smaller live
/// footprint AND hot-read p99 within 5% of the control, plus a power-cut
/// sweep across the pass proving zero journaled-run data loss. Writes
/// `BENCH_heat.json`; exits non-zero on any gate failure.
fn bench_heat(smoke: bool, out_dir: &Path) {
    use edc_datagen::{Rng64, Zipfian};
    let n_ranks: u64 = if smoke { 48 } else { 160 };
    let rounds: usize = if smoke { 3 } else { 8 };
    let ops_per_round: usize = if smoke { 400 } else { 1500 };
    let measure_reads: usize = if smoke { 600 } else { 2500 };
    let budget_per_shard: usize = 64;
    let theta = 0.99;

    let mut h = Harness::new("heat", 1);
    let mut failures = 0u64;
    h.metric("ranks", n_ranks as f64);
    h.metric("rounds", rounds as f64);
    h.metric("ops_per_round", ops_per_round as f64);
    h.metric("zipf_theta", theta);
    if smoke {
        h.note("smoke run: reduced workload; absolute numbers are not comparable to full runs");
    }

    // Shared schedule: both arms replay the identical op sequence, so the
    // only difference between them is the background pass.
    let zipf = Zipfian::new(n_ranks as usize, theta);
    let mut rng = Rng64::seed_from_u64(0xEDC_4EA7);
    let schedule: Vec<Vec<HeatOp>> = (0..rounds)
        .map(|_| {
            (0..ops_per_round)
                .map(|_| (zipf.sample(&mut rng) as u64, rng.chance(1.0 / 3.0)))
                .collect()
        })
        .collect();
    let measure: Vec<u64> =
        (0..measure_reads).map(|_| zipf.sample(&mut rng) as u64).collect();

    let target = SelectorConfig::default().strongest_codec();
    eprintln!(
        "# heat bench: {n_ranks} ranks x {rounds} rounds x {ops_per_round} ops, \
         recompression target {target:?}"
    );
    let mut heat = heat_drive(n_ranks, &schedule, Some(target), budget_per_shard);
    let mut control = heat_drive(n_ranks, &schedule, None, budget_per_shard);

    // Interleaved latency measurement: alternating the arms read-by-read
    // cancels machine drift (thermal, page cache) that a
    // one-arm-then-the-other protocol would attribute to whichever arm
    // ran second. One untimed warm-up pass each, then the timed reads.
    for &rank in &measure {
        heat.timed_read(rank);
        control.timed_read(rank);
    }
    let mut heat_lat = Vec::with_capacity(measure.len());
    let mut control_lat = Vec::with_capacity(measure.len());
    for (i, &rank) in measure.iter().enumerate() {
        // Swap which arm goes first every iteration: going first or
        // second in a pair has its own micro-cost, and it must not load
        // onto one arm systematically.
        if i % 2 == 0 {
            heat_lat.push(heat.timed_read(rank));
            control_lat.push(control.timed_read(rank));
        } else {
            control_lat.push(control.timed_read(rank));
            heat_lat.push(heat.timed_read(rank));
        }
    }
    let (heat_p50, heat_p99) = (p_ns(&mut heat_lat, 50), p_ns(&mut heat_lat, 99));
    let (control_p50, control_p99) = (p_ns(&mut control_lat, 50), p_ns(&mut control_lat, 99));

    let heat_errors = heat_verify(&mut heat, n_ranks);
    let control_errors = heat_verify(&mut control, n_ranks);
    failures += heat_errors + control_errors;
    if heat_errors + control_errors > 0 {
        eprintln!(
            "# FAIL: {heat_errors} heat-arm and {control_errors} control-arm verification \
             error(s)"
        );
    }

    let heat_live = heat.s.live_stored_bytes();
    let control_live = control.s.live_stored_bytes();
    let stats = heat.s.stats();
    let mib = |b: u64| b as f64 / (1 << 20) as f64;
    let saving = 1.0 - heat_live as f64 / control_live.max(1) as f64;
    h.metric("heat_live_mib", mib(heat_live));
    h.metric("control_live_mib", mib(control_live));
    h.metric("space_saving_pct", saving * 100.0);
    h.metric("recompressed_runs", stats.recompressed_runs as f64);
    h.metric("demoted_runs", stats.demoted_runs as f64);
    h.metric("heat_read_p50_us", heat_p50 as f64 / 1e3);
    h.metric("heat_read_p99_us", heat_p99 as f64 / 1e3);
    h.metric("control_read_p50_us", control_p50 as f64 / 1e3);
    h.metric("control_read_p99_us", control_p99 as f64 / 1e3);
    let p99_ratio = heat_p99 as f64 / control_p99.max(1) as f64;
    h.metric("p99_ratio_heat_vs_control", p99_ratio);

    // Trajectory series: how each arm's live footprint (and the heat
    // arm's cache hit rate) moved over simulated time, tier-decimated by
    // `TieredSeries` so even a full soak run emits O(log n) points while
    // keeping the newest region at full resolution.
    let pts =
        |s: &TieredSeries| s.samples().into_iter().map(|p| (p.t_ns, p.value)).collect::<Vec<_>>();
    h.metric("telemetry_pushed", heat.live_series.pushed() as f64);
    h.metric("telemetry_retained", heat.live_series.len() as f64);
    h.metric("telemetry_tiers", heat.live_series.tier_count() as f64);
    h.series("heat_live_bytes", pts(&heat.live_series));
    h.series("control_live_bytes", pts(&control.live_series));
    h.series("heat_cache_hit_rate", pts(&heat.hit_series));
    eprintln!(
        "# space: heat {:.2} MiB vs control {:.2} MiB ({:.1}% saved, {} runs recompressed, \
         {} demoted)",
        mib(heat_live),
        mib(control_live),
        saving * 100.0,
        stats.recompressed_runs,
        stats.demoted_runs
    );
    eprintln!(
        "# read p99: heat {:.1} µs vs control {:.1} µs ({p99_ratio:.3}x)",
        heat_p99 as f64 / 1e3,
        control_p99 as f64 / 1e3
    );
    // Gate 1: the whole point — strictly better space than the static
    // ladder left alone.
    if heat_live >= control_live {
        eprintln!("# FAIL: recompressing arm did not end with a strictly smaller footprint");
        failures += 1;
    }
    if stats.recompressed_runs == 0 {
        eprintln!("# FAIL: the background pass never recompressed anything");
        failures += 1;
    }
    // Gate 2: hot reads must not pay for it (5% p99 budget).
    if p99_ratio > 1.05 {
        eprintln!("# FAIL: hot-read p99 regressed {p99_ratio:.3}x (budget 1.05x)");
        failures += 1;
    }

    // Timed pass over a fully cold store, for the throughput tripwire.
    let cold_runs: u64 = if smoke { 16 } else { 64 };
    h.run_prepared(
        "recompress_cold_store",
        Some(cold_runs * HEAT_RUN_BLOCKS * 4096),
        || {
            let mut p = EdcPipeline::new(64 << 20, heat_pipeline_config());
            let mut clock = 0u64;
            for rank in 0..cold_runs {
                clock += HEAT_CLOCK_STEP_NS;
                p.write(clock, heat_offset(rank), &heat_block(rank, 0)).expect("cold write");
            }
            p.flush_all(clock + HEAT_CLOCK_STEP_NS).expect("cold flush");
            (p, clock + 400 * HEAT_HALF_LIFE_NS)
        },
        |(mut p, now)| {
            let r = p.recompress_pass(now, target, usize::MAX).expect("timed pass");
            (r.recompressed, p)
        },
    );

    // Gate 3: a power cut anywhere inside the pass loses nothing.
    let (cut_points, lost, mismatches) = heat_power_cut_sweep(smoke);
    h.metric("power_cut_points", cut_points as f64);
    h.metric("power_cut_lost_blocks", lost as f64);
    h.metric("power_cut_payload_mismatches", mismatches as f64);
    eprintln!(
        "# power-cut sweep: {cut_points} cut points across the pass, {lost} lost block(s), \
         {mismatches} payload mismatch(es)"
    );
    if lost > 0 || mismatches > 0 {
        eprintln!("# FAIL: power-cut sweep across the recompression pass lost data");
        failures += 1;
    }

    print!("{}", h.render());
    let path = h.write_json(out_dir).expect("writing BENCH_heat.json");
    eprintln!("# wrote {}", path.display());
    if failures > 0 {
        eprintln!("# heat bench FAILED with {failures} violation(s)");
        std::process::exit(1);
    }
    eprintln!(
        "# heat bench passed: {:.1}% space saved at {p99_ratio:.3}x p99, zero data loss \
         across {cut_points} mid-pass power cuts",
        saving * 100.0
    );
}

/// Pipeline config for the dedup bench arms: everything at its default
/// except the dedup front-end toggle under test.
fn dedup_bench_config(dedup_on: bool) -> PipelineConfig {
    let mut cfg = PipelineConfig::default();
    cfg.dedup.enabled = dedup_on;
    cfg
}

/// Power-cut sweep across the dedup write path and a shared-run
/// relocation: learn the total page-program count from a clean run
/// (unique writes, then dedup-hit writes sharing the first run, then a
/// cooled recompression pass that relocates the shared run), cut at
/// every program index, recover, and check nothing committed is lost.
/// Within a drain runs commit in write order, so a zero-filled slot
/// *below* the highest committed slot is a loss, not an uncommitted
/// write. Returns `(cut_points, lost_blocks, payload_mismatches)`.
fn dedup_power_cut_sweep(smoke: bool) -> (u64, u64, u64) {
    use edc_compress::CodecId;
    let uniques: u64 = if smoke { 2 } else { 4 };
    let dups: u64 = if smoke { 2 } else { 3 };
    let slots = uniques + dups;
    let run_blocks: u64 = 4;
    let step = 2_000_000u64;
    // Each slot is a 4-block (16 KiB) run — big enough that a cooled
    // Deflate rewrite reclaims whole pages — placed 8 blocks apart so the
    // sequentiality detector never merges neighbouring slots. Duplicate
    // slots repeat unique 0's payload from block 64 up; the seeded
    // chunker cuts identical payloads identically, so every duplicate
    // chunk shares unique 0's stored run(s).
    // ACGT noise, as in [`heat_block`]: Lzf finds no matches and keeps it
    // ~raw, Deflate's entropy coder quarters it — so the cooled pass has
    // whole pages to reclaim per run.
    let expect = |s: u64| -> Vec<u8> {
        let src = if s < uniques { s } else { 0 };
        let mut x = edc_datagen::rng::splitmix64(src.wrapping_mul(0x9E37_79B9).wrapping_add(7)) | 1;
        (0..run_blocks * 4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                b"acgt"[((x >> 60) & 3) as usize]
            })
            .collect()
    };
    let offset = |s: u64| if s < uniques { s * 8 * 4096 } else { (64 + (s - uniques) * 8) * 4096 };
    // Pin the write-path ladder to Lzf (as the heat bench does) so the
    // cooled Deflate pass has a tier to move the shared run up to.
    let mk = || {
        let mut cfg = heat_pipeline_config();
        cfg.dedup.enabled = true;
        EdcPipeline::new(8 << 20, cfg)
    };
    let drive = |p: &mut EdcPipeline| -> u64 {
        let mut clock = 0u64;
        for s in 0..slots {
            clock += step;
            // Cut runs abort mid-write; that is the point.
            let _ = p.write(clock, offset(s), &expect(s));
        }
        let _ = p.flush_all(clock + step);
        // Everything cools far past the threshold before the pass runs.
        clock + 400 * 1_000_000_000
    };

    // Clean run: how many page programs does the whole sequence issue,
    // and does it actually exercise a shared-run relocation?
    let mut clean = mk();
    let cold_at = drive(&mut clean);
    let pass = clean.recompress_pass(cold_at, CodecId::Deflate, usize::MAX).expect("clean pass");
    assert!(pass.recompressed > 0, "sweep must exercise a relocation: {pass:?}");
    let ledger = clean.verify_dedup().expect("clean ledger");
    assert!(ledger.shared_runs >= 1, "sweep must relocate a *shared* run: {ledger:?}");
    let total_programs = clean.stats().programs;

    let (mut lost, mut mismatches) = (0u64, 0u64);
    for cut in 0..total_programs {
        let mut p = mk();
        p.set_fault_plan(FaultPlan {
            power_cut_after_programs: Some(cut),
            ..FaultPlan::none()
        });
        let cold_at = drive(&mut p);
        let _ = p.recompress_pass(cold_at, CodecId::Deflate, usize::MAX);
        let report = p.recover().expect("recovery after cut");
        mismatches += report.payload_mismatches;
        p.verify_dedup().expect("refcount ledger cross-check after recovery");
        let now = cold_at + step;
        // Per 4 KiB block: 0 = reads back committed content, 1 = still
        // zero-filled (its chunk's commit never happened), 2 = torn or
        // unreadable. Chunks commit in write order, so committed blocks
        // form a prefix of the written sequence.
        let mut states = Vec::with_capacity((slots * run_blocks) as usize);
        for s in 0..slots {
            let want = expect(s);
            for k in 0..run_blocks {
                let lo = (k * 4096) as usize;
                states.push(match p.read(now, offset(s) + k * 4096, 4096) {
                    Ok(got) if got[..] == want[lo..lo + 4096] => 0u8,
                    Ok(got) if got.iter().all(|&b| b == 0) => 1,
                    _ => 2,
                });
            }
        }
        let last_committed = states.iter().rposition(|&st| st == 0);
        for (s, &st) in states.iter().enumerate() {
            let uncommitted_tail = st == 1 && Some(s) > last_committed;
            if st != 0 && !uncommitted_tail {
                lost += 1;
            }
        }
    }
    (total_programs, lost, mismatches)
}

/// Content-defined dedup front-end benchmark: two seeded block streams
/// (a 40 %-duplicate Zipfian-reuse mix and a duplicate-free control mix)
/// each driven through a dedup-on and a dedup-off pipeline. Gated on the
/// duplicate mix programming strictly fewer flash bytes *and* writing at
/// least as fast with dedup on, the duplicate-free mix staying within 5 %
/// of the dedup-off control (the hashing-overhead budget), bit-exact
/// read-back on every arm, a clean two-way refcount-ledger cross-check,
/// and a power-cut sweep across the dedup write path and a shared-run
/// relocation proving zero committed-data loss. Writes
/// `BENCH_dedup.json`; exits non-zero on any gate failure.
fn bench_dedup(smoke: bool, out_dir: &Path) {
    use edc_datagen::{BlockClass, DataMix, DupStream};
    let stream_blocks: usize = if smoke { 1_200 } else { 10_000 };
    let samples: u32 = if smoke { 5 } else { 7 };
    let capacity = (stream_blocks as u64 * 4096 * 2).max(16 << 20);
    let theta = 0.99;
    let dial = 0.40;

    let mut h = Harness::new("dedup", samples);
    let mut failures = 0u64;
    h.metric("stream_blocks", stream_blocks as f64);
    h.metric("dup_dial", dial);
    h.metric("zipf_theta", theta);
    if smoke {
        h.note("smoke run: reduced workload; absolute numbers are not comparable to full runs");
    }

    // Text blocks for both mixes: compressible (so the codec work a dedup
    // hit elides is realistic) and practically collision-free (so the
    // duplicate-free control really is dedup-free and measures pure
    // hashing overhead).
    let make_stream = |frac: f64| {
        let mut s = DupStream::new(0xEDC_D0D0, DataMix::pure(BlockClass::Text), frac, theta);
        let blocks: Vec<Vec<u8>> = (0..stream_blocks).map(|_| s.block(4096)).collect();
        (blocks, s.achieved_dup_fraction())
    };
    let (dup40, achieved40) = make_stream(dial);
    let (dup0, achieved0) = make_stream(0.0);
    h.metric("dup40_achieved_fraction", achieved40);
    h.metric("dup0_achieved_fraction", achieved0);
    eprintln!(
        "# dedup bench: {stream_blocks} x 4 KiB blocks per arm, duplicate mix dialed \
         {dial} (achieved {achieved40:.3})"
    );

    // Scatter the logical placement with a multiplicative permutation:
    // contiguous offsets would be merged into multi-block runs by the
    // sequentiality detector, hiding the block-granular duplicates the
    // mix injects. (The multiplier is odd and prime, so it permutes
    // `0..stream_blocks` for any modulus.)
    let pos = |i: usize| (i as u64).wrapping_mul(2_654_435_761) % stream_blocks as u64;
    let total_bytes = stream_blocks as u64 * 4096;
    // Write one round of the stream into a pipeline, timed.
    fn drive_window(
        p: &mut EdcPipeline,
        window: &[Vec<u8>],
        base: usize,
        clock0: u64,
        pos: &impl Fn(usize) -> u64,
    ) -> u64 {
        let t0 = Instant::now();
        let mut clock = clock0;
        for (j, b) in window.iter().enumerate() {
            clock += 2_000_000;
            p.write(clock, pos(base + j) * 4096, b).expect("bench write");
        }
        t0.elapsed().as_nanos() as u64
    }
    // One paired sample: both arms advance through the stream
    // round-by-round, alternating who goes first, so scheduler and
    // frequency drift land on both arms alike — the throughput gates
    // compare the two arms at a few percent, far below the drift a
    // one-arm-then-the-other protocol shows on a busy machine.
    let time_pair = |blocks: &[Vec<u8>], flip: bool| -> (u64, u64, EdcPipeline, EdcPipeline) {
        let rounds = 16;
        let mut p_on = EdcPipeline::new(capacity, dedup_bench_config(true));
        let mut p_off = EdcPipeline::new(capacity, dedup_bench_config(false));
        let (mut t_on, mut t_off) = (0u64, 0u64);
        let mut clock = 0u64;
        let chunk = blocks.len().div_ceil(rounds);
        for (r, window) in blocks.chunks(chunk).enumerate() {
            let base = r * chunk;
            if (r % 2 == 0) ^ flip {
                t_on += drive_window(&mut p_on, window, base, clock, &pos);
                t_off += drive_window(&mut p_off, window, base, clock, &pos);
            } else {
                t_off += drive_window(&mut p_off, window, base, clock, &pos);
                t_on += drive_window(&mut p_on, window, base, clock, &pos);
            }
            clock += window.len() as u64 * 2_000_000;
        }
        let t0 = Instant::now();
        p_on.flush_all(clock + 2_000_000).expect("bench flush");
        t_on += t0.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        p_off.flush_all(clock + 2_000_000).expect("bench flush");
        t_off += t0.elapsed().as_nanos() as u64;
        (t_on, t_off, p_on, p_off)
    };
    let mut measured: Vec<(f64, PipelineStats)> = Vec::new();
    // Median of per-sample paired ratios (throughput on / throughput off):
    // each sample's two arms share the same machine moment, so the ratio
    // is drift-free even when absolute throughput swings between samples.
    let mut paired_ratios: Vec<f64> = Vec::new();
    for (mix, blocks) in [("dup40", &dup40), ("dup0", &dup0)] {
        std::hint::black_box(time_pair(blocks, false));
        let (mut on_ns, mut off_ns) = (Vec::new(), Vec::new());
        let mut last = None;
        for s in 0..samples {
            let (t_on, t_off, p_on, p_off) = time_pair(blocks, s % 2 == 1);
            on_ns.push(t_on);
            off_ns.push(t_off);
            last = Some((p_on, p_off));
        }
        let mut ratios: Vec<f64> =
            on_ns.iter().zip(&off_ns).map(|(&a, &b)| b as f64 / a as f64).collect();
        ratios.sort_by(f64::total_cmp);
        paired_ratios.push(ratios[ratios.len() / 2]);
        let (p_on, p_off) = last.expect("at least one sample");
        for (arm, samples_ns, mut p) in
            [("on", on_ns, p_on), ("off", off_ns, p_off)]
        {
            let name = format!("write/{mix}/{arm}");
            let case = h.record_case(&name, samples_ns, Some(total_bytes));
            // Gate on the *fastest* sample: the work is deterministic, so
            // min-of-N converges on the true cost while the median still
            // carries scheduler interference at these short run times.
            let mib_s = total_bytes as f64 / (1 << 20) as f64 / (case.min_ns as f64 * 1e-9);
            // Correctness, outside the timed region: every block reads
            // back bit-exact (offsets are never overwritten, so the
            // expected bytes are just the stream), and the refcount
            // ledger cross-checks.
            let now = stream_blocks as u64 * 2_000_000 + 4_000_000;
            let mut bad = 0u64;
            for (i, b) in blocks.iter().enumerate() {
                match p.read(now, pos(i) * 4096, 4096) {
                    Ok(got) if &got == b => {}
                    _ => bad += 1,
                }
            }
            if bad > 0 {
                eprintln!("# FAIL: {name}: {bad} block(s) did not read back bit-exact");
                failures += 1;
            }
            if let Err(e) = p.verify_dedup() {
                eprintln!("# FAIL: {name}: refcount ledger cross-check: {e:?}");
                failures += 1;
            }
            measured.push((mib_s, p.stats()));
        }
    }
    let (on40_mib_s, on40) = (measured[0].0, measured[0].1);
    let (off40_mib_s, off40) = (measured[1].0, measured[1].1);
    let (_, on0) = (measured[2].0, measured[2].1);
    let (ratio40, ratio0) = (paired_ratios[0], paired_ratios[1]);
    let mib = |b: u64| b as f64 / (1 << 20) as f64;

    h.metric("dup40_flash_mib_on", mib(on40.physical_written));
    h.metric("dup40_flash_mib_off", mib(off40.physical_written));
    h.metric("dup40_flash_saving_pct", {
        100.0 * (1.0 - on40.physical_written as f64 / off40.physical_written.max(1) as f64)
    });
    h.metric("dup40_dedup_hits", on40.dedup_hits as f64);
    h.metric("dup40_elided_mib", mib(on40.dedup_elided_bytes));
    h.metric("dup40_throughput_ratio_on_vs_off", ratio40);
    h.metric("dup0_dedup_hits", on0.dedup_hits as f64);
    h.metric("dup0_throughput_ratio_on_vs_off", ratio0);
    eprintln!(
        "# dup mix: {:.2} MiB programmed with dedup on vs {:.2} MiB off ({} hits, {:.2} MiB \
         elided), write {:.1} vs {:.1} MiB/s ({ratio40:.3}x paired)",
        mib(on40.physical_written),
        mib(off40.physical_written),
        on40.dedup_hits,
        mib(on40.dedup_elided_bytes),
        on40_mib_s,
        off40_mib_s
    );
    eprintln!(
        "# dup-free mix: dedup-on at {ratio0:.3}x the dedup-off write throughput, \
         {} stray hit(s)",
        on0.dedup_hits
    );

    // Gate 1: the whole point — the duplicate mix must program strictly
    // fewer flash bytes than the dedup-off control, by actually hitting.
    if on40.physical_written >= off40.physical_written {
        eprintln!("# FAIL: dedup did not program strictly fewer flash bytes on the dup mix");
        failures += 1;
    }
    if on40.dedup_hits == 0 {
        eprintln!("# FAIL: the dedup front-end never hit on a 40%-duplicate mix");
        failures += 1;
    }
    // Gate 2: hits elide compression and program work, so the dup mix
    // must also *write* at least as fast as the control.
    if ratio40 < 1.0 {
        eprintln!(
            "# FAIL: dup-mix write throughput fell below the dedup-off control \
             ({ratio40:.3}x paired)"
        );
        failures += 1;
    }
    // Gate 3: on duplicate-free data the chunker + content hash must stay
    // within the 5% hot-path overhead budget.
    if ratio0 < 0.95 {
        eprintln!(
            "# FAIL: hashing overhead on duplicate-free data exceeded the 5% budget \
             ({ratio0:.3}x paired)"
        );
        failures += 1;
    }

    // Gate 4: a power cut anywhere through the dedup-hit write path or
    // the shared-run relocation loses nothing committed.
    let (cut_points, lost, mismatches) = dedup_power_cut_sweep(smoke);
    h.metric("power_cut_points", cut_points as f64);
    h.metric("power_cut_lost_blocks", lost as f64);
    h.metric("power_cut_payload_mismatches", mismatches as f64);
    eprintln!(
        "# power-cut sweep: {cut_points} cut points across dedup writes + relocation, \
         {lost} lost block(s), {mismatches} payload mismatch(es)"
    );
    if lost > 0 || mismatches > 0 {
        eprintln!("# FAIL: power-cut sweep across the dedup write path lost data");
        failures += 1;
    }

    print!("{}", h.render());
    let path = h.write_json(out_dir).expect("writing BENCH_dedup.json");
    eprintln!("# wrote {}", path.display());
    if failures > 0 {
        eprintln!("# dedup bench FAILED with {failures} violation(s)");
        std::process::exit(1);
    }
    eprintln!(
        "# dedup bench passed: {:.1}% flash bytes saved on the dup mix at {ratio0:.3}x dup-free \
         overhead, zero committed-data loss across {cut_points} power cuts",
        100.0 * (1.0 - on40.physical_written as f64 / off40.physical_written.max(1) as f64),
    );
}

/// Extract `(case_name, throughput_mib_s)` pairs from a harness JSON
/// report (hand-parsed, one case per line — see [`Harness::to_json`]).
fn parse_case_throughputs(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\": \"") else { continue };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else { continue };
        let name = rest[..name_end].to_string();
        let key = "\"throughput_mib_s\": ";
        let Some(t_at) = line.find(key) else { continue };
        let rest = &line[t_at + key.len()..];
        let Some(end) = rest.find([',', '}']) else { continue };
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

/// Bench-regression tripwire: compare every `BENCH_*.json` in `baseline`
/// against its counterpart in `fresh`, failing (exit 1) when any case's
/// `throughput_mib_s` regressed by more than 10%. Cases present only in
/// the baseline (renamed or dropped) also fail — a silent drop is how a
/// tripwire goes blind.
fn check_bench(baseline: &Path, fresh: &Path) {
    let mut failures = 0u64;
    let mut compared = 0u64;
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(baseline) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                    n.starts_with("BENCH_") && n.ends_with(".json")
                })
            })
            .collect(),
        Err(e) => {
            eprintln!("# check-bench: cannot read baseline dir {}: {e}", baseline.display());
            std::process::exit(2);
        }
    };
    entries.sort();
    if entries.is_empty() {
        eprintln!("# check-bench: no BENCH_*.json baselines in {}", baseline.display());
        std::process::exit(2);
    }
    for base_path in entries {
        let name = base_path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
        let base_text = std::fs::read_to_string(&base_path).expect("reading baseline");
        let fresh_path = fresh.join(&name);
        let fresh_text = match std::fs::read_to_string(&fresh_path) {
            Ok(t) => t,
            Err(_) => {
                eprintln!("# FAIL: {name}: no fresh counterpart at {}", fresh_path.display());
                failures += 1;
                continue;
            }
        };
        let fresh_cases = parse_case_throughputs(&fresh_text);
        let base_cases = parse_case_throughputs(&base_text);
        // Gate metrics: campaigns encode pass/fail verdicts as `gate0_*`
        // counters. A committed baseline only ever records them at zero,
        // so the fresh run must (a) still carry every baseline gate and
        // (b) hold each of its own gates at exactly 0.0.
        let fresh_gates = parse_gate_metrics(&fresh_text);
        for (gate, _) in parse_gate_metrics(&base_text) {
            if !fresh_gates.iter().any(|(g, _)| *g == gate) {
                eprintln!("# FAIL: {name}: gate metric {gate:?} missing from fresh run");
                failures += 1;
            }
        }
        for (gate, value) in &fresh_gates {
            if *value == 0.0 {
                eprintln!("# ok: {name} {gate} = 0");
            } else {
                eprintln!("# FAIL: {name} {gate}: {value} (gate metrics must be exactly 0)");
                failures += 1;
            }
        }
        if base_cases.is_empty() {
            // Campaign outputs (faults, fuzz, scrub, ...) carry verdicts,
            // not throughput cases; with nothing measurable on either
            // side there is nothing to compare. But a baseline losing
            // all its cases while the fresh run still has them means the
            // baseline file was clobbered — fail that, don't skip it.
            if fresh_cases.is_empty() {
                eprintln!("# note: {name}: no measurable cases on either side");
            } else {
                eprintln!("# FAIL: {name}: baseline has no measurable cases but fresh run does");
                failures += 1;
            }
            continue;
        }
        for (case, base_mib_s) in base_cases {
            // Presence first: a committed baseline case must exist in the
            // fresh run even when its baseline throughput is zero —
            // skipping it silently is how a renamed/dropped case escapes
            // the tripwire.
            let Some((_, fresh_mib_s)) = fresh_cases.iter().find(|(c, _)| *c == case) else {
                eprintln!("# FAIL: {name}: case {case:?} missing from fresh run");
                failures += 1;
                continue;
            };
            if base_mib_s <= 0.0 {
                // Present but unmeasurable baseline: nothing to compare.
                continue;
            }
            compared += 1;
            let ratio = fresh_mib_s / base_mib_s;
            let verdict = if ratio < 0.9 {
                failures += 1;
                "FAIL"
            } else {
                "ok"
            };
            eprintln!(
                "# {verdict}: {name} {case}: {base_mib_s:.1} -> {fresh_mib_s:.1} MiB/s \
                 ({ratio:.2}x)"
            );
        }
    }
    if failures > 0 {
        eprintln!(
            "# check-bench FAILED: {failures} regression(s)/gap(s) over {compared} compared \
             case(s) (tolerance: >10% throughput drop)"
        );
        std::process::exit(1);
    }
    eprintln!("# check-bench passed: {compared} case(s), none regressed past 10%");
}

/// Extract `gate0_*` entries from the single-line `"metrics": {...}`
/// object campaign reports carry (hand-parsed like
/// [`parse_case_throughputs`]; the workspace has no serde).
fn parse_gate_metrics(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(at) = line.find("\"metrics\": {") else { continue };
        let body = &line[at + "\"metrics\": {".len()..];
        let body = &body[..body.rfind('}').unwrap_or(body.len())];
        for part in body.split(", ") {
            let Some((key, value)) = part.split_once(": ") else { continue };
            let key = key.trim().trim_matches('"');
            if !key.starts_with("gate0_") {
                continue;
            }
            if let Ok(value) = value.trim().parse::<f64>() {
                out.push((key.to_string(), value));
            }
        }
    }
    out
}

/// A compressible 4 KiB block with deterministic per-tag content.
fn campaign_text_block(tag: u64) -> Vec<u8> {
    format!("edc fault campaign block {tag} elastic compression payload ")
        .into_bytes()
        .into_iter()
        .cycle()
        .take(4096)
        .collect()
}

/// An incompressible 4 KiB block (xorshift noise).
fn campaign_noise_block(seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..4096)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 48) as u8
        })
        .collect()
}

/// One expected run in the fault campaign: `(offset, old_data, new_data)`.
type CampaignRun = (u64, Option<Vec<u8>>, Vec<u8>);

/// The campaign's pipeline workload: `runs` two-block runs (every fourth
/// incompressible), one overwrite at the end. Returns the expected final
/// contents as `(offset, old_data, new_data)` — `old_data` differs from
/// `new_data` only for the overwritten range, so crash verification can
/// accept either committed version.
fn campaign_drive(p: &mut EdcPipeline, runs: u64) -> Result<Vec<CampaignRun>, EdcError> {
    let mut expect: Vec<CampaignRun> = Vec::new();
    for i in 0..runs {
        let mut data = if i % 4 == 3 {
            campaign_noise_block(i * 977 + 13)
        } else {
            campaign_text_block(i)
        };
        data.extend(campaign_text_block(i + 1000));
        // Stride 3 leaves gaps so runs never merge with each other.
        let offset = (i * 3) * 4096;
        p.write(i, offset, &data)?;
        expect.push((offset, None, data));
    }
    p.flush_all(runs)?;
    // Overwrite the first run: crash verification must accept v1 or v2.
    let mut v2 = campaign_text_block(7777);
    v2.extend(campaign_text_block(8888));
    p.write(runs + 10, 0, &v2)?;
    p.flush_all(runs + 20)?;
    let old = std::mem::replace(&mut expect[0].2, v2);
    expect[0].1 = Some(old);
    Ok(expect)
}

/// Verify post-recovery contents block by block. Every block must read as
/// its expected data, its pre-overwrite data, or all zeroes (run never
/// committed) — anything else is data loss. Returns (verified, lost).
fn campaign_verify(
    p: &mut EdcPipeline,
    expect: &[CampaignRun],
) -> (u64, u64) {
    let zero = vec![0u8; 4096];
    let (mut verified, mut lost) = (0u64, 0u64);
    for (off, old, data) in expect {
        for b in 0..(data.len() / 4096) as u64 {
            let at = off + b * 4096;
            let got = match p.read(1 << 40, at, 4096) {
                Ok(g) => g,
                Err(_) => {
                    lost += 1;
                    continue;
                }
            };
            let lo = (b * 4096) as usize;
            let want = &data[lo..lo + 4096];
            let want_old = old.as_ref().map(|o| &o[lo..lo + 4096]);
            if got == want || got == zero || want_old.is_some_and(|w| got == w) {
                verified += 1;
            } else {
                lost += 1;
            }
        }
    }
    (verified, lost)
}

/// Fault-injection campaign: sweep a simulated power cut across every
/// page-program index of a pipeline workload (recovering and verifying
/// after each), then drive the raw SSD simulator through a fault-rate
/// matrix. Writes `BENCH_faults.json`; exits non-zero if any journaled
/// run loses data, or if any fault fires at zero fault rate.
fn fault_campaign(smoke: bool, out_dir: &Path) {
    let runs: u64 = if smoke { 10 } else { 48 };
    let samples = if smoke { 3 } else { 5 };
    let mk = || EdcPipeline::new(8 << 20, PipelineConfig::default());
    let mut h = Harness::new("faults", samples);
    let mut failures = 0u64;

    // Baseline: zero fault rate must mean zero faults and zero loss.
    let mut clean = mk();
    let expect = campaign_drive(&mut clean, runs).expect("clean run cannot fault");
    let total_programs = clean.stats().programs;
    let committed_runs = clean.stats().journal_records;
    let (clean_verified, clean_lost) = campaign_verify(&mut clean, &expect);
    let stats = clean.fault_stats();
    let clean_faults = stats.read_faults
        + stats.program_faults
        + stats.erase_faults
        + stats.rot_pages
        + stats.power_cuts;
    if clean_lost > 0 || clean_faults > 0 {
        eprintln!("# FAIL: zero fault rate produced loss={clean_lost} faults={clean_faults}");
        failures += 1;
    }
    eprintln!(
        "# clean run: {committed_runs} journaled runs, {total_programs} page programs, \
         {clean_verified} blocks verified"
    );

    // Power-cut sweep: cut at EVERY page-program index, recover, verify.
    let mut cuts = 0u64;
    let mut recover_failures = 0u64;
    let mut payload_mismatches = 0u64;
    let mut replayed_total = 0u64;
    let mut lost_total = 0u64;
    let mut verified_total = 0u64;
    let mut recovery_ns_sum = 0u128;
    let mut recovery_ns_max = 0u128;
    for cut in 0..total_programs {
        let mut p = mk();
        p.set_fault_plan(FaultPlan {
            power_cut_after_programs: Some(cut),
            ..FaultPlan::none()
        });
        match campaign_drive(&mut p, runs) {
            Err(EdcError::Write(edc_core::error::WriteError::PowerCut { .. })) => {}
            other => {
                eprintln!("# FAIL: cut {cut} did not surface as PowerCut ({other:?})");
                save_crash_artifact(&campaign_artifact(cut, runs), out_dir, &format!("fault_cut_{cut}.edcrr"));
                failures += 1;
                continue;
            }
        }
        let t0 = Instant::now();
        let report = match p.recover() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("# FAIL: recovery after cut {cut}: {e}");
                save_crash_artifact(&campaign_artifact(cut, runs), out_dir, &format!("fault_cut_{cut}.edcrr"));
                recover_failures += 1;
                failures += 1;
                continue;
            }
        };
        let dt = t0.elapsed().as_nanos();
        recovery_ns_sum += dt;
        recovery_ns_max = recovery_ns_max.max(dt);
        payload_mismatches += report.payload_mismatches;
        replayed_total += report.replayed_runs;
        let (v, l) = campaign_verify(&mut p, &expect);
        verified_total += v;
        lost_total += l;
        // A cut that lost data (or recovered mismatched payloads) becomes
        // a replayable `.edcrr` artifact: the same schedule re-driven
        // through a Recorder, so the failure is pinned as a golden log
        // that `edc-bench replay` re-executes bit-exactly.
        if l > 0 || report.payload_mismatches > 0 {
            save_crash_artifact(&campaign_artifact(cut, runs), out_dir, &format!("fault_cut_{cut}.edcrr"));
        }
        cuts += 1;
    }
    if lost_total > 0 || payload_mismatches > 0 {
        eprintln!(
            "# FAIL: power-cut sweep lost {lost_total} blocks, \
             {payload_mismatches} payload mismatches"
        );
        failures += 1;
    }
    eprintln!(
        "# power-cut sweep: {cuts} cut points, {replayed_total} runs replayed, \
         {verified_total} blocks verified, {lost_total} lost"
    );

    // Timed recovery at the midpoint cut (the representative case).
    let mid = total_programs / 2;
    h.run_prepared(
        "recover_after_midpoint_cut",
        None,
        || {
            let mut p = mk();
            p.set_fault_plan(FaultPlan {
                power_cut_after_programs: Some(mid),
                ..FaultPlan::none()
            });
            let _ = campaign_drive(&mut p, runs);
            p
        },
        |mut p| {
            let report = p.recover().expect("recovery");
            (report.replayed_runs, p)
        },
    );

    // Record/replay gate, on by default: the midpoint-cut schedule is
    // re-driven through a Recorder and the log replayed against a fresh
    // store, so the capture path is exercised on every campaign run —
    // not only on the runs where something already went wrong.
    let rec = campaign_artifact(mid, runs);
    h.metric("recorded_ops_midpoint_cut", rec.ops() as f64);
    h.metric("recorded_log_bytes_midpoint_cut", rec.bytes().len() as f64);
    match Replayer::replay(rec.bytes()) {
        Ok(report) if report.is_exact() => eprintln!(
            "# record/replay: midpoint-cut log ({} ops, {} bytes) replays bit-exactly",
            report.ops,
            rec.bytes().len()
        ),
        Ok(report) => {
            for d in &report.divergences {
                eprintln!("# FAIL: record/replay: {d}");
            }
            eprintln!("# FAIL: midpoint-cut record/replay diverged");
            failures += 1;
        }
        Err(e) => {
            eprintln!("# FAIL: midpoint-cut log does not parse: {e}");
            failures += 1;
        }
    }

    // Device-level matrix: transient/program/erase fault rates against the
    // raw SSD simulator, with a power cycle and an FTL integrity audit at
    // the end of every cell.
    let rates: &[f64] = if smoke { &[0.0, 0.01] } else { &[0.0, 0.001, 0.01, 0.05] };
    let ops: u64 = if smoke { 2_000 } else { 20_000 };
    for &rate in rates {
        let mut dev = SsdDevice::new(SsdConfig { logical_bytes: 64 << 20, ..SsdConfig::default() });
        dev.precondition(0.5);
        dev.set_fault_plan(FaultPlan {
            seed: 0xEDC + (rate * 1e6) as u64,
            read_error_rate: rate,
            program_error_rate: rate,
            erase_error_rate: rate / 2.0,
            ..FaultPlan::none()
        });
        let (mut read_errs, mut write_errs) = (0u64, 0u64);
        let mut x = 0x243F_6A88_85A3_08D3u64;
        for i in 0..ops {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let offset = (x % (64 << 20)) & !4095;
            let kind = if i % 3 == 0 { IoKind::Read } else { IoKind::Write };
            match dev.try_submit(i * 20_000, kind, offset, 4096) {
                Ok(_) => {}
                Err(FaultError::ReadFault) => read_errs += 1,
                Err(FaultError::PowerCut { .. }) | Err(FaultError::PoweredOff) => {
                    dev.power_cycle();
                }
                Err(_) => write_errs += 1,
            }
        }
        if let Err(e) = dev.verify_integrity() {
            eprintln!("# FAIL: FTL integrity after rate {rate}: {e}");
            failures += 1;
        }
        // Power cycle and re-audit: volatile-state reset must not break
        // the FTL's mapping invariants either.
        dev.power_cycle();
        if let Err(e) = dev.verify_integrity() {
            eprintln!("# FAIL: FTL integrity after power cycle at rate {rate}: {e}");
            failures += 1;
        }
        let fs = dev.fault_stats();
        if rate == 0.0 && (read_errs + write_errs + fs.read_faults + fs.program_faults) > 0 {
            eprintln!("# FAIL: faults fired at zero rate");
            failures += 1;
        }
        let pct = (rate * 1e4) as u64; // basis points keep metric names stable
        h.metric(&format!("device_read_errors_bp{pct}"), read_errs as f64);
        h.metric(&format!("device_write_errors_bp{pct}"), write_errs as f64);
        h.metric(&format!("device_injected_read_faults_bp{pct}"), fs.read_faults as f64);
        h.metric(&format!("device_injected_program_faults_bp{pct}"), fs.program_faults as f64);
        h.metric(&format!("device_injected_erase_faults_bp{pct}"), fs.erase_faults as f64);
        h.metric(&format!("device_retired_blocks_bp{pct}"), dev.ftl_stats().retired_blocks as f64);
        eprintln!(
            "# device rate {rate}: injected {}/{}/{} read/program/erase faults, surfaced \
             {read_errs} read + {write_errs} write errors, {} retired blocks, integrity ok",
            fs.read_faults,
            fs.program_faults,
            fs.erase_faults,
            dev.ftl_stats().retired_blocks
        );
    }

    h.metric("cut_points", cuts as f64);
    h.metric("committed_runs_clean", committed_runs as f64);
    h.metric("page_programs_clean", total_programs as f64);
    h.metric("recovered_runs_total", replayed_total as f64);
    h.metric("recovered_cuts_pct", if total_programs == 0 { 100.0 } else {
        100.0 * (total_programs - recover_failures) as f64 / total_programs as f64
    });
    h.metric("data_loss_blocks", lost_total as f64);
    h.metric("data_loss_pct", if verified_total + lost_total == 0 { 0.0 } else {
        100.0 * lost_total as f64 / (verified_total + lost_total) as f64
    });
    h.metric("payload_mismatches", payload_mismatches as f64);
    h.metric("recovery_ns_mean", if cuts == 0 { 0.0 } else {
        (recovery_ns_sum / u128::from(cuts)) as f64
    });
    h.metric("recovery_ns_max", recovery_ns_max as f64);

    print!("{}", h.render());
    let path = h.write_json(out_dir).expect("writing BENCH_faults.json");
    eprintln!("# wrote {}", path.display());
    if failures > 0 {
        eprintln!("# fault campaign FAILED with {failures} violation(s)");
        std::process::exit(1);
    }
    eprintln!("# fault campaign passed: zero data loss across {cuts} power-cut points");
}

/// Structure-aware decoder fuzzing campaign: ≥100k seeded mutations of
/// valid codec/frame streams (5k under `--smoke`) driven through every
/// decoder behind a panic oracle. Writes `BENCH_fuzz.json`; exits
/// non-zero — printing each minimized crasher as pasteable Rust — if any
/// decode panics, overruns the expected length, or silently returns the
/// wrong size.
fn fuzz_cmd(smoke: bool, out_dir: &Path) {
    let total: u64 = if smoke { 5_000 } else { 120_000 };
    const SEED: u64 = 0xEDC_F002;
    eprintln!("# fuzz: {total} inputs, seed {SEED:#x}");
    let t0 = Instant::now();
    let report = edc_bench::fuzz::run_campaign(total, SEED);
    let elapsed = t0.elapsed().as_secs_f64();

    let mut h = Harness::new("fuzz", 1);
    h.metric("inputs", report.inputs as f64);
    h.metric("rejected", report.rejected as f64);
    h.metric("accepted", report.accepted as f64);
    h.metric("crashes", report.crashes.len() as f64);
    h.metric("inputs_per_sec", report.inputs as f64 / elapsed.max(1e-9));
    h.note(&format!("seed {SEED:#x}; every decode ran behind a panic/overrun oracle"));
    print!("{}", h.render());
    let path = h.write_json(out_dir).expect("writing BENCH_fuzz.json");
    eprintln!("# wrote {}", path.display());
    eprintln!(
        "# fuzz: {} inputs in {elapsed:.1}s — {} rejected, {} accepted, {} crash(es)",
        report.inputs,
        report.rejected,
        report.accepted,
        report.crashes.len()
    );
    if !report.passed() {
        let dir = out_dir.join("crashers");
        let _ = std::fs::create_dir_all(&dir);
        for (i, c) in report.crashes.iter().enumerate() {
            eprintln!("{}", edc_bench::fuzz::render_crash(c));
            // Persist the minimized stream too, so the crasher survives
            // scrollback and can be re-fed to the decoders directly.
            let p = dir.join(format!("fuzz_{i}.bin"));
            match std::fs::write(&p, &c.input) {
                Ok(()) => eprintln!("# crash input saved: {}", p.display()),
                Err(e) => eprintln!("# warn: cannot save {}: {e}", p.display()),
            }
        }
        eprintln!("# fuzz campaign FAILED: add the minimized streams above as regressions");
        std::process::exit(1);
    }
    eprintln!("# fuzz campaign passed: zero panics, overruns or wrong-length decodes");
}

/// Scrub/read-repair campaign: drive a parity-enabled pipeline workload,
/// arm per-access bit rot at a sweep of rates (each access rots at most
/// one bit of one page — the single-page-per-run model parity is built
/// for), scrub, and verify every block. Writes `BENCH_scrub.json`; exits
/// non-zero on any unrepaired loss.
fn scrub_campaign(smoke: bool, out_dir: &Path) {
    let runs: u64 = if smoke { 10 } else { 48 };
    let samples = if smoke { 3 } else { 5 };
    let rates: &[f64] = if smoke { &[0.0, 1.0] } else { &[0.0, 0.05, 0.25, 1.0] };
    let mk = || {
        EdcPipeline::new(8 << 20, PipelineConfig { parity: true, ..PipelineConfig::default() })
    };
    let mut h = Harness::new("scrub", samples);
    let mut failures = 0u64;

    for &rate in rates {
        let mut p = mk();
        let expect = campaign_drive(&mut p, runs).expect("clean drive cannot fault");
        p.set_fault_plan(FaultPlan {
            seed: 0xEDC4 + (rate * 100.0) as u64,
            bit_rot_rate: rate,
            ..FaultPlan::none()
        });
        let report = match p.scrub() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("# FAIL: scrub at rot rate {rate}: {e}");
                failures += 1;
                continue;
            }
        };
        // Disarm injection; verification reads must see healed data.
        p.set_fault_plan(FaultPlan::none());
        let (verified, lost) = campaign_verify(&mut p, &expect);
        let second = p.scrub().expect("quiescent scrub");
        if report.unrecoverable > 0 || lost > 0 {
            eprintln!(
                "# FAIL: rot rate {rate}: {} unrecoverable run(s), {lost} lost block(s)",
                report.unrecoverable
            );
            failures += 1;
        }
        if rate == 0.0 && report.repaired > 0 {
            eprintln!("# FAIL: zero rot rate repaired {} run(s)", report.repaired);
            failures += 1;
        }
        if second.clean != second.scanned {
            eprintln!("# FAIL: rot rate {rate}: second scrub pass not clean ({second:?})");
            failures += 1;
        }
        let pct = (rate * 100.0) as u64;
        h.metric(&format!("scanned_rot{pct}"), report.scanned as f64);
        h.metric(&format!("repaired_rot{pct}"), report.repaired as f64);
        h.metric(&format!("unrecoverable_rot{pct}"), report.unrecoverable as f64);
        h.metric(&format!("verified_blocks_rot{pct}"), verified as f64);
        h.metric(&format!("lost_blocks_rot{pct}"), lost as f64);
        eprintln!(
            "# rot rate {rate}: scanned {} clean {} repaired {} unrecoverable {} — \
             {verified} blocks verified, {lost} lost",
            report.scanned, report.clean, report.repaired, report.unrecoverable
        );
    }

    // Control: the same full-rot pass WITHOUT parity cannot self-heal —
    // the runs scrub unrecoverable. Demonstrates the parity page is what
    // buys the repair, not the scrub walk itself.
    let mut bare = EdcPipeline::new(8 << 20, PipelineConfig::default());
    let expect = campaign_drive(&mut bare, runs).expect("clean drive cannot fault");
    bare.set_fault_plan(FaultPlan { seed: 0xEDC5, bit_rot_rate: 1.0, ..FaultPlan::none() });
    let control = bare.scrub().expect("scrub without parity");
    bare.set_fault_plan(FaultPlan::none());
    let (_, control_lost) = campaign_verify(&mut bare, &expect);
    if control.unrecoverable == 0 {
        eprintln!("# FAIL: parity-less control healed itself — campaign proves nothing");
        failures += 1;
    }
    h.metric("control_noparity_unrecoverable", control.unrecoverable as f64);
    h.metric("control_noparity_lost_blocks", control_lost as f64);
    eprintln!(
        "# control (no parity, full rot): {} unrecoverable, {control_lost} lost block(s)",
        control.unrecoverable
    );

    // Timed scrub of a fully rotted store (every run needs a repair).
    h.run_prepared(
        "scrub_repair_full_rot",
        None,
        || {
            let mut p = mk();
            campaign_drive(&mut p, runs).expect("clean drive cannot fault");
            p.set_fault_plan(FaultPlan { seed: 0xEDC6, bit_rot_rate: 1.0, ..FaultPlan::none() });
            p
        },
        |mut p| {
            let report = p.scrub().expect("scrub");
            (report.repaired, p)
        },
    );

    print!("{}", h.render());
    let path = h.write_json(out_dir).expect("writing BENCH_scrub.json");
    eprintln!("# wrote {}", path.display());
    if failures > 0 {
        eprintln!("# scrub campaign FAILED with {failures} violation(s)");
        std::process::exit(1);
    }
    eprintln!("# scrub campaign passed: zero unrepaired loss at single-page-per-run rot");
}

/// Raw chunk content for the RAIS campaign: compressible text for most
/// `(row, pos)` slots, xorshift noise for every fourth, distinguished by
/// overwrite generation `generation`.
fn rais_chunk_content(chunk: usize, row: u64, pos: usize, generation: u64) -> Vec<u8> {
    let tag = row * 131 + pos as u64 * 17 + generation * 10_007;
    let mut out = Vec::with_capacity(chunk);
    while out.len() < chunk {
        if (row + pos as u64) % 4 == 3 {
            out.extend(campaign_noise_block(tag * 977 + 13));
        } else {
            out.extend(campaign_text_block(tag));
        }
    }
    out.truncate(chunk);
    out
}

/// What the RAIS campaign actually stores for `raw`: the Lzf stream when
/// it wins, the raw bytes when it doesn't (the pipeline's write-through
/// rule, so stored legs have genuinely variable compressed lengths).
fn rais_stored_form(raw: &[u8]) -> Vec<u8> {
    let lzf = edc_compress::codec_by_id(edc_compress::CodecId::Lzf).expect("lzf codec");
    let compressed = lzf.compress(raw);
    if compressed.len() < raw.len() {
        compressed
    } else {
        raw.to_vec()
    }
}

/// RAIS failure campaign (the elastic-RAIS tentpole gate): sweep
/// member-kill timing × bit-rot rate across RAIS0 (striping control) and
/// RAIS5 (compressed parity), checking that
///
/// 1. the RAIS5 sweep ends with **zero unrepaired loss** — every chunk
///    reads back bit-identical through rot repair, degraded service, and
///    online rebuild, and a sample of reconstructed legs round-trips
///    through the real Lzf decoder;
/// 2. RAIS0 loses data **loudly** — killed or rotted legs surface as
///    typed `Unrecoverable` errors, never silent garbage (and the control
///    must actually lose legs, or the sweep proves nothing);
/// 3. compressed parity writes strictly fewer device bytes than the
///    one-full-chunk-per-update control a compression-blind array pays;
/// 4. the paper's single-SSD trend (Fig. 11: compressed legs finish
///    device service faster than write-through legs) still holds on an
///    array that has been killed and rebuilt.
///
/// Gate outcomes are written as `gate0_*` metrics (must be exactly 0 in
/// a passing run — `check-bench` re-verifies committed baselines stay
/// that way). Writes `BENCH_rais.json`; exits non-zero on any gate
/// failure.
fn rais_campaign(smoke: bool, out_dir: &Path) {
    const MEMBERS: usize = 5;
    const CHUNK: u64 = 64 * 1024;
    let member_cfg = SsdConfig {
        logical_bytes: 4 << 20, // 64 rows per member
        overprovision: 0.25,
        sectors_per_block: 64,
        gc_low_watermark: 3,
        ..SsdConfig::default()
    };
    let rows_written: u64 = if smoke { 12 } else { 48 };
    let kill_fracs: &[f64] = if smoke { &[0.5] } else { &[0.25, 0.5, 0.75] };
    // Per-fetch corruption probabilities, armed on ONE member at a time
    // (`set_member_fault_plan`). That keeps the sweep in the survivable
    // single-failure-per-row regime by construction — array-wide rot can
    // corrupt two legs of one row between repairs, which is a genuine
    // double fault (the URE-during-rebuild scenario) and rightly
    // unrepairable, so the zero-loss gate would then depend on seed luck
    // instead of the redundancy argument.
    let rot_rates: &[f64] = if smoke { &[0.0, 0.5] } else { &[0.0, 0.2, 0.5] };
    let samples = if smoke { 3 } else { 5 };

    let mut h = Harness::new("rais", samples);
    let mut failures = 0u64;

    // Fill rows `[0, rows)` of `a` and record (raw, stored) per slot.
    let fill = |a: &mut RaisArray, rows: u64, now: &mut u64| -> Vec<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut expect = Vec::new();
        for row in 0..rows {
            let legs: Vec<(Vec<u8>, Vec<u8>)> = (0..a.data_width())
                .map(|pos| {
                    let raw = rais_chunk_content(CHUNK as usize, row, pos, 0);
                    let stored = rais_stored_form(&raw);
                    (raw, stored)
                })
                .collect();
            let refs: Vec<&[u8]> = legs.iter().map(|(_, s)| s.as_slice()).collect();
            *now += 1_000_000;
            a.write_row(*now, row, &refs).expect("foreground write_row");
            expect.push(legs);
        }
        expect
    };

    // ---- RAIS5: the zero-loss sweep -------------------------------------
    let mut unrepaired = 0u64;
    let mut mismatches = 0u64;
    let mut degraded_reads = 0u64;
    let mut rot_repaired = 0u64;
    let mut rebuilt_chunks = 0u64;
    let mut decoded_samples = 0u64;
    let mut parity_written = 0u64;
    let mut parity_control = 0u64;
    let mut virtual_over_exported = 0.0f64;
    let mut scenario_idx = 0u64;

    for &kill_frac in kill_fracs {
        for &rot in rot_rates {
            let idx = scenario_idx;
            scenario_idx += 1;
            let mut a = RaisArray::new(RaisLevel::Rais5, MEMBERS, member_cfg, CHUNK)
                .expect("campaign RAIS5 shape is valid");
            let mut now = 0u64;
            let dw = a.data_width();
            let kill_at = ((rows_written as f64 * kill_frac) as u64).clamp(1, rows_written - 1);

            // Healthy foreground writes up to the kill point.
            let mut expect = fill(&mut a, kill_at, &mut now);

            // Rot soak on the healthy prefix: arm sticky bit rot on one
            // member (a different one than the upcoming kill victim),
            // scrub (detect + repair from the row), disarm, then scrub
            // again — the quiescent pass must come back fully repaired.
            if rot > 0.0 {
                let rot_member = (idx as usize + 1) % MEMBERS;
                a.set_member_fault_plan(
                    rot_member,
                    FaultPlan { seed: 0xEDC_A150 + idx, bit_rot_rate: rot, ..FaultPlan::none() },
                )
                .expect("arm rot member");
                now += 1_000_000;
                let first = a.scrub(now).expect("rot scrub");
                a.set_member_fault_plan(rot_member, FaultPlan::none()).expect("disarm rot");
                now += 1_000_000;
                let second = a.scrub(now).expect("quiescent scrub");
                rot_repaired += first.repaired + second.repaired;
                unrepaired += second.unrepaired;
                if second.unrepaired > 0 {
                    eprintln!(
                        "# FAIL: scenario {idx} (kill@{kill_frac}, rot {rot}): \
                         {} leg(s) unrepaired after quiescent scrub",
                        second.unrepaired
                    );
                    failures += 1;
                }
            }

            // Kill one member; remaining foreground writes land degraded
            // (the victim's legs become parity-backed phantoms).
            let victim = idx as usize % MEMBERS;
            a.kill_member(victim).expect("kill victim");
            for row in kill_at..rows_written {
                let legs: Vec<(Vec<u8>, Vec<u8>)> = (0..dw)
                    .map(|pos| {
                        let raw = rais_chunk_content(CHUNK as usize, row, pos, 0);
                        let stored = rais_stored_form(&raw);
                        (raw, stored)
                    })
                    .collect();
                let refs: Vec<&[u8]> = legs.iter().map(|(_, s)| s.as_slice()).collect();
                now += 1_000_000;
                a.write_row(now, row, &refs).expect("degraded write_row");
                expect.push(legs);
            }

            // Full degraded verification: every chunk bit-identical, and
            // compressed legs must round-trip the real Lzf decoder.
            let mut verify = |a: &mut RaisArray,
                              expect: &[Vec<(Vec<u8>, Vec<u8>)>],
                              now: &mut u64,
                              phase: &str|
             -> (u64, u64) {
                let lzf =
                    edc_compress::codec_by_id(edc_compress::CodecId::Lzf).expect("lzf codec");
                let (mut loss, mut bad) = (0u64, 0u64);
                let mut decoded = 0u64;
                for (row, legs) in expect.iter().enumerate() {
                    for (pos, (raw, stored)) in legs.iter().enumerate() {
                        *now += 1_000_000;
                        match a.read_chunk(*now, row as u64, pos) {
                            Ok(read) => {
                                if &read.data != stored {
                                    eprintln!(
                                        "# FAIL: scenario {idx} {phase}: chunk ({row},{pos}) \
                                         not bit-identical"
                                    );
                                    bad += 1;
                                } else if stored.len() < raw.len() {
                                    // A genuinely compressed leg: prove the
                                    // served bytes still decode to the
                                    // original logical content.
                                    match lzf.decompress(&read.data, raw.len()) {
                                        Ok(back) if &back == raw => decoded += 1,
                                        _ => {
                                            eprintln!(
                                                "# FAIL: scenario {idx} {phase}: chunk \
                                                 ({row},{pos}) no longer decodes"
                                            );
                                            bad += 1;
                                        }
                                    }
                                }
                            }
                            Err(e) => {
                                eprintln!(
                                    "# FAIL: scenario {idx} {phase}: chunk ({row},{pos}): {e}"
                                );
                                loss += 1;
                            }
                        }
                    }
                }
                decoded_samples += decoded;
                (loss, bad)
            };
            let (l, b) = verify(&mut a, &expect, &mut now, "degraded");
            unrepaired += l;
            mismatches += b;
            failures += l + b;

            // Online rebuild: walk stripes in small steps with foreground
            // overwrites interleaved between steps.
            a.start_rebuild(victim).expect("start rebuild");
            let mut generation = 1u64;
            loop {
                now += 1_000_000;
                let step = a.rebuild_step(now, victim, 4).expect("rebuild step");
                rebuilt_chunks += step.reconstructed_chunks;
                if step.lost_chunks > 0 {
                    eprintln!(
                        "# FAIL: scenario {idx}: rebuild lost {} chunk(s)",
                        step.lost_chunks
                    );
                    unrepaired += step.lost_chunks;
                    failures += 1;
                }
                if step.done {
                    break;
                }
                // Foreground overwrite racing the rebuild walker.
                let row = (step.rows_done * 7 + idx) % rows_written;
                let pos = generation as usize % dw;
                let raw = rais_chunk_content(CHUNK as usize, row, pos, generation);
                let stored = rais_stored_form(&raw);
                now += 1_000_000;
                a.write_chunk(now, row, pos, &stored).expect("foreground during rebuild");
                expect[row as usize][pos] = (raw, stored);
                generation += 1;
            }
            if let Err(e) = a.verify_integrity() {
                eprintln!("# FAIL: scenario {idx}: integrity after rebuild: {e}");
                failures += 1;
                mismatches += 1;
            }
            let (l, b) = verify(&mut a, &expect, &mut now, "rebuilt");
            unrepaired += l;
            mismatches += b;
            failures += l + b;

            // Re-kill a *different* member: the rebuilt array must carry a
            // second, independent failure.
            let second = (victim + 2) % MEMBERS;
            a.kill_member(second).expect("kill second member");
            let (l, b) = verify(&mut a, &expect, &mut now, "re-killed");
            unrepaired += l;
            mismatches += b;
            failures += l + b;

            degraded_reads += a.repair_stats().degraded_reads;
            let cap = a.capacity();
            parity_written += cap.parity_bytes_written;
            parity_control += cap.parity_control_bytes;
            virtual_over_exported = virtual_over_exported
                .max(cap.virtual_bytes as f64 / cap.exported_bytes as f64);
        }
    }

    // ---- RAIS0 control: loss must be typed, never silent ----------------
    let mut rais0_typed = 0u64;
    let mut rais0_silent = 0u64;
    {
        let rot = *rot_rates.last().expect("at least one rot rate");
        let mut a = RaisArray::new(RaisLevel::Rais0, MEMBERS, member_cfg, CHUNK)
            .expect("campaign RAIS0 shape is valid");
        let mut now = 0u64;
        let expect = fill(&mut a, rows_written, &mut now);
        if rot > 0.0 {
            // Sticky rot with no redundancy: reads must fail typed.
            a.set_member_fault_plans(FaultPlan {
                seed: 0xEDC_A0A0,
                bit_rot_rate: rot,
                ..FaultPlan::none()
            });
        }
        a.kill_member(1).expect("kill RAIS0 member");
        for (row, legs) in expect.iter().enumerate() {
            for (pos, (_, stored)) in legs.iter().enumerate() {
                now += 1_000_000;
                match a.read_chunk(now, row as u64, pos) {
                    Ok(read) if &read.data == stored => {}
                    Ok(_) => {
                        eprintln!("# FAIL: RAIS0 served silent garbage at ({row},{pos})");
                        rais0_silent += 1;
                    }
                    Err(edc_flash::ArrayError::Unrecoverable { reason, .. }) => {
                        assert_eq!(reason, LossReason::NoRedundancy);
                        rais0_typed += 1;
                    }
                    Err(e) => {
                        eprintln!("# FAIL: RAIS0 unexpected error at ({row},{pos}): {e}");
                        rais0_silent += 1;
                    }
                }
            }
        }
        if rais0_typed == 0 {
            eprintln!("# FAIL: RAIS0 control lost nothing — the sweep proves nothing");
            failures += 1;
        }
        failures += rais0_silent;
    }

    // ---- Fig. 11 trend on a rebuilt array -------------------------------
    // Compressed legs must still finish device service faster than
    // write-through legs after a kill + online rebuild (the single-SSD
    // "compression shortens reads" trend surviving redundancy repair).
    let trend_violation = {
        let mut a = RaisArray::new(RaisLevel::Rais5, MEMBERS, member_cfg, CHUNK)
            .expect("trend RAIS5 shape is valid");
        let mut now = 0u64;
        let _ = fill(&mut a, rows_written.min(8), &mut now);
        a.kill_member(3).expect("kill");
        now += 1_000_000;
        let progress = a.rebuild(now, 3).expect("trend rebuild");
        assert!(progress.done && progress.lost_chunks == 0, "trend rebuild must be clean");
        // One row of tiny compressed legs, one row of write-through legs.
        let small = rais_stored_form(&rais_chunk_content(CHUNK as usize, 0, 0, 9));
        assert!(small.len() < CHUNK as usize / 2, "text chunk must compress well");
        let raw: Vec<u8> = rais_chunk_content(CHUNK as usize, 3, 0, 9);
        let dw = a.data_width();
        let small_row: Vec<&[u8]> = (0..dw).map(|_| small.as_slice()).collect();
        let raw_row: Vec<&[u8]> = (0..dw).map(|_| raw.as_slice()).collect();
        now += 1_000_000;
        a.write_row(now, 0, &small_row).expect("compressed row");
        now += 1_000_000;
        a.write_row(now, 1, &raw_row).expect("write-through row");
        let mut mean = |row: u64, now: &mut u64| -> f64 {
            let mut total = 0u64;
            let mut n = 0u64;
            for pass in 0..4u64 {
                for pos in 0..dw {
                    *now += 1_000_000 * (pass + 1);
                    let read = a.read_chunk(*now, row, pos).expect("trend read");
                    total += read.completion.finish_ns - read.completion.start_ns;
                    n += 1;
                }
            }
            total as f64 / n as f64
        };
        let compressed_ns = mean(0, &mut now);
        let through_ns = mean(1, &mut now);
        h.metric("trend_compressed_read_ns", compressed_ns);
        h.metric("trend_writethrough_read_ns", through_ns);
        eprintln!(
            "# rebuilt-array trend: compressed leg {compressed_ns:.0} ns vs \
             write-through {through_ns:.0} ns"
        );
        if compressed_ns < through_ns {
            0.0
        } else {
            failures += 1;
            eprintln!("# FAIL: compressed legs no longer faster on the rebuilt array");
            1.0
        }
    };

    // ---- Timed cases (check-bench throughput tripwire) ------------------
    let make_killed = || {
        let mut a = RaisArray::new(RaisLevel::Rais5, MEMBERS, member_cfg, CHUNK)
            .expect("timed RAIS5 shape is valid");
        let mut now = 0u64;
        let expect = fill(&mut a, rows_written, &mut now);
        a.kill_member(2).expect("kill");
        (a, expect, now)
    };
    let logical = rows_written * (MEMBERS as u64 - 1) * CHUNK;
    h.run_prepared(
        "degraded_read_sweep",
        Some(logical),
        make_killed,
        |(mut a, expect, mut now)| {
            let mut served = 0u64;
            for (row, legs) in expect.iter().enumerate() {
                for pos in 0..legs.len() {
                    now += 1_000_000;
                    served += a.read_chunk(now, row as u64, pos).expect("timed read").data.len()
                        as u64;
                }
            }
            (served, a)
        },
    );
    h.run_prepared(
        "rebuild_member_online",
        Some(rows_written * CHUNK),
        make_killed,
        |(mut a, _, mut now)| {
            now += 1_000_000;
            let progress = a.rebuild(now, 2).expect("timed rebuild");
            assert!(progress.done);
            (progress.reconstructed_bytes, a)
        },
    );

    // ---- Gate metrics (gate0_* must be exactly 0 in a passing run) ------
    let parity_gate = if parity_written < parity_control { 0.0 } else { 1.0 };
    if parity_gate > 0.0 {
        eprintln!(
            "# FAIL: compressed parity wrote {parity_written} B, not below the \
             uncompressed control {parity_control} B"
        );
        failures += 1;
    }
    h.metric("gate0_unrepaired_loss", unrepaired as f64);
    h.metric("gate0_degraded_mismatches", mismatches as f64);
    h.metric("gate0_rais0_silent_corruption", rais0_silent as f64);
    h.metric("gate0_parity_not_below_control", parity_gate);
    h.metric("gate0_trend_violation", trend_violation);
    h.metric("rais5_scenarios", scenario_idx as f64);
    h.metric("degraded_reads", degraded_reads as f64);
    h.metric("rot_repaired_legs", rot_repaired as f64);
    h.metric("rebuilt_chunks", rebuilt_chunks as f64);
    h.metric("lzf_decoded_samples", decoded_samples as f64);
    h.metric("rais0_typed_losses", rais0_typed as f64);
    h.metric("parity_written_mib", parity_written as f64 / (1 << 20) as f64);
    h.metric("parity_control_mib", parity_control as f64 / (1 << 20) as f64);
    h.metric("virtual_over_exported", virtual_over_exported);
    if rot_rates.iter().any(|&r| r > 0.0) && rot_repaired == 0 {
        eprintln!("# FAIL: rot scenarios repaired nothing — injection never fired");
        failures += 1;
    }
    if decoded_samples == 0 {
        eprintln!("# FAIL: no compressed leg was decode-verified");
        failures += 1;
    }

    eprintln!(
        "# RAIS5 sweep: {scenario_idx} scenario(s), {degraded_reads} degraded read(s), \
         {rot_repaired} rot repair(s), {rebuilt_chunks} rebuilt chunk(s), \
         {decoded_samples} Lzf decode proof(s), {unrepaired} unrepaired, \
         {mismatches} mismatch(es)"
    );
    eprintln!(
        "# RAIS0 control: {rais0_typed} typed loss(es), {rais0_silent} silent corruption(s)"
    );
    eprintln!(
        "# parity bytes: compressed {parity_written} < control {parity_control} \
         ({:.2}x); peak virtual/exported {virtual_over_exported:.2}x",
        parity_control as f64 / parity_written.max(1) as f64
    );

    print!("{}", h.render());
    let path = h.write_json(out_dir).expect("writing BENCH_rais.json");
    eprintln!("# wrote {}", path.display());
    if failures > 0 {
        eprintln!("# rais campaign FAILED with {failures} violation(s)");
        std::process::exit(1);
    }
    eprintln!(
        "# rais campaign passed: zero unrepaired loss across the kill x rot sweep, \
         compressed parity below control, trend intact on the rebuilt array"
    );
}

/// Re-record the fault campaign's schedule for one power-cut point as a
/// self-contained `.edcrr` artifact: the same writes/overwrite/flushes,
/// then recovery and a full read-back sweep, all dispatched through a
/// [`Recorder`] against a store whose spec arms the cut. The saved log
/// replays bit-exactly with `edc-bench replay` — and starts diverging
/// the moment the engine's behaviour at that cut point changes.
fn campaign_artifact(cut: u64, runs: u64) -> Recorder {
    let spec = StoreSpec {
        capacity_bytes: 8 << 20,
        shards: 0,
        fault: FaultPlan { power_cut_after_programs: Some(cut), ..FaultPlan::none() },
        ..StoreSpec::default()
    };
    let mut store = spec.build();
    let mut rec = Recorder::new(spec);
    let mut clock = ManualClock::new(0, 1);
    let mut ops: Vec<Op> = Vec::new();
    for i in 0..runs {
        let mut data = if i % 4 == 3 {
            campaign_noise_block(i * 977 + 13)
        } else {
            campaign_text_block(i)
        };
        data.extend(campaign_text_block(i + 1000));
        ops.push(Op::Write { offset: (i * 3) * 4096, data });
    }
    ops.push(Op::Flush);
    let mut v2 = campaign_text_block(7777);
    v2.extend(campaign_text_block(8888));
    ops.push(Op::Write { offset: 0, data: v2 });
    ops.push(Op::Flush);
    ops.push(Op::Recover);
    for i in 0..runs {
        ops.push(Op::Read { offset: (i * 3) * 4096, len: 2 * 4096 });
    }
    ops.push(Op::Stats);
    for op in &ops {
        rec.apply(store.as_mut(), &mut clock, op);
    }
    rec
}

/// Save a crash artifact under `<out_dir>/crashers/`, logging where it
/// went (best-effort: artifact I/O must never mask the original failure).
fn save_crash_artifact(rec: &Recorder, out_dir: &Path, name: &str) {
    let dir = out_dir.join("crashers");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("# warn: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match rec.save(&path) {
        Ok(()) => eprintln!(
            "# crash artifact: {} ({} ops; `edc-bench replay {}`)",
            path.display(),
            rec.ops(),
            path.display()
        ),
        Err(e) => eprintln!("# warn: cannot save {}: {e}", path.display()),
    }
}

/// `edc-bench replay <log.edcrr>...` — re-execute recorded op logs
/// against freshly built stores and diff every output digest. Exits 0
/// only when every log replays bit-exactly (no divergence, no torn
/// tail); prints each divergence otherwise.
fn replay_cmd(paths: &[PathBuf]) {
    if paths.is_empty() {
        eprintln!("usage: edc-bench replay <log.edcrr> [more.edcrr ...]");
        std::process::exit(2);
    }
    let mut failures = 0u64;
    for path in paths {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("# FAIL: {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        match Replayer::replay(&bytes) {
            Ok(report) if report.is_exact() => {
                eprintln!("# {}: {} op(s) replayed bit-exactly", path.display(), report.ops);
            }
            Ok(report) => {
                if report.torn_tail {
                    eprintln!(
                        "# FAIL: {}: torn tail after {} intact op(s)",
                        path.display(),
                        report.ops
                    );
                }
                for d in &report.divergences {
                    eprintln!("# FAIL: {}: {d}", path.display());
                }
                eprintln!(
                    "# FAIL: {}: {} divergence(s) across {} op(s)",
                    path.display(),
                    report.divergences.len(),
                    report.ops
                );
                failures += 1;
            }
            Err(e) => {
                eprintln!("# FAIL: {}: {e}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("# replay FAILED: {failures} of {} log(s) diverged", paths.len());
        std::process::exit(1);
    }
    eprintln!("# replay passed: {} log(s) bit-exact", paths.len());
}

/// `edc-bench record-golden <path>` — record a deterministic mixed op
/// schedule (writes, batches, hints, faults, a power cut, recovery,
/// scrub, recompression, journal truncation) against a 2-shard parity
/// store and save it as a golden `.edcrr` fixture. Used once to generate
/// the committed fixture under `tests/fixtures/`; kept for regeneration
/// whenever the engine's observable behaviour intentionally changes.
fn record_golden(path: &Path) {
    use edc_core::FileTypeHint;
    let spec = StoreSpec {
        capacity_bytes: 16 << 20,
        shards: 2,
        extent_blocks: 8,
        workers: 2,
        cache_runs: 16,
        parity: true,
        dedup: true,
        // Writes land on the fast (Lzf) rung so the recompression passes
        // below have a stronger codec to upgrade cold runs to — the same
        // shape the heat and dedup benches drive. The paper-default
        // elastic ladder would store this trickle of writes at Deflate
        // (calculated IOPS ≈ 0) and leave the passes nothing to do.
        fast_ladder: true,
        ..StoreSpec::default()
    };
    let mut store = spec.build();
    let mut rec = Recorder::new(spec);
    // 2 ms/op, the heat bench's steady mid-ladder cadence.
    let mut clock = ManualClock::new(0, 2_000_000);
    let mut ops: Vec<Op> = Vec::new();
    ops.push(Op::SetHint { offset: 0, len: 64 * 4096, hint: FileTypeHint::Text });
    for i in 0..12u64 {
        let mut data = if i % 5 == 4 {
            campaign_noise_block(i * 31 + 7)
        } else {
            campaign_text_block(i)
        };
        data.extend(campaign_text_block(i + 100));
        ops.push(Op::Write { offset: i * 3 * 4096, data });
    }
    ops.push(Op::WriteBatch {
        writes: (0..4u64)
            .map(|i| ((40 + i * 3) * 4096, campaign_text_block(200 + i)))
            .collect(),
    });
    ops.push(Op::Flush);
    for i in [0u64, 3, 7, 11] {
        ops.push(Op::Read { offset: i * 3 * 4096, len: 2 * 4096 });
    }
    ops.push(Op::Stats);
    // Arm bit rot, overwrite, scrub it clean, then recompress the lot.
    ops.push(Op::SetFaultPlan(FaultPlan {
        seed: 0xEDC_601D,
        bit_rot_rate: 0.02,
        ..FaultPlan::none()
    }));
    ops.push(Op::Write { offset: 0, data: campaign_text_block(7777) });
    ops.push(Op::Flush);
    ops.push(Op::Scrub);
    ops.push(Op::RecompressPass {
        target: edc_compress::CodecId::Deflate,
        max_rewrites: u64::MAX,
    });
    ops.push(Op::Verify);
    // Yank the cord, recover, tear one shard's journal, recover again.
    ops.push(Op::PowerCut);
    ops.push(Op::Read { offset: 0, len: 4096 });
    ops.push(Op::Recover);
    ops.push(Op::TruncateJournal { shard: 1, bytes: 64 });
    ops.push(Op::Recover);
    for i in 0..12u64 {
        ops.push(Op::Read { offset: i * 3 * 4096, len: 2 * 4096 });
    }
    ops.push(Op::Stats);
    for op in &ops {
        rec.apply(store.as_mut(), &mut clock, op);
    }
    // Dedup phase: three copies of one 4-block payload (two dedup hits),
    // a full overwrite releasing the first reference, then a long idle
    // gap so the cooled recompression pass relocates the still-shared run
    // and re-points its surviving referrers through journaled Ref
    // records. ACGT noise (as in the heat bench) so the Deflate rewrite
    // has pages to reclaim over the Lzf-stored original; blocks 64, 80
    // and 96 start even-numbered extents, keeping all three runs unsplit
    // on shard 0 — the per-shard dedup index only links runs it owns.
    let dup = heat_block(999, 0);
    let run_bytes = dup.len() as u64;
    for off in [64u64, 80, 96] {
        rec.apply(
            store.as_mut(),
            &mut clock,
            &Op::Write { offset: off * 4096, data: dup.clone() },
        );
    }
    rec.apply(store.as_mut(), &mut clock, &Op::Flush);
    let shared = match rec.apply(store.as_mut(), &mut clock, &Op::VerifyDedup) {
        edc_core::OpOutput::Dedup(r) => r,
        other => panic!("verify_dedup failed while recording: {other:?}"),
    };
    assert!(shared.extra_refs >= 2, "fixture must capture dedup hits: {shared:?}");
    rec.apply(
        store.as_mut(),
        &mut clock,
        &Op::Write { offset: 64 * 4096, data: heat_block(4242, 1) },
    );
    rec.apply(store.as_mut(), &mut clock, &Op::Flush);
    rec.apply(store.as_mut(), &mut clock, &Op::VerifyDedup);
    clock.advance(400_000_000_000);
    let pass = match rec.apply(
        store.as_mut(),
        &mut clock,
        &Op::RecompressPass { target: edc_compress::CodecId::Deflate, max_rewrites: u64::MAX },
    ) {
        edc_core::OpOutput::Recompress(r) => r,
        other => panic!("recompress failed while recording: {other:?}"),
    };
    assert!(pass.recompressed > 0, "fixture must capture a relocation: {pass:?}");
    assert!(pass.skipped_shared == 0, "the shared run must relocate, not be skipped: {pass:?}");
    let after = match rec.apply(store.as_mut(), &mut clock, &Op::VerifyDedup) {
        edc_core::OpOutput::Dedup(r) => r,
        other => panic!("verify_dedup failed while recording: {other:?}"),
    };
    assert!(after.shared_runs >= 1, "sharing must survive relocation: {after:?}");
    for off in [64u64, 80, 96] {
        rec.apply(store.as_mut(), &mut clock, &Op::Read { offset: off * 4096, len: run_bytes });
    }
    rec.apply(store.as_mut(), &mut clock, &Op::Scrub);
    rec.apply(store.as_mut(), &mut clock, &Op::Stats);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("fixture dir");
    }
    rec.save(path).expect("saving golden log");
    eprintln!("# recorded {} op(s) ({} bytes) into {}", rec.ops(), rec.bytes().len(), path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let out_value_idx = args.iter().position(|a| a == "--out").map(|i| i + 1);
    let operands: Vec<(usize, String)> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && Some(*i) != out_value_idx)
        .map(|(i, a)| (i, a.clone()))
        .collect();
    let cmd = operands.first().map(|(_, a)| a.clone()).unwrap_or_else(|| "all".to_string());

    if cmd == "replay" {
        let paths: Vec<PathBuf> =
            operands.iter().skip(1).map(|(_, a)| PathBuf::from(a)).collect();
        replay_cmd(&paths);
        return;
    }
    if cmd == "record-golden" {
        let Some((_, path)) = operands.get(1) else {
            eprintln!("usage: edc-bench record-golden <path.edcrr>");
            std::process::exit(2);
        };
        record_golden(Path::new(path));
        return;
    }

    // The pipeline micro-bench and fault campaign need no trace
    // environment; run them before the (expensive) ExperimentEnv
    // construction.
    if cmd == "bench-pipeline" {
        bench_pipeline(quick, &out_dir);
        return;
    }
    if cmd == "bench-concurrency" {
        let smoke = quick || args.iter().any(|a| a == "--smoke");
        bench_concurrency(smoke, &out_dir);
        return;
    }
    if cmd == "bench-codecs" {
        let smoke = quick || args.iter().any(|a| a == "--smoke");
        bench_codecs(smoke, &out_dir);
        return;
    }
    if cmd == "fault-campaign" {
        let smoke = quick || args.iter().any(|a| a == "--smoke");
        fault_campaign(smoke, &out_dir);
        return;
    }
    if cmd == "fuzz" {
        let smoke = quick || args.iter().any(|a| a == "--smoke");
        fuzz_cmd(smoke, &out_dir);
        return;
    }
    if cmd == "scrub-campaign" {
        let smoke = quick || args.iter().any(|a| a == "--smoke");
        scrub_campaign(smoke, &out_dir);
        return;
    }
    if cmd == "rais-campaign" {
        let smoke = quick || args.iter().any(|a| a == "--smoke");
        rais_campaign(smoke, &out_dir);
        return;
    }
    if cmd == "bench-heat" {
        let smoke = quick || args.iter().any(|a| a == "--smoke");
        bench_heat(smoke, &out_dir);
        return;
    }
    if cmd == "bench-dedup" {
        let smoke = quick || args.iter().any(|a| a == "--smoke");
        bench_dedup(smoke, &out_dir);
        return;
    }
    if cmd == "check-bench" {
        let dir_arg = |flag: &str, default: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from(default))
        };
        check_bench(&dir_arg("--baseline", "results-baseline"), &dir_arg("--fresh", "results"));
        return;
    }

    let started = Instant::now();
    eprintln!("# edc-bench: building environment (quick={quick}) ...");
    let env = ExperimentEnv::new(quick);
    eprintln!("# environment ready in {:.1}s", started.elapsed().as_secs_f64());

    let emit = |t: &Table, name: &str| {
        t.write_csv(&out_dir, name).unwrap_or_else(|e| panic!("writing {name}.csv: {e}"));
        println!("{}", t.render());
    };

    let run_fig1 = || emit(&ex::fig1(&env), "fig1");
    let run_fig2 = || emit(&ex::fig2(quick), "fig2");
    let run_fig3 = || {
        let (series, summary) = ex::fig3(&env);
        series.write_csv(&out_dir, "fig3").expect("fig3.csv");
        println!("{}", summary.render());
        println!("(full per-second series written to fig3.csv)\n");
    };
    let run_table1 = || emit(&ex::table1(&env), "table1");
    let run_table2 = || emit(&ex::table2(&env), "table2");
    let run_single = || {
        eprintln!("# replaying scheme x trace matrix on a single SSD ...");
        let t0 = Instant::now();
        let cells = env.run_matrix(Platform::SingleSsd);
        eprintln!("# matrix done in {:.1}s", t0.elapsed().as_secs_f64());
        emit(&ex::fig8(&cells, &env), "fig8");
        emit(&ex::fig9(&cells, &env), "fig9");
        emit(
            &ex::fig_response(&cells, &env, "Fig.10  Avg response time, single SSD (normalized to Native = 1.0)"),
            "fig10",
        );
        emit(&ex::rw_breakdown(&cells, &env), "rw_breakdown");
    };
    let run_fig11 = || {
        eprintln!("# replaying scheme x trace matrix on RAIS5 ...");
        let t0 = Instant::now();
        let cells = env.run_matrix(Platform::Rais5);
        eprintln!("# matrix done in {:.1}s", t0.elapsed().as_secs_f64());
        emit(
            &ex::fig_response(&cells, &env, "Fig.11  Avg response time, RAIS5 (normalized to Native = 1.0)"),
            "fig11",
        );
    };
    let run_fig12 = || emit(&ex::fig12(&env), "fig12");
    let run_ablations = || {
        emit(&ex::ablate_sd(&env), "ablate_sd");
        emit(&ex::ablate_alloc(&env), "ablate_alloc");
        emit(&ex::ablate_threshold(&env), "ablate_threshold");
        emit(&ex::ablate_ladder(&env), "ablate_ladder");
        emit(&ex::ablate_feedback(&env), "ablate_feedback");
        emit(&ex::ablate_cache(&env), "ablate_cache");
        emit(&ex::ablate_nvram(&env), "ablate_nvram");
    };
    let run_future_work = || {
        emit(&ex::endurance(&env), "endurance");
        emit(&ex::energy(&env), "energy");
        emit(&ex::hdd(&env), "hdd");
    };
    let run_mixed = || emit(&ex::mixed(&env), "mixed");
    let run_calibrate = || emit(&ex::calibrate(quick), "calibrate");
    let run_timeline = || {
        let t = ex::timeline(&env);
        t.write_csv(&out_dir, "timeline").expect("timeline.csv");
        println!("== {} == ({} rows written to timeline.csv)\n", t.title, t.len());
    };

    match cmd.as_str() {
        "fig1" => run_fig1(),
        "fig2" => run_fig2(),
        "fig3" => run_fig3(),
        "table1" => run_table1(),
        "table2" => run_table2(),
        "fig8" | "fig9" | "fig10" => run_single(),
        "fig11" => run_fig11(),
        "fig12" => run_fig12(),
        "ablations" => run_ablations(),
        "endurance" | "energy" | "hdd" | "future-work" => run_future_work(),
        "timeline" => run_timeline(),
        "mixed" => run_mixed(),
        "calibrate" => run_calibrate(),
        "all" => {
            run_table1();
            run_table2();
            run_fig1();
            run_fig2();
            run_fig3();
            run_single();
            run_fig11();
            run_fig12();
            run_ablations();
            run_future_work();
            run_timeline();
            run_mixed();
            run_calibrate();
        }
        other => {
            eprintln!("unknown command {other:?}");
            eprintln!("commands: fig1 fig2 fig3 table1 table2 fig8 fig9 fig10 fig11 fig12 ablations future-work timeline mixed calibrate bench-pipeline bench-concurrency bench-codecs bench-heat bench-dedup check-bench fault-campaign fuzz scrub-campaign rais-campaign replay record-golden all");
            std::process::exit(2);
        }
    }
    eprintln!("# total {:.1}s; CSVs in {}", started.elapsed().as_secs_f64(), out_dir.display());
}
