//! Dependency-free micro-benchmark harness.
//!
//! The workspace builds offline, so instead of `criterion` the in-tree
//! benches use this: median-of-N wall-clock timing over
//! [`std::time::Instant`], an optional per-iteration setup closure that
//! stays outside the timed region, throughput derivation from a bytes
//! count, and hand-rolled JSON output (no serde) for machine consumption
//! under `results/`.
//!
//! ```
//! use edc_bench::harness::Harness;
//!
//! let mut h = Harness::new("example", 5);
//! h.run("sum", || (0..1000u64).sum::<u64>());
//! println!("{}", h.render());
//! ```

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Timing of one benchmark case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case name.
    pub name: String,
    /// All wall-clock samples, ns, in run order.
    pub samples_ns: Vec<u64>,
    /// Median sample, ns — the headline number.
    pub median_ns: u64,
    /// Fastest sample, ns.
    pub min_ns: u64,
    /// Slowest sample, ns.
    pub max_ns: u64,
    /// Bytes processed per iteration, when the case declared them.
    pub bytes_per_iter: Option<u64>,
}

impl CaseResult {
    /// Throughput in MiB/s from the median sample (None without a bytes
    /// count or with a zero-time median).
    pub fn throughput_mib_s(&self) -> Option<f64> {
        let bytes = self.bytes_per_iter?;
        if self.median_ns == 0 {
            return None;
        }
        Some(bytes as f64 / (1 << 20) as f64 / (self.median_ns as f64 * 1e-9))
    }
}

/// A named collection of benchmark cases plus free-form scalar metrics.
#[derive(Debug)]
pub struct Harness {
    /// Suite name (becomes the JSON `suite` field).
    pub name: String,
    samples: u32,
    results: Vec<CaseResult>,
    metrics: Vec<(String, f64)>,
    notes: Vec<String>,
    series: Vec<(String, Vec<(u64, f64)>)>,
}

impl Harness {
    /// A suite taking `samples` timed samples per case (after one
    /// untimed warm-up run). The median of the samples is reported.
    pub fn new(name: &str, samples: u32) -> Self {
        assert!(samples > 0, "at least one sample");
        Harness {
            name: name.to_string(),
            samples,
            results: Vec::new(),
            metrics: Vec::new(),
            notes: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Time `routine` without setup. Returns the recorded case.
    pub fn run<T>(&mut self, name: &str, mut routine: impl FnMut() -> T) -> &CaseResult {
        self.run_prepared(name, None, || (), |()| routine())
    }

    /// Time `routine` with a declared bytes-per-iteration count so the
    /// report can show throughput.
    pub fn run_bytes<T>(
        &mut self,
        name: &str,
        bytes_per_iter: u64,
        mut routine: impl FnMut() -> T,
    ) -> &CaseResult {
        self.run_prepared(name, Some(bytes_per_iter), || (), |()| routine())
    }

    /// Time `routine(state)` where `state = setup()` runs before every
    /// sample, *outside* the timed region — the equivalent of criterion's
    /// `iter_batched`. Use it when the routine consumes or mutates state
    /// (e.g. a pipeline that must be rebuilt per sample).
    pub fn run_prepared<S, T>(
        &mut self,
        name: &str,
        bytes_per_iter: Option<u64>,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) -> &CaseResult {
        // Warm-up: populate caches/allocators, untimed.
        std::hint::black_box(routine(setup()));
        let mut samples_ns = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let state = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(state));
            samples_ns.push(t0.elapsed().as_nanos() as u64);
        }
        let mut sorted = samples_ns.clone();
        sorted.sort_unstable();
        let case = CaseResult {
            name: name.to_string(),
            median_ns: sorted[sorted.len() / 2],
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
            samples_ns,
            bytes_per_iter,
        };
        self.results.push(case);
        self.results.last().expect("just pushed")
    }

    /// Record a case from externally collected wall-clock samples — for
    /// protocols the closure-driven runners can't express, such as
    /// interleaving two arms' samples to cancel machine drift.
    pub fn record_case(
        &mut self,
        name: &str,
        samples_ns: Vec<u64>,
        bytes_per_iter: Option<u64>,
    ) -> &CaseResult {
        assert!(!samples_ns.is_empty(), "at least one sample");
        let mut sorted = samples_ns.clone();
        sorted.sort_unstable();
        let case = CaseResult {
            name: name.to_string(),
            median_ns: sorted[sorted.len() / 2],
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
            samples_ns,
            bytes_per_iter,
        };
        self.results.push(case);
        self.results.last().expect("just pushed")
    }

    /// Attach a derived scalar (a speedup, a hit rate) to the report.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Attach a free-form annotation that travels with the report (e.g.
    /// "workers oversubscribe the 1 available CPU; speedup < 1 expected").
    /// Notes land in both the rendered text and the JSON `notes` array, so
    /// a surprising number is never silently reported without its context.
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_string());
    }

    /// Attach a named trajectory series — `(t_ns, value)` points in
    /// chronological order, e.g. the samples drained from an
    /// `edc_core::TieredSeries` at the end of a soak run. Series land in
    /// the JSON report under a dedicated `series` section so dashboards
    /// can plot how a metric moved over the run, not just where it ended.
    pub fn series(&mut self, name: &str, points: impl IntoIterator<Item = (u64, f64)>) {
        self.series.push((name.to_string(), points.into_iter().collect()));
    }

    /// All recorded cases, in run order.
    pub fn results(&self) -> &[CaseResult] {
        &self.results
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!("== bench {} == (median of {} samples)\n", self.name, self.samples);
        for r in &self.results {
            out.push_str(&format!(
                "  {:<40} median {:>12.3} ms  (min {:.3}, max {:.3})",
                r.name,
                r.median_ns as f64 / 1e6,
                r.min_ns as f64 / 1e6,
                r.max_ns as f64 / 1e6,
            ));
            if let Some(t) = r.throughput_mib_s() {
                out.push_str(&format!("  {t:>8.1} MiB/s"));
            }
            out.push('\n');
        }
        for (k, v) in &self.metrics {
            out.push_str(&format!("  {k:<40} {v:.4}\n"));
        }
        for (name, points) in &self.series {
            out.push_str(&format!("  series {name:<33} {} points", points.len()));
            if let (Some(first), Some(last)) = (points.first(), points.last()) {
                out.push_str(&format!("  ({:.4} -> {:.4})", first.1, last.1));
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// The report as a JSON document (hand-rolled; the workspace has no
    /// serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"suite\": {},\n", json_str(&self.name)));
        s.push_str(&format!("  \"samples_per_case\": {},\n", self.samples));
        s.push_str("  \"cases\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"name\": {}, ", json_str(&r.name)));
            s.push_str(&format!("\"median_ns\": {}, ", r.median_ns));
            s.push_str(&format!("\"min_ns\": {}, ", r.min_ns));
            s.push_str(&format!("\"max_ns\": {}, ", r.max_ns));
            if let Some(b) = r.bytes_per_iter {
                s.push_str(&format!("\"bytes_per_iter\": {b}, "));
            }
            if let Some(t) = r.throughput_mib_s() {
                s.push_str(&format!("\"throughput_mib_s\": {t:.3}, "));
            }
            s.push_str(&format!(
                "\"samples_ns\": [{}]}}",
                r.samples_ns.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
            ));
            s.push_str(if i + 1 == self.results.len() { "\n" } else { ",\n" });
        }
        s.push_str("  ],\n");
        s.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("{}: {}", json_str(k), json_num(*v)));
        }
        s.push_str("},\n");
        // Trajectory series keep `name` on their own line *without* a
        // throughput field, so the line-based regression parser in
        // `check_bench` never mistakes a series for a timed case.
        s.push_str("  \"series\": {");
        for (i, (name, points)) in self.series.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: [", json_str(name)));
            for (j, (t_ns, value)) in points.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("{{\"t_ns\": {t_ns}, \"value\": {}}}", json_num(*value)));
            }
            s.push(']');
        }
        if !self.series.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n");
        s.push_str("  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(n));
        }
        s.push_str("]\n}\n");
        s
    }

    /// Write the JSON report to `dir/BENCH_<name>.json`, creating `dir`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }
}

/// JSON string literal (the names used here never need exotic escapes,
/// but quote/backslash/control handling keeps the output always valid).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: finite floats as-is, non-finite as null (JSON has no NaN).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_requested_sample_count() {
        let mut h = Harness::new("t", 7);
        let r = h.run("noop", || 1 + 1);
        assert_eq!(r.samples_ns.len(), 7);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
    }

    #[test]
    fn setup_runs_outside_timed_region() {
        // Untestable directly without clock control; assert the plumbing:
        // setup runs once per sample plus the warm-up.
        let mut setups = 0u32;
        let mut h = Harness::new("t", 3);
        h.run_prepared("case", None, || setups += 1, |()| ());
        assert_eq!(setups, 4);
    }

    #[test]
    fn throughput_derives_from_bytes() {
        let mut h = Harness::new("t", 3);
        let r = h.run_bytes("copy", 1 << 20, || vec![0u8; 1 << 20]);
        assert_eq!(r.bytes_per_iter, Some(1 << 20));
        assert!(r.throughput_mib_s().unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut h = Harness::new("suite \"x\"", 2);
        h.run("a", || ());
        h.metric("speedup", 2.5);
        h.metric("nan", f64::NAN);
        h.note("ran with \"reduced\" load");
        let j = h.to_json();
        assert!(j.contains("\"suite \\\"x\\\"\""));
        assert!(j.contains("\"speedup\": 2.500000"));
        assert!(j.contains("\"nan\": null"));
        assert!(j.contains("\"notes\": [\"ran with \\\"reduced\\\" load\"]"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn series_lands_in_json_and_render() {
        let mut h = Harness::new("t", 2);
        h.run("a", || ());
        h.series("live_bytes", vec![(0, 1.0), (1_000, 2.5), (2_000, f64::NAN)]);
        let j = h.to_json();
        assert!(j.contains("\"series\": {"));
        assert!(j.contains("\"live_bytes\": [{\"t_ns\": 0, \"value\": 1.000000}"));
        assert!(j.contains("{\"t_ns\": 2000, \"value\": null}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // A series name must never sit on the same line as a
        // throughput figure (check_bench's parser is line-based).
        for line in j.lines() {
            assert!(
                !(line.contains("live_bytes") && line.contains("throughput_mib_s")),
                "series line would confuse the regression parser: {line}"
            );
        }
        let text = h.render();
        assert!(text.contains("series live_bytes"));
        assert!(text.contains("3 points"));
    }

    #[test]
    fn render_mentions_every_case() {
        let mut h = Harness::new("t", 2);
        h.run("alpha", || ());
        h.run_bytes("beta", 4096, || ());
        let text = h.render();
        assert!(text.contains("alpha") && text.contains("beta"));
        assert!(text.contains("MiB/s"));
    }
}
