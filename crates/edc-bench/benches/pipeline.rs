//! Benchmarks of the real-bytes EDC pipeline and the parallel
//! compression engine (DESIGN.md ablation 5: worker scaling), on the
//! in-tree harness. (The dedicated serial-vs-batched comparison lives in
//! the `bench-pipeline` subcommand of the `edc-bench` binary.)

use edc_bench::Harness;
use edc_compress::CodecId;
use edc_core::parallel::{Job, ParallelCompressor};
use edc_core::pipeline::{EdcPipeline, PipelineConfig};
use edc_datagen::{ContentGenerator, DataMix};
use std::hint::black_box;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 3 } else { 10 };
    let mut h = Harness::new("pipeline_ops", samples);

    let mut generator = ContentGenerator::new(5, DataMix::primary_storage());
    let blocks: Vec<Vec<u8>> = (0..128).map(|_| generator.block(4096).1).collect();
    let total: u64 = blocks.iter().map(|b| b.len() as u64).sum();

    h.run_bytes("write_flush_128_blocks", total, || {
        let mut store = EdcPipeline::new(8 << 20, PipelineConfig::default());
        let mut t = 0u64;
        for (i, block) in blocks.iter().enumerate() {
            // Alternate contiguity so the SD both merges and flushes.
            let offset = if i % 5 == 0 { (i as u64 * 31 % 512) * 4096 } else { i as u64 * 4096 };
            store.write(t, offset, black_box(block)).expect("write");
            t += 10_000_000;
        }
        store.flush(t).expect("flush");
        black_box(store.stats().compression_ratio())
    });

    {
        let mut store = EdcPipeline::new(8 << 20, PipelineConfig::default());
        let mut t = 0u64;
        for (i, block) in blocks.iter().enumerate() {
            store.write(t, i as u64 * 4096, block).expect("write");
            t += 10_000_000;
        }
        store.flush(t).expect("flush");
        h.run_bytes("read_back_128_blocks", total, || {
            for i in 0..blocks.len() as u64 {
                black_box(store.read(t, i * 4096, 4096).unwrap());
            }
        });
    }

    let mut generator = ContentGenerator::new(9, DataMix::primary_storage());
    let par_blocks: Vec<Vec<u8>> = (0..64).map(|_| generator.block(16384).1).collect();
    let jobs: Vec<Job<'_>> =
        par_blocks.iter().map(|d| Job { codec: CodecId::Deflate, data: d }).collect();
    let par_total: u64 = par_blocks.iter().map(|b| b.len() as u64).sum();
    for workers in [1usize, 2, 4, 8] {
        let engine = ParallelCompressor::new(workers);
        h.run_bytes(&format!("parallel_compress_{workers}workers"), par_total, || {
            black_box(engine.compress_batch(black_box(&jobs)))
        });
    }

    print!("{}", h.render());
    let path = h.write_json(std::path::Path::new("results")).expect("write json");
    eprintln!("# wrote {}", path.display());
}
