//! Criterion benchmarks of the real-bytes EDC pipeline and the parallel
//! compression engine (DESIGN.md ablation 5: worker scaling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edc_core::parallel::{Job, ParallelCompressor};
use edc_core::pipeline::{EdcPipeline, PipelineConfig};
use edc_compress::CodecId;
use edc_datagen::{ContentGenerator, DataMix};
use std::hint::black_box;

fn bench_pipeline_write(c: &mut Criterion) {
    let mut generator = ContentGenerator::new(5, DataMix::primary_storage());
    let blocks: Vec<Vec<u8>> = (0..128).map(|_| generator.block(4096).1).collect();
    let total: u64 = blocks.iter().map(|b| b.len() as u64).sum();
    let mut group = c.benchmark_group("edc_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(total));
    group.bench_function("write_flush_128_blocks", |b| {
        b.iter(|| {
            let mut store = EdcPipeline::new(8 << 20, PipelineConfig::default());
            let mut t = 0u64;
            for (i, block) in blocks.iter().enumerate() {
                // Alternate contiguity so the SD both merges and flushes.
                let offset = if i % 5 == 0 { (i as u64 * 31 % 512) * 4096 } else { i as u64 * 4096 };
                store.write(t, offset, black_box(block));
                t += 10_000_000;
            }
            store.flush(t);
            black_box(store.compression_ratio())
        })
    });
    group.bench_function("read_back_128_blocks", |b| {
        let mut store = EdcPipeline::new(8 << 20, PipelineConfig::default());
        let mut t = 0u64;
        for (i, block) in blocks.iter().enumerate() {
            store.write(t, i as u64 * 4096, block);
            t += 10_000_000;
        }
        store.flush(t);
        b.iter(|| {
            for i in 0..blocks.len() as u64 {
                black_box(store.read(t, i * 4096, 4096).unwrap());
            }
        })
    });
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut generator = ContentGenerator::new(9, DataMix::primary_storage());
    let blocks: Vec<Vec<u8>> = (0..64).map(|_| generator.block(16384).1).collect();
    let jobs: Vec<Job<'_>> =
        blocks.iter().map(|d| Job { codec: CodecId::Deflate, data: d }).collect();
    let total: u64 = blocks.iter().map(|b| b.len() as u64).sum();
    let mut group = c.benchmark_group("parallel_compressor_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(total));
    for workers in [1usize, 2, 4, 8] {
        let engine = ParallelCompressor::new(workers);
        group.bench_with_input(BenchmarkId::from_parameter(workers), &jobs, |b, jobs| {
            b.iter(|| black_box(engine.compress_batch(black_box(jobs))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_write, bench_parallel_scaling);
criterion_main!(benches);
