//! Criterion micro-benchmarks of the four from-scratch codecs on the two
//! Fig. 2 datasets — the measured numbers behind the `fig2` experiment and
//! the calibration anchor for the cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edc_compress::{codec_by_id, CodecId};
use edc_datagen::corpus::{firefox_binary_like, linux_source_like, Corpus};
use std::hint::black_box;

fn corpus_pair() -> [Corpus; 2] {
    [linux_source_like(7, 8, 65536), firefox_binary_like(7, 8, 65536)]
}

fn bench_compress(c: &mut Criterion) {
    let corpora = corpus_pair();
    let mut group = c.benchmark_group("compress");
    group.sample_size(10);
    for corpus in &corpora {
        group.throughput(Throughput::Bytes(corpus.total_bytes() as u64));
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            group.bench_with_input(
                BenchmarkId::new(id.name(), corpus.name),
                corpus,
                |b, corpus| {
                    b.iter(|| {
                        for block in &corpus.blocks {
                            black_box(codec.compress(black_box(block)));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let corpora = corpus_pair();
    let mut group = c.benchmark_group("decompress");
    group.sample_size(10);
    for corpus in &corpora {
        group.throughput(Throughput::Bytes(corpus.total_bytes() as u64));
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            let streams: Vec<(Vec<u8>, usize)> =
                corpus.blocks.iter().map(|b| (codec.compress(b), b.len())).collect();
            group.bench_with_input(
                BenchmarkId::new(id.name(), corpus.name),
                &streams,
                |b, streams| {
                    b.iter(|| {
                        for (s, n) in streams {
                            black_box(codec.decompress(black_box(s), *n).unwrap());
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_block_sizes(c: &mut Criterion) {
    // §III-E's premise: per-byte compression cost falls and ratio rises
    // with block size — the reason the SD merges before compressing.
    let corpus = linux_source_like(11, 1, 256 * 1024);
    let data = &corpus.blocks[0];
    let mut group = c.benchmark_group("compress_by_block_size");
    group.sample_size(10);
    for size in [4096usize, 16384, 65536, 262144] {
        let slice = &data[..size];
        group.throughput(Throughput::Bytes(size as u64));
        let codec = codec_by_id(CodecId::Deflate).unwrap();
        group.bench_with_input(BenchmarkId::new("Gzip", size), &slice, |b, s| {
            b.iter(|| black_box(codec.compress(black_box(s))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decompress, bench_block_sizes);
criterion_main!(benches);
