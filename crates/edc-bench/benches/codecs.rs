//! Micro-benchmarks of the four from-scratch codecs on the two Fig. 2
//! datasets — the measured numbers behind the `fig2` experiment and the
//! calibration anchor for the cost model. Runs on the in-tree harness.

use edc_bench::Harness;
use edc_compress::{codec_by_id, CodecId};
use edc_datagen::corpus::{firefox_binary_like, linux_source_like, Corpus};
use std::hint::black_box;

fn corpus_pair() -> [Corpus; 2] {
    [linux_source_like(7, 8, 65536), firefox_binary_like(7, 8, 65536)]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 3 } else { 10 };
    let mut h = Harness::new("codecs", samples);
    let corpora = corpus_pair();

    for corpus in &corpora {
        let total = corpus.total_bytes() as u64;
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            h.run_bytes(&format!("compress/{}/{}", id.name(), corpus.name), total, || {
                for block in &corpus.blocks {
                    black_box(codec.compress(black_box(block)));
                }
            });
        }
    }

    for corpus in &corpora {
        let total = corpus.total_bytes() as u64;
        for id in CodecId::ALL_CODECS {
            let codec = codec_by_id(id).unwrap();
            let streams: Vec<(Vec<u8>, usize)> =
                corpus.blocks.iter().map(|b| (codec.compress(b), b.len())).collect();
            h.run_bytes(&format!("decompress/{}/{}", id.name(), corpus.name), total, || {
                for (s, n) in &streams {
                    black_box(codec.decompress(black_box(s), *n).unwrap());
                }
            });
        }
    }

    // §III-E's premise: per-byte compression cost falls and ratio rises
    // with block size — the reason the SD merges before compressing.
    let corpus = linux_source_like(11, 1, 256 * 1024);
    let data = &corpus.blocks[0];
    let codec = codec_by_id(CodecId::Deflate).unwrap();
    for size in [4096usize, 16384, 65536, 262144] {
        let slice = &data[..size];
        h.run_bytes(&format!("compress_by_block_size/Gzip/{size}"), size as u64, || {
            black_box(codec.compress(black_box(slice)))
        });
    }

    print!("{}", h.render());
    let path = h.write_json(std::path::Path::new("results")).expect("write json");
    eprintln!("# wrote {}", path.display());
}
