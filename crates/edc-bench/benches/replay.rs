//! Criterion benchmarks of the discrete-event simulator itself: replayed
//! trace requests per second under each scheme, plus the raw device and
//! event-queue costs. (Simulation speed is what makes the full-figure
//! harness regenerate in seconds.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edc_core::{CalibrationConfig, ContentModel, EdcConfig, Policy, SimConfig, SimScheme};
use edc_datagen::DataMix;
use edc_flash::{IoKind, SsdConfig, SsdDevice};
use edc_sim::replay::replay;
use edc_sim::{EventQueue, Storage};
use edc_trace::TracePreset;
use std::hint::black_box;
use std::sync::Arc;

fn bench_replay_schemes(c: &mut Criterion) {
    let trace = TracePreset::Fin1.generate(10.0, 4);
    let content = Arc::new(ContentModel::calibrate(
        DataMix::primary_storage(),
        4,
        CalibrationConfig { samples: 1, small_bytes: 4096, large_bytes: 16384 },
    ));
    let mut group = c.benchmark_group("replay_fin1_10s");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.requests.len() as u64));
    let policies: [(&str, Policy); 3] = [
        ("native", Policy::Native),
        ("lzf", Policy::Fixed(edc_compress::CodecId::Lzf)),
        ("edc", Policy::Elastic(EdcConfig::default())),
    ];
    for (name, policy) in policies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, policy| {
            b.iter(|| {
                let storage =
                    Storage::single(SsdConfig { logical_bytes: 64 << 20, ..SsdConfig::default() });
                let mut scheme = SimScheme::new(
                    policy.clone(),
                    storage,
                    SimConfig { cpu_workers: 1, precondition: 0.0, ..SimConfig::default() },
                    content.clone(),
                );
                black_box(replay(&trace, &mut scheme))
            })
        });
    }
    group.finish();
}

fn bench_device(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssd_device");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("10k_random_writes", |b| {
        b.iter(|| {
            let mut dev =
                SsdDevice::new(SsdConfig { logical_bytes: 64 << 20, ..SsdConfig::default() });
            let mut now = 0u64;
            let mut x = 7u64;
            for _ in 0..10_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let offset = (x % (dev.logical_bytes() / 4096)) * 4096;
                let c = dev.submit(now, IoKind::Write, offset, 4096);
                now = c.finish_ns;
            }
            black_box(dev.ftl_stats())
        })
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("push_pop_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut x = 13u64;
            for i in 0..100_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                q.push(x % 1_000_000, i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_replay_schemes, bench_device, bench_event_queue);
criterion_main!(benches);
