//! Benchmarks of the discrete-event simulator itself: replayed trace
//! requests per second under each scheme, plus the raw device and
//! event-queue costs. (Simulation speed is what makes the full-figure
//! harness regenerate in seconds.) Runs on the in-tree harness.

use edc_bench::Harness;
use edc_core::{CalibrationConfig, ContentModel, EdcConfig, Policy, SimConfig, SimScheme};
use edc_datagen::DataMix;
use edc_flash::{IoKind, SsdConfig, SsdDevice};
use edc_sim::replay::replay;
use edc_sim::{EventQueue, Storage};
use edc_trace::TracePreset;
use std::hint::black_box;
use std::sync::Arc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 3 } else { 10 };
    let mut h = Harness::new("replay", samples);

    let trace = TracePreset::Fin1.generate(if quick { 2.0 } else { 10.0 }, 4);
    let content = Arc::new(ContentModel::calibrate(
        DataMix::primary_storage(),
        4,
        CalibrationConfig { samples: 1, small_bytes: 4096, large_bytes: 16384 },
    ));
    let policies: [(&str, Policy); 3] = [
        ("native", Policy::Native),
        ("lzf", Policy::Fixed(edc_compress::CodecId::Lzf)),
        ("edc", Policy::Elastic(EdcConfig::default())),
    ];
    for (name, policy) in &policies {
        h.run(&format!("replay_fin1/{name}"), || {
            let storage =
                Storage::single(SsdConfig { logical_bytes: 64 << 20, ..SsdConfig::default() });
            let mut scheme = SimScheme::new(
                policy.clone(),
                storage,
                SimConfig { cpu_workers: 1, precondition: 0.0, ..SimConfig::default() },
                content.clone(),
            );
            black_box(replay(&trace, &mut scheme))
        });
    }

    h.run("ssd_device/10k_random_writes", || {
        let mut dev = SsdDevice::new(SsdConfig { logical_bytes: 64 << 20, ..SsdConfig::default() });
        let mut now = 0u64;
        let mut x = 7u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let offset = (x % (dev.logical_bytes() / 4096)) * 4096;
            let c = dev.submit(now, IoKind::Write, offset, 4096);
            now = c.finish_ns;
        }
        black_box(dev.ftl_stats())
    });

    h.run("event_queue/push_pop_100k", || {
        let mut q = EventQueue::new();
        let mut x = 13u64;
        for i in 0..100_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.push(x % 1_000_000, i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        black_box(sum)
    });

    print!("{}", h.render());
    let path = h.write_json(std::path::Path::new("results")).expect("write json");
    eprintln!("# wrote {}", path.display());
}
