//! Benchmarks of the sampling compressibility estimator and the BWT
//! pipeline stages — the estimator must be orders of magnitude cheaper
//! than compressing (it sits on EDC's write path for *every* block).
//! Runs on the in-tree harness.

use edc_bench::Harness;
use edc_compress::bwt::bwt_forward;
use edc_compress::mtf::mtf_encode;
use edc_compress::suffix::sort_rotations;
use edc_compress::{codec_by_id, CodecId, Estimator};
use edc_datagen::{BlockClass, ContentGenerator, DataMix};
use std::hint::black_box;

fn blocks_of(class: BlockClass, n: usize, len: usize) -> Vec<Vec<u8>> {
    let mut g = ContentGenerator::new(3, DataMix::pure(class));
    (0..n).map(|_| g.block_of(class, len)).collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 3 } else { 10 };
    let mut h = Harness::new("estimator", samples);

    let blocks = blocks_of(BlockClass::Text, 16, 4096);
    let total: u64 = blocks.iter().map(|b| b.len() as u64).sum();
    let estimator = Estimator::default();
    h.run_bytes("estimate_vs_compress_4k/estimator", total, || {
        for block in &blocks {
            black_box(estimator.estimate(black_box(block)));
        }
    });
    let lzf = codec_by_id(CodecId::Lzf).unwrap();
    h.run_bytes("estimate_vs_compress_4k/lzf_full_compress", total, || {
        for block in &blocks {
            black_box(lzf.compress(black_box(block)));
        }
    });

    for class in [BlockClass::Text, BlockClass::Binary, BlockClass::Random] {
        let blocks = blocks_of(class, 16, 4096);
        h.run(&format!("estimator_by_class/{class:?}"), || {
            for block in &blocks {
                black_box(estimator.estimate(black_box(block)));
            }
        });
    }

    let block = blocks_of(BlockClass::Text, 1, 65536).remove(0);
    let len = block.len() as u64;
    h.run_bytes("bwt_stages_64k/sort_rotations", len, || {
        black_box(sort_rotations(black_box(&block)))
    });
    h.run_bytes("bwt_stages_64k/bwt_forward", len, || black_box(bwt_forward(black_box(&block))));
    let (last, _) = bwt_forward(&block);
    h.run_bytes("bwt_stages_64k/mtf_encode", len, || black_box(mtf_encode(black_box(&last))));

    print!("{}", h.render());
    let path = h.write_json(std::path::Path::new("results")).expect("write json");
    eprintln!("# wrote {}", path.display());
}
