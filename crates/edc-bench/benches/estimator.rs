//! Criterion benchmarks of the sampling compressibility estimator and the
//! BWT pipeline stages — the estimator must be orders of magnitude cheaper
//! than compressing (it sits on EDC's write path for *every* block).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use edc_compress::bwt::bwt_forward;
use edc_compress::mtf::mtf_encode;
use edc_compress::suffix::sort_rotations;
use edc_compress::{codec_by_id, CodecId, Estimator};
use edc_datagen::{BlockClass, ContentGenerator, DataMix};
use std::hint::black_box;

fn blocks_of(class: BlockClass, n: usize, len: usize) -> Vec<Vec<u8>> {
    let mut g = ContentGenerator::new(3, DataMix::pure(class));
    (0..n).map(|_| g.block_of(class, len)).collect()
}

fn bench_estimator_vs_compression(c: &mut Criterion) {
    let blocks = blocks_of(BlockClass::Text, 16, 4096);
    let total: usize = blocks.iter().map(Vec::len).sum();
    let mut group = c.benchmark_group("estimate_vs_compress_4k");
    group.throughput(Throughput::Bytes(total as u64));
    let estimator = Estimator::default();
    group.bench_function("estimator", |b| {
        b.iter(|| {
            for block in &blocks {
                black_box(estimator.estimate(black_box(block)));
            }
        })
    });
    let lzf = codec_by_id(CodecId::Lzf).unwrap();
    group.bench_function("lzf_full_compress", |b| {
        b.iter(|| {
            for block in &blocks {
                black_box(lzf.compress(black_box(block)));
            }
        })
    });
    group.finish();
}

fn bench_estimator_by_class(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_by_class");
    let estimator = Estimator::default();
    for class in [BlockClass::Text, BlockClass::Binary, BlockClass::Random] {
        let blocks = blocks_of(class, 16, 4096);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{class:?}")),
            &blocks,
            |b, blocks| {
                b.iter(|| {
                    for block in blocks {
                        black_box(estimator.estimate(black_box(block)));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_bwt_stages(c: &mut Criterion) {
    let block = blocks_of(BlockClass::Text, 1, 65536).remove(0);
    let mut group = c.benchmark_group("bwt_stages_64k");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(block.len() as u64));
    group.bench_function("sort_rotations", |b| {
        b.iter(|| black_box(sort_rotations(black_box(&block))))
    });
    group.bench_function("bwt_forward", |b| b.iter(|| black_box(bwt_forward(black_box(&block)))));
    let (last, _) = bwt_forward(&block);
    group.bench_function("mtf_encode", |b| b.iter(|| black_box(mtf_encode(black_box(&last)))));
    group.finish();
}

criterion_group!(benches, bench_estimator_vs_compression, bench_estimator_by_class, bench_bwt_stages);
criterion_main!(benches);
