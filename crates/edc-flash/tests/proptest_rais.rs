//! Property tests for the RAIS array's failure discipline: degraded
//! reads must be bit-identical to healthy reads after any single member
//! kill, and a kill → rebuild → re-kill of a *different* member must
//! still round-trip every chunk. Runs on the in-tree harness
//! (`edc_datagen::proptest`) at both 3 and 5 members.

use edc_datagen::proptest::{cases, vec_u8};
use edc_datagen::Rng64;
use edc_flash::{RaisArray, RaisLevel, ReadMode, SsdConfig};

const CHUNK: u64 = 64 * 1024;

fn member_cfg() -> SsdConfig {
    SsdConfig {
        logical_bytes: 2 << 20, // 32 rows per member: fast but non-trivial
        overprovision: 0.25,
        sectors_per_block: 64,
        gc_low_watermark: 3,
        ..SsdConfig::default()
    }
}

/// Pick 3 or 5 members (the two array widths the campaign sweeps).
fn width(rng: &mut Rng64) -> usize {
    if rng.chance(0.5) {
        3
    } else {
        5
    }
}

/// Fill `rows` rows with variable-length "compressed" payloads, returning
/// the expected bytes per (row, pos).
fn fill(a: &mut RaisArray, rng: &mut Rng64, rows: u64) -> Vec<Vec<Vec<u8>>> {
    let mut expected = Vec::new();
    for row in 0..rows {
        let payloads: Vec<Vec<u8>> =
            (0..a.data_width()).map(|_| vec_u8(rng, 1, CHUNK as usize + 1)).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        a.write_row(row * 1_000_000, row, &refs).expect("write_row");
        expected.push(payloads);
    }
    expected
}

/// Every chunk of every row reads back bit-identical to what was written.
fn assert_all_chunks(a: &mut RaisArray, expected: &[Vec<Vec<u8>>], ctx: &str) {
    for (row, payloads) in expected.iter().enumerate() {
        for (pos, want) in payloads.iter().enumerate() {
            let got = a
                .read_chunk(1_000_000_000, row as u64, pos)
                .unwrap_or_else(|e| panic!("{ctx}: read ({row},{pos}): {e}"));
            assert_eq!(&got.data, want, "{ctx}: chunk ({row},{pos}) not bit-identical");
        }
    }
}

/// After killing any single member of a RAIS5 array, every chunk is
/// still served bit-identical to the healthy array — degraded for legs
/// that lived on the victim, direct for the rest.
#[test]
fn degraded_reads_bit_identical_after_any_single_kill() {
    cases(24).run("degraded_reads_bit_identical_after_any_single_kill", |rng| {
        let n = width(rng);
        let mut a =
            RaisArray::new(RaisLevel::Rais5, n, member_cfg(), CHUNK).expect("valid shape");
        let rows = rng.range_u64(2, 9);
        let expected = fill(&mut a, rng, rows);
        assert_all_chunks(&mut a, &expected, "healthy");

        let victim = rng.below_usize(n);
        a.kill_member(victim).expect("kill");
        let mut degraded = 0u64;
        for (row, payloads) in expected.iter().enumerate() {
            for (pos, want) in payloads.iter().enumerate() {
                let got = a
                    .read_chunk(2_000_000_000, row as u64, pos)
                    .unwrap_or_else(|e| panic!("degraded read ({row},{pos}): {e}"));
                assert_eq!(&got.data, want, "chunk ({row},{pos}) after killing {victim}");
                if got.mode == ReadMode::Degraded {
                    degraded += 1;
                }
            }
        }
        // Unless every stored leg dodged the victim (possible only when
        // the victim holds nothing but parity for these rows), some read
        // must have gone down the reconstruction path.
        assert_eq!(degraded, a.repair_stats().degraded_reads);
    });
}

/// Kill a member, optionally overwrite chunks while degraded (phantom
/// legs land on the dead member), rebuild it online, then kill a
/// *different* member: every chunk still round-trips bit-identical and
/// nothing is reported lost.
#[test]
fn kill_rebuild_rekill_round_trips() {
    cases(16).run("kill_rebuild_rekill_round_trips", |rng| {
        let n = width(rng);
        let mut a =
            RaisArray::new(RaisLevel::Rais5, n, member_cfg(), CHUNK).expect("valid shape");
        let rows = rng.range_u64(2, 7);
        let mut expected = fill(&mut a, rng, rows);

        let first = rng.below_usize(n);
        a.kill_member(first).expect("kill first");

        // A few degraded-mode overwrites: the victim's legs become
        // phantoms (meta + parity only) that the rebuild must
        // rematerialize.
        for _ in 0..rng.below(4) {
            let row = rng.below(rows);
            let pos = rng.below_usize(a.data_width());
            let fresh = vec_u8(rng, 1, CHUNK as usize + 1);
            a.write_chunk(3_000_000_000, row, pos, &fresh).expect("degraded overwrite");
            expected[row as usize][pos] = fresh;
        }

        let progress = a.rebuild(4_000_000_000, first).expect("rebuild");
        assert!(progress.done, "rebuild of {first} did not finish");
        assert_eq!(progress.lost_chunks, 0, "rebuild of {first} lost chunks");
        a.verify_integrity()
            .unwrap_or_else(|e| panic!("integrity after rebuilding {first}: {e}"));
        assert_all_chunks(&mut a, &expected, "after rebuild");

        let second = (first + 1 + rng.below_usize(n - 1)) % n;
        assert_ne!(second, first);
        a.kill_member(second).expect("kill second");
        assert_all_chunks(&mut a, &expected, "after re-kill");
    });
}
