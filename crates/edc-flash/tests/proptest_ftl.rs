//! Property tests: the FTL's mapping invariants must survive arbitrary
//! write sequences, and the device's accounting must stay consistent.
//! Runs on the in-tree harness (`edc_datagen::proptest`).

use edc_datagen::proptest::{cases, vec_of};
use edc_flash::{Ftl, IoKind, SsdConfig, SsdDevice};

fn tiny_cfg() -> SsdConfig {
    SsdConfig {
        logical_bytes: 2 << 20, // 2 MiB: GC constantly active
        overprovision: 0.25,
        sectors_per_block: 32,
        gc_low_watermark: 2,
        ..SsdConfig::default()
    }
}

/// After any sequence of writes, the map/rmap/valid-counter/free-list
/// invariants hold and every written sector is still readable.
#[test]
fn ftl_invariants_under_arbitrary_writes() {
    cases(48).run("ftl_invariants_under_arbitrary_writes", |rng| {
        let ops = vec_of(rng, 1, 400, |r| (r.below(2048), r.range_u64(1, 16)));
        let cfg = tiny_cfg();
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        let mut written = vec![false; cap as usize];
        for (lsn, count) in ops {
            let lsn = lsn % cap;
            let count = count.min(cap - lsn);
            ftl.write(lsn, count);
            for l in lsn..lsn + count {
                written[l as usize] = true;
            }
        }
        ftl.verify_integrity().expect("integrity");
        for (l, &w) in written.iter().enumerate() {
            assert_eq!(ftl.is_mapped(l as u64), w, "lsn {l}");
        }
        assert!(ftl.stats().write_amplification() >= 1.0);
    });
}

/// GC never loses data: overwrite-heavy workloads keep exactly one
/// valid copy per logical sector.
#[test]
fn gc_preserves_exactly_one_copy() {
    cases(48).run("gc_preserves_exactly_one_copy", |rng| {
        let seed = rng.next_u64();
        let rounds = rng.range_usize(3, 6); // ≥3 rounds drains the free list into GC
        let cfg = tiny_cfg();
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        let mut x = seed | 1;
        for _ in 0..rounds {
            for _ in 0..cap {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ftl.write(x % cap, 1);
            }
        }
        ftl.verify_integrity().expect("integrity");
        assert!(ftl.stats().erases > 0, "workload must trigger GC");
    });
}

/// Device completions are causal and monotone: start ≥ submit,
/// finish > start, and the busy chain never goes backwards.
#[test]
fn device_time_is_causal() {
    cases(48).run("device_time_is_causal", |rng| {
        let ops = vec_of(rng, 1, 200, |r| {
            (r.chance(0.5), r.below(4096), r.range_u64(1, 9) as u32, r.below(1000))
        });
        let mut dev = SsdDevice::new(tiny_cfg());
        let mut now = 0u64;
        let mut last_finish = 0u64;
        for (is_read, block, len_blocks, gap_us) in ops {
            now += gap_us * 1000;
            let kind = if is_read { IoKind::Read } else { IoKind::Write };
            let offset = (block % (dev.logical_bytes() / 4096)) * 4096;
            let c = dev.submit(now, kind, offset, len_blocks * 4096);
            assert!(c.start_ns >= now);
            assert!(c.finish_ns > c.start_ns);
            assert!(c.finish_ns >= last_finish, "busy chain went backwards");
            last_finish = c.finish_ns;
        }
        let s = dev.stats();
        assert!(s.busy_ns > 0);
        assert!(s.busy_ns <= last_finish);
    });
}

/// Byte accounting: host byte counters equal the sum of submitted
/// lengths (after tail clipping).
#[test]
fn device_byte_accounting() {
    cases(48).run("device_byte_accounting", |rng| {
        let writes = vec_of(rng, 1, 100, |r| (r.below(500), r.range_u64(1, 5) as u32));
        let mut dev = SsdDevice::new(tiny_cfg());
        let mut expect = 0u64;
        for (block, len_blocks) in writes {
            let offset = (block % (dev.logical_bytes() / 4096)) * 4096;
            let len = u64::from(len_blocks) * 4096;
            let clipped = len.min(dev.logical_bytes() - offset);
            expect += clipped;
            dev.submit(0, IoKind::Write, offset, len as u32);
        }
        assert_eq!(dev.stats().bytes_written, expect);
    });
}
