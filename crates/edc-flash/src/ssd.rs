//! The simulated SSD device: FTL + timing front-end.
//!
//! [`SsdDevice::submit`] services one byte-addressed read or write. The
//! device is a single server: a request starts at `max(now, busy_until)`
//! and occupies the device for its service time, which is the fixed
//! command overhead plus per-byte cost (the linear response-vs-size law of
//! the paper's Fig. 1) plus any garbage-collection stall the write
//! triggered. Queueing delay therefore emerges naturally when the
//! simulator submits faster than the device drains — exactly the "I/O
//! queue length increases in bursty periods" effect EDC exploits.

use crate::config::{SsdConfig, SECTOR_BYTES};
use crate::fault::{FaultError, FaultPlan, FaultState, FaultStats};
use crate::ftl::{Ftl, FtlStats, IntegrityError};

/// Read or write, at the device level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Device read.
    Read,
    /// Device write (program).
    Write,
}

/// Cumulative device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceStats {
    /// Host reads served.
    pub reads: u64,
    /// Host writes served.
    pub writes: u64,
    /// Host bytes read.
    pub bytes_read: u64,
    /// Host bytes written.
    pub bytes_written: u64,
    /// Total device-busy time (ns).
    pub busy_ns: u64,
    /// Time spent stalled in GC (ns), included in `busy_ns`.
    pub gc_stall_ns: u64,
}

impl DeviceStats {
    /// Fold another device's counters into this one (array-level
    /// aggregation over members).
    pub fn merge(&mut self, other: &DeviceStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.busy_ns += other.busy_ns;
        self.gc_stall_ns += other.gc_stall_ns;
    }
}

/// One completed I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When service began (≥ submission time).
    pub start_ns: u64,
    /// When the device finished.
    pub finish_ns: u64,
}

impl Completion {
    /// Latency from a given submission time.
    pub fn latency_from(&self, submit_ns: u64) -> u64 {
        self.finish_ns - submit_ns
    }
}

/// A simulated flash SSD.
///
/// ```
/// use edc_flash::{SsdDevice, SsdConfig, IoKind};
///
/// let mut dev = SsdDevice::new(SsdConfig::default());
/// let w = dev.submit(0, IoKind::Write, 0, 4096);
/// let r = dev.submit(w.finish_ns, IoKind::Read, 0, 4096);
/// assert!(w.finish_ns - w.start_ns > r.finish_ns - r.start_ns); // writes cost more
/// ```
#[derive(Debug, Clone)]
pub struct SsdDevice {
    cfg: SsdConfig,
    ftl: Ftl,
    busy_until: u64,
    stats: DeviceStats,
    failed: bool,
}

impl SsdDevice {
    /// Create a device from `cfg` (validated).
    pub fn new(cfg: SsdConfig) -> Self {
        cfg.validate();
        SsdDevice {
            ftl: Ftl::new(&cfg),
            cfg,
            busy_until: 0,
            stats: DeviceStats::default(),
            failed: false,
        }
    }

    /// Mark the whole device as failed. Every subsequent I/O returns
    /// [`FaultError::DeviceFailed`] until the device is replaced (arrays
    /// replace failed members with a fresh device during rebuild; there is
    /// deliberately no `unfail` — a dead SSD stays dead).
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Whether [`SsdDevice::fail`] was called.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// The device configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Cumulative device statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Cumulative FTL statistics (GC, wear, write amplification).
    pub fn ftl_stats(&self) -> FtlStats {
        self.ftl.stats()
    }

    /// Drain the logical sectors GC relocated since the last drain — the
    /// hook a heat-aware recompression layer uses to piggyback re-encoding
    /// on moves GC already paid for.
    pub fn take_relocations(&mut self) -> Vec<u64> {
        self.ftl.take_relocations()
    }

    /// Per-block erase counts.
    pub fn erase_counts(&self) -> &[u32] {
        self.ftl.erase_counts()
    }

    /// Earliest time a new request could start service.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Logical capacity in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.cfg.logical_bytes
    }

    /// Wrap a byte offset into the logical address space, sector-aligned.
    /// Trace offsets routinely exceed the simulated volume; wrapping
    /// preserves locality structure while staying in range.
    pub fn wrap_offset(&self, offset: u64) -> u64 {
        (offset % self.cfg.logical_bytes) / SECTOR_BYTES * SECTOR_BYTES
    }

    /// Injected-fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.ftl.fault_stats()
    }

    /// The live fault-decision stream (for campaigns that need direct
    /// access, e.g. to inspect the power-cut clock).
    pub fn faults_mut(&mut self) -> &mut FaultState {
        self.ftl.faults_mut()
    }

    /// Replace the fault plan, restarting the decision stream. Lets a
    /// campaign precondition fault-free and then arm faults.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.cfg.fault = plan;
        self.ftl.set_fault_plan(plan);
    }

    /// Restore power after a simulated cut (the one-shot cut is disarmed).
    pub fn power_cycle(&mut self) {
        self.ftl.faults_mut().power_cycle();
    }

    /// Check FTL invariants, returning the first violation as data.
    pub fn verify_integrity(&self) -> Result<(), IntegrityError> {
        self.ftl.verify_integrity()
    }

    /// Submit an I/O at time `now_ns`. `offset`/`len` are bytes; the
    /// request must fit in the logical space after wrapping (the tail is
    /// clipped if it would run past the end of the volume).
    ///
    /// # Panics
    /// Panics on zero-length I/O, or if an injected fault fires — arm a
    /// [`FaultPlan`] only together with [`SsdDevice::try_submit`].
    pub fn submit(&mut self, now_ns: u64, kind: IoKind, offset: u64, len: u32) -> Completion {
        self.try_submit(now_ns, kind, offset, len)
            .expect("fault injected — use try_submit with an armed FaultPlan")
    }

    /// Fallible submit: like [`SsdDevice::submit`] but injected faults
    /// come back as typed [`FaultError`]s. Transient read faults are
    /// retried up to the plan's `read_retries` budget before
    /// [`FaultError::ReadFault`] is returned; write-side faults follow
    /// [`Ftl::try_write`] semantics (a power cut aborts mid-range leaving
    /// completed sectors durable).
    pub fn try_submit(
        &mut self,
        now_ns: u64,
        kind: IoKind,
        offset: u64,
        len: u32,
    ) -> Result<Completion, FaultError> {
        assert!(len > 0, "zero-length I/O");
        if self.failed {
            return Err(FaultError::DeviceFailed);
        }
        let offset = self.wrap_offset(offset);
        let max_len = self.cfg.logical_bytes - offset;
        let len = u64::from(len).min(max_len);
        let lsn = offset / SECTOR_BYTES;
        let sectors = Ftl::sectors_for(len);

        let t = &self.cfg.timing;
        let service_ns = match kind {
            IoKind::Read => {
                let faults = self.ftl.faults_mut();
                faults.check_power()?;
                let retries = faults.plan().read_retries;
                let mut attempt = 0;
                while faults.read_fault() {
                    if attempt == retries {
                        return Err(FaultError::ReadFault);
                    }
                    attempt += 1;
                }
                // Reads of unmapped space are served from the zero-fill fast
                // path at the same transfer cost (controller returns zeroes).
                let _ = self.ftl.read(lsn, sectors);
                t.read_overhead_ns + (len as f64 * t.read_ns_per_byte) as u64
            }
            IoKind::Write => {
                let charge = self.ftl.try_write(lsn, sectors)?;
                let base = t.write_overhead_ns + (len as f64 * t.write_ns_per_byte) as u64;
                let gc = charge.erases * t.erase_ns
                    + (charge.migrated_sectors as f64 * SECTOR_BYTES as f64 * t.migrate_ns_per_byte)
                        as u64;
                self.stats.gc_stall_ns += gc;
                base + gc
            }
        };

        let start_ns = now_ns.max(self.busy_until);
        let finish_ns = start_ns + service_ns;
        self.busy_until = finish_ns;
        self.stats.busy_ns += service_ns;
        match kind {
            IoKind::Read => {
                self.stats.reads += 1;
                self.stats.bytes_read += len;
            }
            IoKind::Write => {
                self.stats.writes += 1;
                self.stats.bytes_written += len;
            }
        }
        Ok(Completion { start_ns, finish_ns })
    }

    /// TRIM `len` bytes at `offset`: unmap without writing. Costs only the
    /// command overhead (discards are metadata operations).
    pub fn trim(&mut self, now_ns: u64, offset: u64, len: u32) -> Completion {
        assert!(len > 0, "zero-length trim");
        let offset = self.wrap_offset(offset);
        let len = u64::from(len).min(self.cfg.logical_bytes - offset);
        let lsn = offset / SECTOR_BYTES;
        self.ftl.trim(lsn, Ftl::sectors_for(len));
        let service = self.cfg.timing.write_overhead_ns / 4; // metadata only
        let start_ns = now_ns.max(self.busy_until);
        let finish_ns = start_ns + service;
        self.busy_until = finish_ns;
        self.stats.busy_ns += service;
        Completion { start_ns, finish_ns }
    }

    /// Precondition the device: sequentially write `fraction` of the
    /// logical space so that later experiments run against a filled FTL
    /// (standard SSD benchmarking practice). Does not advance time or
    /// touch host statistics.
    pub fn precondition(&mut self, fraction: f64) {
        assert!((0.0..=1.0).contains(&fraction));
        let sectors = (self.ftl.logical_sectors() as f64 * fraction) as u64;
        if sectors > 0 {
            self.ftl.write(0, sectors);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NandTiming;

    fn dev() -> SsdDevice {
        SsdDevice::new(SsdConfig {
            logical_bytes: 16 << 20, // 16 MiB: tiny and fast
            overprovision: 0.25,
            sectors_per_block: 64,
            gc_low_watermark: 3,
            ..SsdConfig::default()
        })
    }

    #[test]
    fn response_time_linear_in_request_size() {
        // Fig. 1's defining property: service time ≈ a + b·len for both ops.
        let mut d = dev();
        let t = d.config().timing;
        for kind in [IoKind::Read, IoKind::Write] {
            let small = d.submit(d.busy_until(), kind, 0, 4096);
            let small_ns = small.finish_ns - small.start_ns;
            let large = d.submit(d.busy_until(), kind, 0, 65536);
            let large_ns = large.finish_ns - large.start_ns;
            let (overhead, per_byte) = match kind {
                IoKind::Read => (t.read_overhead_ns, t.read_ns_per_byte),
                IoKind::Write => (t.write_overhead_ns, t.write_ns_per_byte),
            };
            assert_eq!(small_ns, overhead + (4096.0 * per_byte) as u64);
            assert_eq!(large_ns, overhead + (65536.0 * per_byte) as u64);
        }
    }

    #[test]
    fn writes_slower_than_reads() {
        let mut d = dev();
        let w = d.submit(0, IoKind::Write, 0, 4096);
        let now = d.busy_until();
        let r = d.submit(now, IoKind::Read, 0, 4096);
        assert!(w.finish_ns - w.start_ns > r.finish_ns - r.start_ns);
    }

    #[test]
    fn queueing_delay_emerges_under_load() {
        let mut d = dev();
        // Two simultaneous submissions: the second must wait.
        let a = d.submit(1000, IoKind::Read, 0, 4096);
        let b = d.submit(1000, IoKind::Read, 8192, 4096);
        assert_eq!(b.start_ns, a.finish_ns);
        assert!(b.latency_from(1000) > a.latency_from(1000));
    }

    #[test]
    fn idle_device_starts_immediately() {
        let mut d = dev();
        let c = d.submit(5_000_000, IoKind::Write, 0, 4096);
        assert_eq!(c.start_ns, 5_000_000);
    }

    #[test]
    fn gc_stall_appears_under_random_overwrites() {
        let mut d = dev();
        d.precondition(1.0);
        let mut x = 7u64;
        let mut now = 0u64;
        for _ in 0..6_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let offset = (x % d.logical_bytes()) / 4096 * 4096;
            let c = d.submit(now, IoKind::Write, offset, 4096);
            now = c.finish_ns;
        }
        assert!(d.stats().gc_stall_ns > 0, "GC stalls expected");
        assert!(d.ftl_stats().erases > 0);
        assert!(d.ftl_stats().write_amplification() > 1.0);
    }

    #[test]
    fn fewer_bytes_written_means_less_gc() {
        // The core premise of compression-for-endurance: identical request
        // pattern at half the size must erase less.
        let run = |len: u32| -> u64 {
            let mut d = dev();
            d.precondition(1.0);
            let mut x = 3u64;
            let mut now = 0u64;
            for _ in 0..8_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let offset = (x % d.logical_bytes()) / 4096 * 4096;
                let c = d.submit(now, IoKind::Write, offset, len);
                now = c.finish_ns;
            }
            d.ftl_stats().erases
        };
        let full = run(4096);
        let half = run(2048);
        assert!(
            half < full,
            "half-size writes must erase less: {half} vs {full}"
        );
    }

    #[test]
    fn wrap_offset_stays_in_volume() {
        let d = dev();
        let cap = d.logical_bytes();
        assert_eq!(d.wrap_offset(0), 0);
        assert_eq!(d.wrap_offset(cap), 0);
        assert_eq!(d.wrap_offset(cap + 4096), 4096);
        assert_eq!(d.wrap_offset(123), 0); // sector-aligned down
    }

    #[test]
    fn tail_clipped_at_volume_end() {
        let mut d = dev();
        let cap = d.logical_bytes();
        // Write that would run past the end: clipped, not panicking.
        let c = d.submit(0, IoKind::Write, cap - 1024, 8192);
        assert!(c.finish_ns > c.start_ns);
        assert_eq!(d.stats().bytes_written, 1024);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = dev();
        d.submit(0, IoKind::Write, 0, 4096);
        d.submit(0, IoKind::Read, 0, 8192);
        let s = d.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 4096);
        assert_eq!(s.bytes_read, 8192);
        assert!(s.busy_ns > 0);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_io_rejected() {
        let mut d = dev();
        d.submit(0, IoKind::Read, 0, 0);
    }

    #[test]
    fn trim_reduces_subsequent_gc() {
        let run = |use_trim: bool| -> u64 {
            let mut d = dev();
            d.precondition(1.0);
            let mut x = 11u64;
            let mut now = 0u64;
            for _ in 0..8000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let offset = (x % d.logical_bytes()) / 4096 * 4096;
                let c = d.submit(now, IoKind::Write, offset, 4096);
                now = c.finish_ns;
                if use_trim {
                    // The layer above declares the old location dead.
                    let t = d.trim(now, (offset + d.logical_bytes() / 2) % d.logical_bytes(), 4096);
                    now = t.finish_ns;
                }
            }
            d.ftl_stats().migrated_sectors
        };
        let without = run(false);
        let with = run(true);
        assert!(with < without, "trim must cut migration: {with} vs {without}");
    }

    #[test]
    fn read_faults_surface_after_retry_budget() {
        let mut d = dev();
        d.submit(0, IoKind::Write, 0, 4096);
        // Every read attempt faults and no retry budget exists: typed error.
        d.set_fault_plan(FaultPlan {
            read_error_rate: 1.0,
            read_retries: 0,
            ..FaultPlan::none()
        });
        assert_eq!(d.try_submit(0, IoKind::Read, 0, 4096), Err(FaultError::ReadFault));
        // A 50% rate with a generous budget always succeeds eventually.
        d.set_fault_plan(FaultPlan {
            seed: 1,
            read_error_rate: 0.5,
            read_retries: 40,
            ..FaultPlan::none()
        });
        for _ in 0..50 {
            d.try_submit(0, IoKind::Read, 0, 4096).expect("retries must absorb a 50% rate");
        }
        assert!(d.fault_stats().read_faults > 0, "50% over 50 reads must fire");
    }

    #[test]
    fn power_cut_then_power_cycle_recovers_device() {
        let mut d = dev();
        d.set_fault_plan(FaultPlan {
            power_cut_after_programs: Some(6),
            ..FaultPlan::none()
        });
        // 4 KiB = 4 sectors: first write fits the budget, second hits the cut.
        d.try_submit(0, IoKind::Write, 0, 4096).expect("within budget");
        let err = d.try_submit(0, IoKind::Write, 8192, 4096).unwrap_err();
        assert_eq!(err, FaultError::PowerCut { after_programs: 6 });
        // Dead until power cycled — reads too.
        assert_eq!(d.try_submit(0, IoKind::Read, 0, 4096), Err(FaultError::PoweredOff));
        d.verify_integrity().expect("cut must not corrupt the FTL");
        d.power_cycle();
        d.try_submit(0, IoKind::Write, 8192, 4096).expect("restored");
        d.verify_integrity().expect("integrity after recovery");
    }

    #[test]
    fn failed_device_refuses_all_io() {
        let mut d = dev();
        d.submit(0, IoKind::Write, 0, 4096);
        d.fail();
        assert!(d.is_failed());
        assert_eq!(d.try_submit(0, IoKind::Read, 0, 4096), Err(FaultError::DeviceFailed));
        assert_eq!(d.try_submit(0, IoKind::Write, 0, 4096), Err(FaultError::DeviceFailed));
        // Stats stop moving once the device is dead.
        assert_eq!(d.stats().reads, 0);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn device_stats_merge_sums_every_counter() {
        let a = DeviceStats {
            reads: 1,
            writes: 2,
            bytes_read: 3,
            bytes_written: 4,
            busy_ns: 5,
            gc_stall_ns: 6,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(
            b,
            DeviceStats {
                reads: 2,
                writes: 4,
                bytes_read: 6,
                bytes_written: 8,
                busy_ns: 10,
                gc_stall_ns: 12,
            }
        );
    }

    #[test]
    fn custom_timing_respected() {
        let cfg = SsdConfig {
            logical_bytes: 16 << 20,
            overprovision: 0.25,
            sectors_per_block: 64,
            gc_low_watermark: 3,
            wear_level_threshold: 0,
            timing: NandTiming {
                read_overhead_ns: 1000,
                write_overhead_ns: 2000,
                read_ns_per_byte: 1.0,
                write_ns_per_byte: 2.0,
                erase_ns: 10_000,
                migrate_ns_per_byte: 2.0,
            },
            fault: FaultPlan::none(),
        };
        let mut d = SsdDevice::new(cfg);
        let c = d.submit(0, IoKind::Read, 0, 1000);
        assert_eq!(c.finish_ns, 1000 + 1000);
    }
}
