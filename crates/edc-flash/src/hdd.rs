//! HDD device model — the paper's §VI future work #2 ("conduct more
//! experiments on HDD-based ... storage systems").
//!
//! A deterministic single-actuator disk: service time is command overhead
//! plus a seek whose duration grows with the distance from the current
//! head position (short seeks are settle-dominated, long seeks approach
//! the full-stroke time), plus fixed average rotational latency, plus
//! transfer at the media rate. Sequential I/O therefore streams at media
//! speed while random I/O pays milliseconds per request — the regime in
//! which inline compression behaves very differently from flash (bytes
//! saved matter little; the seek dominates).

use crate::ssd::{Completion, DeviceStats, IoKind};

/// HDD timing parameters. Defaults approximate a 7 200 rpm SATA disk of
/// the paper's era.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HddTiming {
    /// Fixed command overhead (ns).
    pub overhead_ns: u64,
    /// Minimum (track-to-track) seek (ns).
    pub seek_min_ns: u64,
    /// Full-stroke seek (ns).
    pub seek_max_ns: u64,
    /// Average rotational latency (ns) — half a revolution.
    pub rotation_ns: u64,
    /// Media transfer rate (ns per byte).
    pub transfer_ns_per_byte: f64,
}

impl Default for HddTiming {
    fn default() -> Self {
        HddTiming {
            overhead_ns: 100_000,        // 0.1 ms controller/queue overhead
            seek_min_ns: 500_000,        // 0.5 ms track-to-track
            seek_max_ns: 15_000_000,     // 15 ms full stroke
            rotation_ns: 4_170_000,      // 7200 rpm → 8.33 ms/rev, avg half
            transfer_ns_per_byte: 8.0,   // ~125 MB/s media rate
        }
    }
}

/// A simulated hard disk drive.
#[derive(Debug, Clone)]
pub struct HddDevice {
    logical_bytes: u64,
    timing: HddTiming,
    /// Current head position (byte offset; proxy for cylinder).
    head: u64,
    busy_until: u64,
    stats: DeviceStats,
}

impl HddDevice {
    /// Create a disk of `logical_bytes` capacity.
    pub fn new(logical_bytes: u64, timing: HddTiming) -> Self {
        assert!(logical_bytes > 0);
        HddDevice { logical_bytes, timing, head: 0, busy_until: 0, stats: DeviceStats::default() }
    }

    /// Exported capacity in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    /// Earliest time a new request could start service.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Seek time from the current head position to `offset`: settle time
    /// plus a square-root distance profile (the standard seek model —
    /// acceleration-limited short seeks, velocity-limited long ones).
    fn seek_ns(&self, offset: u64) -> u64 {
        if offset == self.head {
            return 0;
        }
        let dist = offset.abs_diff(self.head) as f64 / self.logical_bytes as f64;
        let span = (self.timing.seek_max_ns - self.timing.seek_min_ns) as f64;
        self.timing.seek_min_ns + (span * dist.sqrt()) as u64
    }

    /// Submit an I/O; same contract as [`crate::SsdDevice::submit`].
    pub fn submit(&mut self, now_ns: u64, kind: IoKind, offset: u64, len: u32) -> Completion {
        assert!(len > 0, "zero-length I/O");
        let offset = offset % self.logical_bytes;
        let len = u64::from(len).min(self.logical_bytes - offset);
        // Sequential continuation (head already at the target) skips both
        // seek and rotation.
        let positioning = if offset == self.head {
            0
        } else {
            self.seek_ns(offset) + self.timing.rotation_ns
        };
        let service = self.timing.overhead_ns
            + positioning
            + (len as f64 * self.timing.transfer_ns_per_byte) as u64;
        let start_ns = now_ns.max(self.busy_until);
        let finish_ns = start_ns + service;
        self.busy_until = finish_ns;
        self.head = offset + len;
        self.stats.busy_ns += service;
        match kind {
            IoKind::Read => {
                self.stats.reads += 1;
                self.stats.bytes_read += len;
            }
            IoKind::Write => {
                self.stats.writes += 1;
                self.stats.bytes_written += len;
            }
        }
        Completion { start_ns, finish_ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> HddDevice {
        HddDevice::new(1 << 30, HddTiming::default())
    }

    #[test]
    fn sequential_io_streams_at_media_rate() {
        let mut d = disk();
        // Position the head, then stream.
        d.submit(0, IoKind::Read, 0, 65536);
        let now = d.busy_until();
        let c = d.submit(now, IoKind::Read, 65536, 65536);
        let service = c.finish_ns - c.start_ns;
        let expected = d.timing.overhead_ns + (65536.0 * d.timing.transfer_ns_per_byte) as u64;
        assert_eq!(service, expected, "no seek/rotation for sequential I/O");
    }

    #[test]
    fn random_io_pays_seek_and_rotation() {
        let mut d = disk();
        d.submit(0, IoKind::Read, 0, 4096);
        let now = d.busy_until();
        let c = d.submit(now, IoKind::Read, 512 << 20, 4096);
        let service = c.finish_ns - c.start_ns;
        assert!(
            service > d.timing.rotation_ns + d.timing.seek_min_ns,
            "random read must pay positioning, got {service}"
        );
    }

    #[test]
    fn longer_seeks_cost_more() {
        let mut near = disk();
        near.submit(0, IoKind::Read, 0, 4096);
        let c_near = near.submit(near.busy_until(), IoKind::Read, 1 << 20, 4096);
        let mut far = disk();
        far.submit(0, IoKind::Read, 0, 4096);
        let c_far = far.submit(far.busy_until(), IoKind::Read, 900 << 20, 4096);
        assert!(
            c_far.finish_ns - c_far.start_ns > c_near.finish_ns - c_near.start_ns,
            "far seek must cost more"
        );
    }

    #[test]
    fn seek_profile_is_bounded() {
        let d = disk();
        assert_eq!(d.seek_ns(0), 0);
        let full = d.seek_ns(d.logical_bytes() - 1);
        assert!(full <= d.timing.seek_max_ns + 1000);
        assert!(full >= d.timing.seek_min_ns);
    }

    #[test]
    fn random_4k_is_milliseconds_vs_ssd_microseconds() {
        // The motivating contrast: an HDD random 4 KiB I/O costs ~10 ms,
        // three orders above the simulated SSD's ~37 µs.
        let mut d = disk();
        d.submit(0, IoKind::Read, 0, 4096);
        let c = d.submit(d.busy_until(), IoKind::Read, 700 << 20, 4096);
        let ms = (c.finish_ns - c.start_ns) as f64 / 1e6;
        assert!((4.0..25.0).contains(&ms), "random 4 KiB read {ms} ms");
    }

    #[test]
    fn queueing_serializes() {
        let mut d = disk();
        let a = d.submit(100, IoKind::Write, 0, 4096);
        let b = d.submit(100, IoKind::Write, 8 << 20, 4096);
        assert_eq!(b.start_ns, a.finish_ns);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = disk();
        d.submit(0, IoKind::Write, 0, 4096);
        d.submit(0, IoKind::Read, 1 << 20, 8192);
        let s = d.stats();
        assert_eq!((s.writes, s.reads), (1, 1));
        assert_eq!(s.bytes_written, 4096);
        assert_eq!(s.bytes_read, 8192);
    }

    #[test]
    fn offsets_wrap() {
        let mut d = disk();
        let c = d.submit(0, IoKind::Read, (1 << 30) + 4096, 4096);
        assert!(c.finish_ns > 0);
    }
}
