//! RAIS — Redundant Array of Independent SSDs (the paper's §IV-B term) —
//! striping simulated devices into one logical volume.
//!
//! * **RAIS0** stripes data across all `N` devices.
//! * **RAIS5** stripes data across `N-1` devices per row with rotating
//!   parity; partial-chunk writes pay the classic small-write penalty
//!   (read old data, read old parity, write data, write parity), while
//!   full-row writes compute parity in memory and pay one parity write.
//!
//! Sub-I/Os to different devices proceed in parallel (each device has its
//! own service chain); the array completion is the slowest leg — so the
//! array preserves the single-device trend of Fig. 10, which is what
//! Fig. 11 demonstrates.

use crate::config::SsdConfig;
use crate::ftl::FtlStats;
use crate::ssd::{Completion, DeviceStats, IoKind, SsdDevice};

/// Supported array levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaisLevel {
    /// Striping, no redundancy.
    Rais0,
    /// Rotating parity (RAID-5 analogue). Requires ≥ 3 devices.
    Rais5,
}

/// An array of simulated SSDs.
#[derive(Debug, Clone)]
pub struct RaisArray {
    level: RaisLevel,
    devices: Vec<SsdDevice>,
    /// Stripe unit (chunk) in bytes.
    chunk: u64,
}

impl RaisArray {
    /// Build an array of `n` identical devices.
    ///
    /// # Panics
    /// Panics if `n` is too small for the level or `chunk` is not
    /// sector-aligned.
    pub fn new(level: RaisLevel, n: usize, cfg: SsdConfig, chunk: u64) -> Self {
        match level {
            RaisLevel::Rais0 => assert!(n >= 2, "RAIS0 needs at least 2 devices"),
            RaisLevel::Rais5 => assert!(n >= 3, "RAIS5 needs at least 3 devices"),
        }
        assert!(chunk > 0 && chunk.is_multiple_of(4096), "chunk must be a multiple of 4 KiB");
        let devices = (0..n).map(|_| SsdDevice::new(cfg)).collect();
        RaisArray { level, devices, chunk }
    }

    /// Number of member devices.
    pub fn width(&self) -> usize {
        self.devices.len()
    }

    /// Array level.
    pub fn level(&self) -> RaisLevel {
        self.level
    }

    /// Data devices per stripe row.
    fn data_width(&self) -> u64 {
        match self.level {
            RaisLevel::Rais0 => self.devices.len() as u64,
            RaisLevel::Rais5 => self.devices.len() as u64 - 1,
        }
    }

    /// Exported logical capacity in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.data_width() * self.devices[0].logical_bytes()
    }

    /// Aggregate host statistics over all members.
    pub fn stats(&self) -> DeviceStats {
        self.devices.iter().fold(DeviceStats::default(), |mut acc, d| {
            let s = d.stats();
            acc.reads += s.reads;
            acc.writes += s.writes;
            acc.bytes_read += s.bytes_read;
            acc.bytes_written += s.bytes_written;
            acc.busy_ns += s.busy_ns;
            acc.gc_stall_ns += s.gc_stall_ns;
            acc
        })
    }

    /// Aggregate FTL statistics over all members.
    pub fn ftl_stats(&self) -> FtlStats {
        self.devices.iter().fold(FtlStats::default(), |mut acc, d| {
            let s = d.ftl_stats();
            acc.user_sectors_written += s.user_sectors_written;
            acc.migrated_sectors += s.migrated_sectors;
            acc.erases += s.erases;
            acc.gc_runs += s.gc_runs;
            acc
        })
    }

    /// Access a member device (for inspection in tests/reports).
    pub fn device(&self, i: usize) -> &SsdDevice {
        &self.devices[i]
    }

    /// Precondition every member.
    pub fn precondition(&mut self, fraction: f64) {
        for d in &mut self.devices {
            d.precondition(fraction);
        }
    }

    /// Locate a data chunk: `(device index, device byte offset)` for global
    /// chunk index `ci`.
    fn locate(&self, ci: u64) -> (usize, u64) {
        let n = self.devices.len() as u64;
        match self.level {
            RaisLevel::Rais0 => {
                let dev = (ci % n) as usize;
                let row = ci / n;
                (dev, row * self.chunk)
            }
            RaisLevel::Rais5 => {
                let dw = n - 1;
                let row = ci / dw;
                let pos = ci % dw;
                let parity_dev = (row % n) as usize;
                let dev = if (pos as usize) < parity_dev { pos as usize } else { pos as usize + 1 };
                (dev, row * self.chunk)
            }
        }
    }

    /// Parity device and offset for a stripe row.
    fn parity_of(&self, row: u64) -> (usize, u64) {
        let n = self.devices.len() as u64;
        ((row % n) as usize, row * self.chunk)
    }

    /// Submit one host I/O at `now_ns`; returns the array-level completion
    /// (the slowest sub-I/O).
    pub fn submit(&mut self, now_ns: u64, kind: IoKind, offset: u64, len: u32) -> Completion {
        assert!(len > 0, "zero-length I/O");
        let offset = offset % self.logical_bytes();
        let len = u64::from(len).min(self.logical_bytes() - offset);
        let mut span = Span { start_ns: u64::MAX, finish_ns: 0 };

        match (self.level, kind) {
            (_, IoKind::Read) | (RaisLevel::Rais0, IoKind::Write) => {
                // Straight striping: split across chunks.
                let mut pos = offset;
                let end = offset + len;
                while pos < end {
                    let ci = pos / self.chunk;
                    let within = pos % self.chunk;
                    let take = (self.chunk - within).min(end - pos);
                    let (dev, dev_off) = self.locate(ci);
                    span.track(self.devices[dev].submit(now_ns, kind, dev_off + within, take as u32));
                    pos += take;
                }
            }
            (RaisLevel::Rais5, IoKind::Write) => {
                let dw = self.data_width();
                let row_bytes = dw * self.chunk;
                let mut pos = offset;
                let end = offset + len;
                while pos < end {
                    let row = pos / row_bytes;
                    let row_start = row * row_bytes;
                    let row_end = row_start + row_bytes;
                    let seg_end = end.min(row_end);
                    let full_row = pos == row_start && seg_end == row_end;
                    let (pdev, poff) = self.parity_of(row);
                    if full_row {
                        // Full-stripe write: data chunks + one parity chunk,
                        // computed in memory.
                        for k in 0..dw {
                            let ci = row * dw + k;
                            let (dev, dev_off) = self.locate(ci);
                            span.track(self.devices[dev].submit(
                                now_ns,
                                IoKind::Write,
                                dev_off,
                                self.chunk as u32,
                            ));
                        }
                        span.track(self.devices[pdev].submit(
                            now_ns,
                            IoKind::Write,
                            poff,
                            self.chunk as u32,
                        ));
                    } else {
                        // Partial row: per touched chunk, read-modify-write
                        // of data and parity.
                        let mut p = pos;
                        while p < seg_end {
                            let ci = p / self.chunk;
                            let within = p % self.chunk;
                            let take = (self.chunk - within).min(seg_end - p);
                            let (dev, dev_off) = self.locate(ci);
                            // Read old data, read old parity (parallel).
                            let r1 = self.devices[dev].submit(
                                now_ns,
                                IoKind::Read,
                                dev_off + within,
                                take as u32,
                            );
                            let r2 = self.devices[pdev].submit(
                                now_ns,
                                IoKind::Read,
                                poff + within,
                                take as u32,
                            );
                            let ready = r1.finish_ns.max(r2.finish_ns);
                            // Write new data and new parity once both reads
                            // are in.
                            span.track(self.devices[dev].submit(
                                ready,
                                IoKind::Write,
                                dev_off + within,
                                take as u32,
                            ));
                            span.track(self.devices[pdev].submit(
                                ready,
                                IoKind::Write,
                                poff + within,
                                take as u32,
                            ));
                            span.track(r1);
                            span.track(r2);
                            p += take;
                        }
                    }
                    pos = seg_end;
                }
            }
        }
        Completion { start_ns: span.start_ns, finish_ns: span.finish_ns }
    }
}

/// Min-start / max-finish accumulator over parallel sub-I/Os.
struct Span {
    start_ns: u64,
    finish_ns: u64,
}

impl Span {
    fn track(&mut self, c: Completion) {
        self.start_ns = self.start_ns.min(c.start_ns);
        self.finish_ns = self.finish_ns.max(c.finish_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member_cfg() -> SsdConfig {
        SsdConfig {
            logical_bytes: 16 << 20,
            overprovision: 0.25,
            sectors_per_block: 64,
            gc_low_watermark: 3,
            ..SsdConfig::default()
        }
    }

    fn rais5() -> RaisArray {
        RaisArray::new(RaisLevel::Rais5, 5, member_cfg(), 65536)
    }

    fn rais0() -> RaisArray {
        RaisArray::new(RaisLevel::Rais0, 5, member_cfg(), 65536)
    }

    #[test]
    fn capacities() {
        assert_eq!(rais0().logical_bytes(), 5 * (16 << 20));
        assert_eq!(rais5().logical_bytes(), 4 * (16 << 20));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn rais5_needs_three_devices() {
        let _ = RaisArray::new(RaisLevel::Rais5, 2, member_cfg(), 65536);
    }

    #[test]
    fn rais0_spreads_chunks_round_robin() {
        let mut a = rais0();
        // Write 5 chunks: each device must receive exactly one.
        for i in 0..5u64 {
            a.submit(0, IoKind::Write, i * 65536, 65536);
        }
        for d in 0..5 {
            assert_eq!(a.device(d).stats().writes, 1, "device {d}");
        }
    }

    #[test]
    fn rais5_rotates_parity() {
        let mut a = rais5();
        // Full-row writes across 5 rows: every device must see both data
        // and parity roles, i.e. 5 writes per row × 5 rows spread evenly.
        let row_bytes = 4 * 65536;
        for r in 0..5u64 {
            a.submit(0, IoKind::Write, r * row_bytes, row_bytes as u32);
        }
        for d in 0..5 {
            assert_eq!(a.device(d).stats().writes, 5, "device {d}");
        }
    }

    #[test]
    fn rais5_small_write_penalty() {
        // A 4 KiB write on RAIS5 costs 2 reads + 2 writes; on RAIS0 just 1
        // write. RAIS5 latency must be visibly higher.
        let mut a5 = rais5();
        let mut a0 = rais0();
        let c5 = a5.submit(0, IoKind::Write, 0, 4096);
        let c0 = a0.submit(0, IoKind::Write, 0, 4096);
        assert!(
            c5.finish_ns > c0.finish_ns,
            "RAIS5 {} !> RAIS0 {}",
            c5.finish_ns,
            c0.finish_ns
        );
        // And it must have touched exactly two devices with 1R+1W each.
        let s = a5.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 2);
    }

    #[test]
    fn full_stripe_write_avoids_rmw() {
        let mut a = rais5();
        let row_bytes = 4 * 65536u32;
        let c = a.submit(0, IoKind::Write, 0, row_bytes);
        let s = a.stats();
        assert_eq!(s.reads, 0, "full-stripe write must not read");
        assert_eq!(s.writes, 5, "4 data + 1 parity");
        assert!(c.finish_ns > 0);
    }

    #[test]
    fn reads_never_touch_parity() {
        let mut a = rais5();
        a.submit(0, IoKind::Read, 0, 4 * 65536);
        assert_eq!(a.stats().reads, 4);
        assert_eq!(a.stats().writes, 0);
    }

    #[test]
    fn parallel_legs_overlap() {
        // A 4-chunk read lands on 4 devices in parallel: array latency must
        // be far less than the sum of four serial chunk reads.
        let mut a = rais0();
        let c = a.submit(0, IoKind::Read, 0, 4 * 65536);
        let mut single = rais0();
        let one = single.submit(0, IoKind::Read, 0, 65536);
        let serial_estimate = 4 * (one.finish_ns - one.start_ns);
        assert!(
            c.finish_ns - c.start_ns < serial_estimate / 2,
            "array read {} vs serial {}",
            c.finish_ns - c.start_ns,
            serial_estimate
        );
    }

    #[test]
    fn array_preserves_linear_size_scaling() {
        // Within one chunk the single-device linearity passes through.
        let mut a = rais0();
        let c1 = a.submit(a.device(0).busy_until(), IoKind::Read, 0, 4096);
        let t1 = c1.finish_ns - c1.start_ns;
        let now = (0..5).map(|i| a.device(i).busy_until()).max().unwrap();
        let c2 = a.submit(now, IoKind::Read, 0, 32768);
        let t2 = c2.finish_ns - c2.start_ns;
        assert!(t2 > t1);
    }

    #[test]
    fn offsets_wrap_at_array_capacity() {
        let mut a = rais0();
        let cap = a.logical_bytes();
        let c = a.submit(0, IoKind::Write, cap + 8192, 4096);
        assert!(c.finish_ns > 0);
        assert_eq!(a.stats().writes, 1);
    }

    #[test]
    fn aggregate_stats_sum_members() {
        let mut a = rais0();
        a.submit(0, IoKind::Write, 0, 65536 * 3);
        let s = a.stats();
        assert_eq!(s.writes, 3);
        assert_eq!(s.bytes_written, 65536 * 3);
    }
}
