//! RAIS — Redundant Array of Independent SSDs (the paper's §IV-B term) —
//! striping simulated devices into one fault-tolerant logical volume.
//!
//! * **RAIS0** stripes data across all `N` devices, no redundancy.
//! * **RAIS5** stripes data across `N-1` devices per row with rotating
//!   parity; partial-chunk writes pay the classic small-write penalty
//!   (read old data, read old parity, write data, write parity), while
//!   full-row writes compute parity in memory and pay one parity write.
//!
//! Two planes coexist:
//!
//! * The **timing plane** ([`RaisArray::submit`]) services byte-addressed
//!   host I/O against the member devices, preserved unchanged from the
//!   fair-weather striper: sub-I/Os to different devices proceed in
//!   parallel and the array completion is the slowest leg, which is how
//!   the array preserves the single-device trend of Fig. 10 (what Fig. 11
//!   demonstrates). It is for healthy, unfaulted arrays only.
//! * The **data plane** ([`RaisArray::write_row`], [`RaisArray::read_chunk`]
//!   and friends) stores caller-provided *compressed* chunk payloads and
//!   is where fault tolerance lives. Parity is computed over the
//!   compressed runs of a row: every data leg is zero-padded to the length
//!   of the **largest compressed chunk in that row** and XORed, so the
//!   parity leg shrinks with the achieved compression ratio instead of
//!   always costing a full chunk — the Elastic-RAID observation that
//!   compression-aware parity cuts the RAID write penalty. The space the
//!   ratio frees is exported as elastic *virtual capacity*
//!   ([`RaisArray::capacity`]).
//!
//! Fault tolerance: members can be killed wholesale
//! ([`RaisArray::kill_member`]), reads of a lost member's chunks are
//! served **degraded** by XOR-reconstruction from the surviving row,
//! rotted chunks detected by checksum are repaired from parity with a
//! durable write-back, and [`RaisArray::rebuild`] walks stripes
//! reconstructing onto a replacement device while foreground I/O
//! continues (reconstruction operates on the compressed bytes directly —
//! nothing is decompressed that reconstruction does not require).
//! Per-member fault plans derive decorrelated seeds from one base plan via
//! [`crate::fault::lane_seed`], the same scheme the sharded pipeline uses
//! per shard.

use crate::config::{ConfigError, SsdConfig};
use crate::fault::{FaultError, FaultPlan, FaultStats};
use crate::ftl::{FtlStats, IntegrityError};
use crate::ssd::{Completion, DeviceStats, IoKind, SsdDevice};

/// Supported array levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaisLevel {
    /// Striping, no redundancy.
    Rais0,
    /// Rotating parity (RAID-5 analogue). Requires ≥ 3 devices.
    Rais5,
}

/// Why a chunk could not be recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossReason {
    /// RAIS0 has no parity: a failed member or corrupt chunk is gone.
    NoRedundancy,
    /// A second fault in the same row (corrupt or unavailable sibling or
    /// parity leg) while reconstructing — the URE-during-rebuild scenario.
    DoubleFault,
}

/// A typed array-level error. Shape errors replace the old constructor
/// panics; data-plane errors make loss explicit instead of silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayError {
    /// Too few member devices for the requested level.
    TooFewMembers {
        /// Requested level.
        level: RaisLevel,
        /// Members given.
        members: usize,
        /// Minimum the level needs.
        required: usize,
    },
    /// Chunk size must be a positive multiple of 4 KiB.
    BadChunk {
        /// The rejected chunk size.
        chunk: u64,
    },
    /// Chunk size must divide the member capacity so rows tile exactly.
    ChunkVsCapacity {
        /// The chunk size.
        chunk: u64,
        /// The member logical capacity it does not divide.
        member_bytes: u64,
    },
    /// The member device configuration is invalid.
    Config(ConfigError),
    /// Member index out of range.
    BadMember {
        /// The rejected index.
        member: usize,
        /// Array width.
        width: usize,
    },
    /// Stripe row out of range.
    BadRow {
        /// The rejected row.
        row: u64,
        /// Rows in the array.
        rows: u64,
    },
    /// Data position within a row out of range.
    BadPosition {
        /// The rejected position.
        pos: usize,
        /// Data legs per row.
        data_width: usize,
    },
    /// `write_row` was given the wrong number of payloads.
    WrongWidth {
        /// Payloads given.
        given: usize,
        /// Data legs per row.
        data_width: usize,
    },
    /// A chunk payload was empty.
    EmptyChunk,
    /// A chunk payload exceeds the stripe unit.
    ChunkTooLarge {
        /// Payload length.
        len: usize,
        /// Stripe unit.
        chunk: u64,
    },
    /// No chunk has been stored at this location.
    NotStored {
        /// Stripe row.
        row: u64,
        /// Data position.
        pos: usize,
    },
    /// Rebuild was requested on a member that is not failed.
    NotFailed {
        /// The member.
        member: usize,
    },
    /// A rebuild step was requested on a member that is not rebuilding.
    NotRebuilding {
        /// The member.
        member: usize,
    },
    /// The chunk is genuinely lost — detected, typed, never silent.
    Unrecoverable {
        /// Stripe row.
        row: u64,
        /// Data position.
        pos: usize,
        /// Why recovery failed.
        reason: LossReason,
    },
    /// A member device fault surfaced through the array.
    Fault(FaultError),
}

impl core::fmt::Display for ArrayError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ArrayError::TooFewMembers { level, members, required } => write!(
                f,
                "{level:?} needs at least {required} devices, got {members}"
            ),
            ArrayError::BadChunk { chunk } => {
                write!(f, "chunk must be a positive multiple of 4 KiB, got {chunk}")
            }
            ArrayError::ChunkVsCapacity { chunk, member_bytes } => write!(
                f,
                "chunk {chunk} must divide the member capacity {member_bytes}"
            ),
            ArrayError::Config(e) => write!(f, "member config: {e}"),
            ArrayError::BadMember { member, width } => {
                write!(f, "member {member} out of range (width {width})")
            }
            ArrayError::BadRow { row, rows } => {
                write!(f, "row {row} out of range ({rows} rows)")
            }
            ArrayError::BadPosition { pos, data_width } => {
                write!(f, "position {pos} out of range (data width {data_width})")
            }
            ArrayError::WrongWidth { given, data_width } => {
                write!(f, "write_row wants {data_width} payloads, got {given}")
            }
            ArrayError::EmptyChunk => write!(f, "empty chunk payload"),
            ArrayError::ChunkTooLarge { len, chunk } => {
                write!(f, "payload of {len} bytes exceeds the {chunk}-byte stripe unit")
            }
            ArrayError::NotStored { row, pos } => {
                write!(f, "no chunk stored at row {row} position {pos}")
            }
            ArrayError::NotFailed { member } => {
                write!(f, "member {member} is not failed; nothing to rebuild")
            }
            ArrayError::NotRebuilding { member } => {
                write!(f, "member {member} is not rebuilding")
            }
            ArrayError::Unrecoverable { row, pos, reason } => {
                let why = match reason {
                    LossReason::NoRedundancy => "no redundancy at this level",
                    LossReason::DoubleFault => "double fault in the row",
                };
                write!(f, "chunk at row {row} position {pos} unrecoverable: {why}")
            }
            ArrayError::Fault(e) => write!(f, "member fault: {e}"),
        }
    }
}

impl std::error::Error for ArrayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArrayError::Config(e) => Some(e),
            ArrayError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultError> for ArrayError {
    fn from(e: FaultError) -> Self {
        ArrayError::Fault(e)
    }
}

impl From<ConfigError> for ArrayError {
    fn from(e: ConfigError) -> Self {
        ArrayError::Config(e)
    }
}

/// One violated array invariant, found by [`RaisArray::verify_integrity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayIntegrityError {
    /// A member device's FTL failed its own integrity check.
    Member {
        /// Which member.
        member: usize,
        /// The FTL violation.
        error: IntegrityError,
    },
    /// A stored chunk disagrees with its recorded length or checksum.
    MetaMismatch {
        /// Stripe row.
        row: u64,
        /// Member holding the chunk.
        member: usize,
    },
    /// A fully-populated row's legs do not XOR to its stored parity.
    ParityMismatch {
        /// Stripe row.
        row: u64,
    },
}

impl core::fmt::Display for ArrayIntegrityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ArrayIntegrityError::Member { member, error } => {
                write!(f, "member {member}: {error}")
            }
            ArrayIntegrityError::MetaMismatch { row, member } => {
                write!(f, "row {row} member {member}: stored bytes disagree with metadata")
            }
            ArrayIntegrityError::ParityMismatch { row } => {
                write!(f, "row {row}: legs do not XOR to parity")
            }
        }
    }
}

impl std::error::Error for ArrayIntegrityError {}

/// Lifecycle of one member device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Serving I/O normally.
    Healthy,
    /// Whole-device failure: every access errors, stored chunks are gone.
    Failed,
    /// A replacement device is being populated by [`RaisArray::rebuild_step`].
    Rebuilding {
        /// First row not yet reconstructed.
        next_row: u64,
    },
}

/// How a chunk read was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Straight from the member holding it.
    Direct,
    /// Reconstructed from parity + surviving legs (member lost or stale).
    Degraded,
    /// Corruption was detected by checksum, reconstructed from parity and
    /// durably written back to the member.
    Repaired,
}

/// A served chunk read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRead {
    /// The chunk payload, bit-identical to what was written.
    pub data: Vec<u8>,
    /// Array-level timing (slowest leg involved).
    pub completion: Completion,
    /// How the read was served.
    pub mode: ReadMode,
}

/// Repair/degraded-path counters for campaign reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Reads served by reconstruction because the member was unavailable.
    pub degraded_reads: u64,
    /// Chunks whose corruption was detected and durably repaired.
    pub repaired_chunks: u64,
    /// Bytes written back by those repairs.
    pub repaired_bytes: u64,
}

/// Progress of an online rebuild.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebuildProgress {
    /// The member being rebuilt.
    pub member: usize,
    /// Rows processed so far (cumulative cursor).
    pub rows_done: u64,
    /// Total rows in the array.
    pub total_rows: u64,
    /// Chunks reconstructed onto the replacement in this call.
    pub reconstructed_chunks: u64,
    /// Bytes reconstructed in this call.
    pub reconstructed_bytes: u64,
    /// Chunks that could not be reconstructed (double faults) in this call.
    pub lost_chunks: u64,
    /// Whether the member is healthy again.
    pub done: bool,
}

/// Outcome of a full-array scrub pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArrayScrubReport {
    /// Stripe rows visited.
    pub rows_scanned: u64,
    /// Chunks fetched and checksum-verified.
    pub chunks_verified: u64,
    /// Corrupt chunks repaired from redundancy.
    pub repaired: u64,
    /// Corrupt chunks that could not be repaired (loss).
    pub unrepaired: u64,
}

/// Capacity accounting: physical, stored, and elastic virtual bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CapacityReport {
    /// Fixed exported logical capacity (data legs × member capacity).
    pub exported_bytes: u64,
    /// Logical bytes currently represented by stored chunks.
    pub logical_stored_bytes: u64,
    /// Compressed bytes those chunks occupy.
    pub physical_data_bytes: u64,
    /// Compressed parity bytes currently resident.
    pub parity_bytes: u64,
    /// Cumulative parity bytes written (compressed parity legs).
    pub parity_bytes_written: u64,
    /// What a compression-blind array would have written for the same
    /// parity updates (one full chunk each).
    pub parity_control_bytes: u64,
    /// Elastic virtual capacity: exported × achieved compression ratio.
    pub virtual_bytes: u64,
}

/// Chunk metadata recorded at write time — the durable source of truth a
/// fetch is verified against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LegMeta {
    /// Stored (compressed) length in bytes.
    len: u32,
    /// Checksum of the stored bytes.
    crc: u64,
}

/// Per-row metadata: one slot per data position plus the parity leg.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RowMeta {
    legs: Vec<Option<LegMeta>>,
    parity: Option<LegMeta>,
}

#[derive(Debug, Clone)]
struct Member {
    dev: SsdDevice,
    state: MemberState,
    /// Stored chunk payloads by row (`None` = nothing resident here).
    chunks: Vec<Option<Vec<u8>>>,
}

/// An array of simulated SSDs.
#[derive(Debug, Clone)]
pub struct RaisArray {
    level: RaisLevel,
    cfg: SsdConfig,
    base_fault: FaultPlan,
    members: Vec<Member>,
    /// Stripe unit (chunk) in bytes.
    chunk: u64,
    rows: u64,
    rows_meta: Vec<Option<RowMeta>>,
    logical_stored: u64,
    physical_data: u64,
    parity_stored: u64,
    parity_bytes_written: u64,
    parity_control_bytes: u64,
    repairs: RepairStats,
}

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Dependency-free 64-bit checksum of a chunk payload.
fn chunk_crc(data: &[u8]) -> u64 {
    let mut h = mix64(data.len() as u64 ^ 0xC0DE_C0DE_C0DE_C0DE);
    for word in data.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..word.len()].copy_from_slice(word);
        h = mix64(h ^ u64::from_le_bytes(buf));
    }
    h
}

/// XOR `src` into `acc`, growing `acc` with zeroes if `src` is longer.
fn xor_into(acc: &mut Vec<u8>, src: &[u8]) {
    if src.len() > acc.len() {
        acc.resize(src.len(), 0);
    }
    for (a, b) in acc.iter_mut().zip(src) {
        *a ^= *b;
    }
}

/// Min-start / max-finish accumulator over parallel sub-I/Os.
struct Span {
    start_ns: u64,
    finish_ns: u64,
}

impl Span {
    fn new() -> Span {
        Span { start_ns: u64::MAX, finish_ns: 0 }
    }

    fn track(&mut self, c: Completion) {
        self.start_ns = self.start_ns.min(c.start_ns);
        self.finish_ns = self.finish_ns.max(c.finish_ns);
    }

    fn completion(&self, now_ns: u64) -> Completion {
        if self.start_ns == u64::MAX {
            Completion { start_ns: now_ns, finish_ns: now_ns }
        } else {
            Completion { start_ns: self.start_ns, finish_ns: self.finish_ns }
        }
    }
}

impl RaisArray {
    /// Build an array of `n` identical devices with stripe unit `chunk`.
    ///
    /// Shape problems come back as typed [`ArrayError`]s instead of the
    /// panics the old constructor threw. Each member derives a
    /// decorrelated fault seed from `cfg.fault` via
    /// [`FaultPlan::for_lane`] (member 0 keeps the base seed).
    pub fn new(level: RaisLevel, n: usize, cfg: SsdConfig, chunk: u64) -> Result<Self, ArrayError> {
        let required = match level {
            RaisLevel::Rais0 => 2,
            RaisLevel::Rais5 => 3,
        };
        if n < required {
            return Err(ArrayError::TooFewMembers { level, members: n, required });
        }
        if chunk == 0 || !chunk.is_multiple_of(4096) {
            return Err(ArrayError::BadChunk { chunk });
        }
        cfg.check()?;
        if !cfg.logical_bytes.is_multiple_of(chunk) {
            return Err(ArrayError::ChunkVsCapacity { chunk, member_bytes: cfg.logical_bytes });
        }
        let rows = cfg.logical_bytes / chunk;
        let base_fault = cfg.fault;
        let members = (0..n)
            .map(|i| Member {
                dev: SsdDevice::new(SsdConfig { fault: base_fault.for_lane(i), ..cfg }),
                state: MemberState::Healthy,
                chunks: vec![None; rows as usize],
            })
            .collect();
        Ok(RaisArray {
            level,
            cfg,
            base_fault,
            members,
            chunk,
            rows,
            rows_meta: (0..rows).map(|_| None).collect(),
            logical_stored: 0,
            physical_data: 0,
            parity_stored: 0,
            parity_bytes_written: 0,
            parity_control_bytes: 0,
            repairs: RepairStats::default(),
        })
    }

    /// Number of member devices.
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// Array level.
    pub fn level(&self) -> RaisLevel {
        self.level
    }

    /// Stripe unit in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk
    }

    /// Stripe rows in the array.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Data devices per stripe row.
    pub fn data_width(&self) -> usize {
        match self.level {
            RaisLevel::Rais0 => self.members.len(),
            RaisLevel::Rais5 => self.members.len() - 1,
        }
    }

    /// Exported logical capacity in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.data_width() as u64 * self.cfg.logical_bytes
    }

    /// Aggregate host statistics over all members.
    pub fn stats(&self) -> DeviceStats {
        self.members.iter().fold(DeviceStats::default(), |mut acc, m| {
            acc.merge(&m.dev.stats());
            acc
        })
    }

    /// Aggregate FTL statistics over all members (including TRIM and
    /// retired-block counters).
    pub fn ftl_stats(&self) -> FtlStats {
        self.members.iter().fold(FtlStats::default(), |mut acc, m| {
            acc.merge(&m.dev.ftl_stats());
            acc
        })
    }

    /// Aggregate injected-fault counters over all members.
    pub fn fault_stats(&self) -> FaultStats {
        self.members.iter().fold(FaultStats::default(), |mut acc, m| {
            acc.merge(&m.dev.fault_stats());
            acc
        })
    }

    /// Repair/degraded-path counters.
    pub fn repair_stats(&self) -> RepairStats {
        self.repairs
    }

    /// Access a member device (for inspection in tests/reports).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn device(&self, i: usize) -> &SsdDevice {
        &self.members[i].dev
    }

    /// Lifecycle state of member `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn member_state(&self, i: usize) -> MemberState {
        self.members[i].state
    }

    /// Re-arm fault injection: `base` becomes the array's base plan and
    /// every member gets the lane-derived plan for its index, restarting
    /// each decision stream (member 0 keeps the base seed).
    pub fn set_member_fault_plans(&mut self, base: FaultPlan) {
        self.base_fault = base;
        for (i, m) in self.members.iter_mut().enumerate() {
            m.dev.set_fault_plan(base.for_lane(i));
        }
    }

    /// Replace one member's fault plan, leaving the others untouched —
    /// the campaign hook for arming bit rot on a single device at a
    /// time. Single-member rot is the survivable pattern by
    /// construction: every corrupt leg reconstructs from siblings on
    /// clean devices, so a zero-loss gate over it is structural, not a
    /// property of the seed.
    pub fn set_member_fault_plan(&mut self, i: usize, plan: FaultPlan) -> Result<(), ArrayError> {
        if i >= self.members.len() {
            return Err(ArrayError::BadMember { member: i, width: self.members.len() });
        }
        self.members[i].dev.set_fault_plan(plan);
        Ok(())
    }

    /// Precondition every member.
    pub fn precondition(&mut self, fraction: f64) {
        for m in &mut self.members {
            m.dev.precondition(fraction);
        }
    }

    /// Capacity accounting, including the elastic virtual capacity the
    /// achieved compression ratio exposes.
    pub fn capacity(&self) -> CapacityReport {
        let exported = self.logical_bytes();
        let ratio = if self.physical_data > 0 {
            self.logical_stored as f64 / self.physical_data as f64
        } else {
            1.0
        };
        CapacityReport {
            exported_bytes: exported,
            logical_stored_bytes: self.logical_stored,
            physical_data_bytes: self.physical_data,
            parity_bytes: self.parity_stored,
            parity_bytes_written: self.parity_bytes_written,
            parity_control_bytes: self.parity_control_bytes,
            virtual_bytes: (exported as f64 * ratio) as u64,
        }
    }

    /// Member index holding data position `pos` of `row`.
    fn data_member(&self, row: u64, pos: usize) -> usize {
        match self.level {
            RaisLevel::Rais0 => pos,
            RaisLevel::Rais5 => {
                let pdev = (row % self.members.len() as u64) as usize;
                if pos < pdev {
                    pos
                } else {
                    pos + 1
                }
            }
        }
    }

    /// Member index holding the parity leg of `row` (RAIS5 only).
    fn parity_member(&self, row: u64) -> usize {
        (row % self.members.len() as u64) as usize
    }

    fn check_row_pos(&self, row: u64, pos: usize) -> Result<(), ArrayError> {
        if row >= self.rows {
            return Err(ArrayError::BadRow { row, rows: self.rows });
        }
        if pos >= self.data_width() {
            return Err(ArrayError::BadPosition { pos, data_width: self.data_width() });
        }
        Ok(())
    }

    fn check_payload(&self, payload: &[u8]) -> Result<(), ArrayError> {
        if payload.is_empty() {
            return Err(ArrayError::EmptyChunk);
        }
        if payload.len() as u64 > self.chunk {
            return Err(ArrayError::ChunkTooLarge { len: payload.len(), chunk: self.chunk });
        }
        Ok(())
    }

    /// Fetch the stored bytes of member `m` at `row` with a timed device
    /// read. When `rot` is set this is a host-facing fetch: a bit-rot draw
    /// may stick a flipped bit into the *stored* copy before it is
    /// returned (detected later by checksum). Internal read-modify-write
    /// fetches pass `rot = false` so parity math never ingests silent
    /// corruption it had no chance to verify.
    fn fetch(
        &mut self,
        now_ns: u64,
        m: usize,
        row: u64,
        rot: bool,
    ) -> Result<(Vec<u8>, Completion), ArrayError> {
        let member = &mut self.members[m];
        let len = member.chunks[row as usize]
            .as_ref()
            .map(|b| b.len())
            .expect("fetch called without stored bytes");
        let c = member.dev.try_submit(now_ns, IoKind::Read, row * self.chunk, len as u32)?;
        if rot {
            if let Some(bit) = member.dev.faults_mut().bit_rot() {
                let bytes = member.chunks[row as usize].as_mut().unwrap();
                let bit = bit as usize % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
        }
        Ok((member.chunks[row as usize].clone().unwrap(), c))
    }

    /// Store `bytes` on member `m` at `row` with a timed device write.
    fn store(
        &mut self,
        now_ns: u64,
        m: usize,
        row: u64,
        bytes: Vec<u8>,
    ) -> Result<Completion, ArrayError> {
        let member = &mut self.members[m];
        let c = member.dev.try_submit(now_ns, IoKind::Write, row * self.chunk, bytes.len() as u32)?;
        member.chunks[row as usize] = Some(bytes);
        Ok(c)
    }

    /// Whether member `m` can serve stored bytes for `row` right now.
    fn resident(&self, m: usize, row: u64) -> bool {
        self.members[m].state != MemberState::Failed
            && self.members[m].chunks[row as usize].is_some()
    }

    /// Write a full stripe row of compressed chunk payloads (exactly
    /// [`RaisArray::data_width`] of them, each `1..=chunk` bytes).
    ///
    /// On RAIS5 the parity leg is computed over the payloads padded to the
    /// largest one and written once — the compressed-parity saving. A leg
    /// owned by a failed member is recorded in row metadata but not
    /// stored; on RAIS5 it stays reconstructible from parity (a degraded
    /// write), on RAIS0 it is lost and later reads get a typed error.
    pub fn write_row(
        &mut self,
        now_ns: u64,
        row: u64,
        payloads: &[&[u8]],
    ) -> Result<Completion, ArrayError> {
        if row >= self.rows {
            return Err(ArrayError::BadRow { row, rows: self.rows });
        }
        let dw = self.data_width();
        if payloads.len() != dw {
            return Err(ArrayError::WrongWidth { given: payloads.len(), data_width: dw });
        }
        for p in payloads {
            self.check_payload(p)?;
        }

        self.release_row_accounting(row);
        let mut span = Span::new();
        let mut legs = Vec::with_capacity(dw);
        for (pos, payload) in payloads.iter().enumerate() {
            let m = self.data_member(row, pos);
            legs.push(Some(LegMeta { len: payload.len() as u32, crc: chunk_crc(payload) }));
            if self.members[m].state != MemberState::Failed {
                span.track(self.store(now_ns, m, row, payload.to_vec())?);
            }
            self.logical_stored += self.chunk;
            self.physical_data += payload.len() as u64;
        }

        let parity = if self.level == RaisLevel::Rais5 {
            let plen = payloads.iter().map(|p| p.len()).max().unwrap_or(0);
            let mut pbuf = vec![0u8; plen];
            for p in payloads {
                xor_into(&mut pbuf, p);
            }
            let meta = LegMeta { len: plen as u32, crc: chunk_crc(&pbuf) };
            let pm = self.parity_member(row);
            if self.members[pm].state != MemberState::Failed {
                span.track(self.store(now_ns, pm, row, pbuf)?);
                self.parity_bytes_written += plen as u64;
                self.parity_control_bytes += self.chunk;
            }
            self.parity_stored += plen as u64;
            Some(meta)
        } else {
            None
        };

        self.rows_meta[row as usize] = Some(RowMeta { legs, parity });
        Ok(span.completion(now_ns))
    }

    /// Overwrite one data chunk of a row (compressed read-modify-write).
    ///
    /// With the old leg and old parity resident this is the classic
    /// small-write path — two reads, an XOR delta truncated to the new row
    /// maximum, two writes. Around a failed member it falls back to
    /// recomputing parity from the surviving legs.
    pub fn write_chunk(
        &mut self,
        now_ns: u64,
        row: u64,
        pos: usize,
        payload: &[u8],
    ) -> Result<Completion, ArrayError> {
        self.check_row_pos(row, pos)?;
        self.check_payload(payload)?;
        let dw = self.data_width();
        if self.rows_meta[row as usize].is_none() {
            self.rows_meta[row as usize] =
                Some(RowMeta { legs: vec![None; dw], parity: None });
        }
        let m = self.data_member(row, pos);
        let new_meta = LegMeta { len: payload.len() as u32, crc: chunk_crc(payload) };
        let old_leg = self.rows_meta[row as usize].as_ref().unwrap().legs[pos];
        let mut span = Span::new();

        if self.level == RaisLevel::Rais5 {
            let pm = self.parity_member(row);
            let old_parity = self.rows_meta[row as usize].as_ref().unwrap().parity;

            // New parity length: the row maximum after this update.
            let plen_new = {
                let meta = self.rows_meta[row as usize].as_ref().unwrap();
                meta.legs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, l)| if i == pos { None } else { *l })
                    .map(|l| l.len as usize)
                    .chain(std::iter::once(payload.len()))
                    .max()
                    .unwrap()
            };

            let mut pbuf;
            if old_leg.is_some()
                && self.resident(m, row)
                && old_parity.is_some()
                && self.resident(pm, row)
            {
                // Delta path: parity' = parity ⊕ old ⊕ new, padded to the
                // working maximum then truncated to the new row maximum
                // (the tail provably XORs to zero).
                let (old_bytes, c1) = self.fetch(now_ns, m, row, false)?;
                let (par_bytes, c2) = self.fetch(now_ns, pm, row, false)?;
                span.track(c1);
                span.track(c2);
                pbuf = par_bytes;
                xor_into(&mut pbuf, &old_bytes);
                xor_into(&mut pbuf, payload);
                pbuf.truncate(plen_new);
                pbuf.resize(plen_new, 0);
            } else {
                // Reconstruction path: gather every surviving sibling leg;
                // a sibling that is metadata-only while the target or
                // parity is also unavailable is a double fault.
                pbuf = vec![0u8; plen_new];
                xor_into(&mut pbuf, payload);
                for (sib_pos, leg) in self
                    .rows_meta[row as usize]
                    .as_ref()
                    .unwrap()
                    .legs
                    .clone()
                    .iter()
                    .enumerate()
                {
                    if sib_pos == pos || leg.is_none() {
                        continue;
                    }
                    let sm = self.data_member(row, sib_pos);
                    if !self.resident(sm, row) {
                        return Err(ArrayError::Unrecoverable {
                            row,
                            pos: sib_pos,
                            reason: LossReason::DoubleFault,
                        });
                    }
                    let (bytes, c) = self.fetch(now_ns, sm, row, false)?;
                    span.track(c);
                    xor_into(&mut pbuf, &bytes);
                }
                pbuf.truncate(plen_new);
                pbuf.resize(plen_new, 0);
            }

            let pmeta = LegMeta { len: plen_new as u32, crc: chunk_crc(&pbuf) };
            if let Some(op) = old_parity {
                self.parity_stored -= u64::from(op.len);
            }
            self.parity_stored += plen_new as u64;
            if self.members[pm].state != MemberState::Failed {
                span.track(self.store(now_ns, pm, row, pbuf)?);
                self.parity_bytes_written += plen_new as u64;
                self.parity_control_bytes += self.chunk;
            }
            self.rows_meta[row as usize].as_mut().unwrap().parity = Some(pmeta);
        }

        if let Some(old) = old_leg {
            self.physical_data -= u64::from(old.len);
        } else {
            self.logical_stored += self.chunk;
        }
        self.physical_data += payload.len() as u64;
        if self.members[m].state != MemberState::Failed {
            span.track(self.store(now_ns, m, row, payload.to_vec())?);
        }
        self.rows_meta[row as usize].as_mut().unwrap().legs[pos] = Some(new_meta);
        Ok(span.completion(now_ns))
    }

    /// Read one data chunk back, bit-identical to what was written.
    ///
    /// A chunk on a failed (or not-yet-rebuilt) member is reconstructed
    /// from parity and the surviving legs ([`ReadMode::Degraded`]). A
    /// chunk whose fetch fails its checksum — sticky bit rot — is
    /// reconstructed and durably written back ([`ReadMode::Repaired`]).
    /// RAIS0 has no redundancy: both cases surface
    /// [`ArrayError::Unrecoverable`] instead of silent corruption.
    pub fn read_chunk(&mut self, now_ns: u64, row: u64, pos: usize) -> Result<ChunkRead, ArrayError> {
        self.check_row_pos(row, pos)?;
        let leg = self
            .rows_meta[row as usize]
            .as_ref()
            .and_then(|m| m.legs[pos])
            .ok_or(ArrayError::NotStored { row, pos })?;
        let m = self.data_member(row, pos);

        if self.resident(m, row) {
            let (bytes, c) = match self.fetch(now_ns, m, row, true) {
                Ok(ok) => ok,
                Err(ArrayError::Fault(FaultError::ReadFault)) => {
                    // Retries exhausted on the member: serve via the row.
                    return self.serve_degraded(now_ns, row, pos, leg);
                }
                Err(e) => return Err(e),
            };
            if bytes.len() == leg.len as usize && chunk_crc(&bytes) == leg.crc {
                return Ok(ChunkRead { data: bytes, completion: c, mode: ReadMode::Direct });
            }
            // Checksum mismatch: rot detected. Reconstruct and repair.
            if self.level == RaisLevel::Rais0 {
                return Err(ArrayError::Unrecoverable {
                    row,
                    pos,
                    reason: LossReason::NoRedundancy,
                });
            }
            let mut span = Span::new();
            span.track(c);
            let (data, rspan) = self.reconstruct(now_ns, row, pos, leg)?;
            span.track(rspan.completion(now_ns));
            span.track(self.store(now_ns, m, row, data.clone())?);
            self.repairs.repaired_chunks += 1;
            self.repairs.repaired_bytes += data.len() as u64;
            return Ok(ChunkRead {
                data,
                completion: span.completion(now_ns),
                mode: ReadMode::Repaired,
            });
        }
        self.serve_degraded(now_ns, row, pos, leg)
    }

    /// Serve a read whose member cannot: reconstruct from the row.
    fn serve_degraded(
        &mut self,
        now_ns: u64,
        row: u64,
        pos: usize,
        leg: LegMeta,
    ) -> Result<ChunkRead, ArrayError> {
        if self.level == RaisLevel::Rais0 {
            return Err(ArrayError::Unrecoverable { row, pos, reason: LossReason::NoRedundancy });
        }
        let (data, span) = self.reconstruct(now_ns, row, pos, leg)?;
        self.repairs.degraded_reads += 1;
        Ok(ChunkRead { data, completion: span.completion(now_ns), mode: ReadMode::Degraded })
    }

    /// XOR-reconstruct the data leg at (`row`, `pos`) from parity and the
    /// surviving legs, verifying every ingredient and the result against
    /// recorded checksums. Any unavailable or corrupt ingredient is a
    /// double fault. All fetches are host-facing (rot draws apply) — this
    /// is exactly where a URE during reconstruction hurts a real array.
    fn reconstruct(
        &mut self,
        now_ns: u64,
        row: u64,
        pos: usize,
        leg: LegMeta,
    ) -> Result<(Vec<u8>, Span), ArrayError> {
        let meta = self.rows_meta[row as usize].clone().unwrap();
        let pmeta = meta.parity.ok_or(ArrayError::Unrecoverable {
            row,
            pos,
            reason: LossReason::DoubleFault,
        })?;
        let pm = self.parity_member(row);
        let mut span = Span::new();
        if !self.resident(pm, row) {
            return Err(ArrayError::Unrecoverable { row, pos, reason: LossReason::DoubleFault });
        }
        let (pbytes, c) = self.fetch(now_ns, pm, row, true)?;
        span.track(c);
        if pbytes.len() != pmeta.len as usize || chunk_crc(&pbytes) != pmeta.crc {
            return Err(ArrayError::Unrecoverable { row, pos, reason: LossReason::DoubleFault });
        }
        let mut acc = pbytes;
        for (sib_pos, sib) in meta.legs.iter().enumerate() {
            if sib_pos == pos {
                continue;
            }
            let Some(sib) = sib else { continue };
            let sm = self.data_member(row, sib_pos);
            if !self.resident(sm, row) {
                return Err(ArrayError::Unrecoverable {
                    row,
                    pos,
                    reason: LossReason::DoubleFault,
                });
            }
            let (bytes, c) = self.fetch(now_ns, sm, row, true)?;
            span.track(c);
            if bytes.len() != sib.len as usize || chunk_crc(&bytes) != sib.crc {
                return Err(ArrayError::Unrecoverable {
                    row,
                    pos,
                    reason: LossReason::DoubleFault,
                });
            }
            xor_into(&mut acc, &bytes);
        }
        acc.truncate(leg.len as usize);
        acc.resize(leg.len as usize, 0);
        if chunk_crc(&acc) != leg.crc {
            return Err(ArrayError::Unrecoverable { row, pos, reason: LossReason::DoubleFault });
        }
        Ok((acc, span))
    }

    /// Kill member `i`: whole-device failure. Its stored chunks are gone
    /// and every device access errors until [`RaisArray::start_rebuild`]
    /// installs a replacement. Idempotent.
    pub fn kill_member(&mut self, i: usize) -> Result<(), ArrayError> {
        if i >= self.members.len() {
            return Err(ArrayError::BadMember { member: i, width: self.members.len() });
        }
        let member = &mut self.members[i];
        member.state = MemberState::Failed;
        member.dev.fail();
        for c in &mut member.chunks {
            *c = None;
        }
        Ok(())
    }

    /// Install a fresh replacement device for failed member `i` and arm
    /// the rebuild cursor. The replacement derives the same lane-`i` fault
    /// seed the original had.
    pub fn start_rebuild(&mut self, i: usize) -> Result<(), ArrayError> {
        if i >= self.members.len() {
            return Err(ArrayError::BadMember { member: i, width: self.members.len() });
        }
        if self.members[i].state != MemberState::Failed {
            return Err(ArrayError::NotFailed { member: i });
        }
        let cfg = SsdConfig { fault: self.base_fault.for_lane(i), ..self.cfg };
        self.members[i] = Member {
            dev: SsdDevice::new(cfg),
            state: MemberState::Rebuilding { next_row: 0 },
            chunks: vec![None; self.rows as usize],
        };
        Ok(())
    }

    /// Advance the online rebuild of member `i` by up to `max_rows` stripe
    /// rows, reconstructing this member's legs (data via parity XOR,
    /// parity by recomputation) onto the replacement. Foreground I/O may
    /// interleave between calls — chunks the foreground already rewrote
    /// onto the replacement are skipped. Reconstruction works on the
    /// stored compressed bytes; nothing is decompressed.
    pub fn rebuild_step(
        &mut self,
        now_ns: u64,
        i: usize,
        max_rows: u64,
    ) -> Result<RebuildProgress, ArrayError> {
        if i >= self.members.len() {
            return Err(ArrayError::BadMember { member: i, width: self.members.len() });
        }
        let MemberState::Rebuilding { next_row } = self.members[i].state else {
            return Err(ArrayError::NotRebuilding { member: i });
        };
        let end = (next_row + max_rows).min(self.rows);
        let mut progress = RebuildProgress {
            member: i,
            total_rows: self.rows,
            ..RebuildProgress::default()
        };
        for row in next_row..end {
            let Some(meta) = self.rows_meta[row as usize].clone() else { continue };
            if self.members[i].chunks[row as usize].is_some() {
                continue; // Foreground already re-populated this slot.
            }
            if self.level == RaisLevel::Rais5 && self.parity_member(row) == i {
                let Some(pmeta) = meta.parity else { continue };
                match self.recompute_parity(now_ns, row, &meta, pmeta) {
                    Ok(pbuf) => {
                        progress.reconstructed_bytes += pbuf.len() as u64;
                        progress.reconstructed_chunks += 1;
                        self.store(now_ns, i, row, pbuf)?;
                    }
                    Err(ArrayError::Unrecoverable { .. }) => progress.lost_chunks += 1,
                    Err(e) => return Err(e),
                }
                continue;
            }
            // Data leg owned by this member, if any.
            let Some(pos) = (0..meta.legs.len()).find(|&p| self.data_member(row, p) == i) else {
                continue;
            };
            let Some(leg) = meta.legs[pos] else { continue };
            if self.level == RaisLevel::Rais0 {
                // Nothing to reconstruct from; the loss was already typed
                // at read time.
                progress.lost_chunks += 1;
                continue;
            }
            match self.reconstruct(now_ns, row, pos, leg) {
                Ok((bytes, _span)) => {
                    progress.reconstructed_bytes += bytes.len() as u64;
                    progress.reconstructed_chunks += 1;
                    self.store(now_ns, i, row, bytes)?;
                }
                Err(ArrayError::Unrecoverable { .. }) => progress.lost_chunks += 1,
                Err(e) => return Err(e),
            }
        }
        progress.rows_done = end;
        if end == self.rows {
            self.members[i].state = MemberState::Healthy;
            progress.done = true;
        } else {
            self.members[i].state = MemberState::Rebuilding { next_row: end };
        }
        Ok(progress)
    }

    /// Recompute the parity leg of `row` from its data legs, verified
    /// against the recorded parity checksum.
    fn recompute_parity(
        &mut self,
        now_ns: u64,
        row: u64,
        meta: &RowMeta,
        pmeta: LegMeta,
    ) -> Result<Vec<u8>, ArrayError> {
        let mut pbuf = vec![0u8; pmeta.len as usize];
        for (pos, leg) in meta.legs.iter().enumerate() {
            let Some(leg) = leg else { continue };
            let sm = self.data_member(row, pos);
            if !self.resident(sm, row) {
                return Err(ArrayError::Unrecoverable {
                    row,
                    pos,
                    reason: LossReason::DoubleFault,
                });
            }
            let (bytes, _c) = self.fetch(now_ns, sm, row, true)?;
            if bytes.len() != leg.len as usize || chunk_crc(&bytes) != leg.crc {
                return Err(ArrayError::Unrecoverable {
                    row,
                    pos,
                    reason: LossReason::DoubleFault,
                });
            }
            xor_into(&mut pbuf, &bytes);
        }
        pbuf.truncate(pmeta.len as usize);
        pbuf.resize(pmeta.len as usize, 0);
        if chunk_crc(&pbuf) != pmeta.crc {
            return Err(ArrayError::Unrecoverable {
                row,
                pos: usize::MAX,
                reason: LossReason::DoubleFault,
            });
        }
        Ok(pbuf)
    }

    /// Full offline-style rebuild: [`RaisArray::start_rebuild`] then step
    /// to completion. Returns the cumulative progress.
    pub fn rebuild(&mut self, now_ns: u64, i: usize) -> Result<RebuildProgress, ArrayError> {
        self.start_rebuild(i)?;
        let mut total = RebuildProgress { member: i, total_rows: self.rows, ..Default::default() };
        loop {
            let step = self.rebuild_step(now_ns, i, 64)?;
            total.reconstructed_chunks += step.reconstructed_chunks;
            total.reconstructed_bytes += step.reconstructed_bytes;
            total.lost_chunks += step.lost_chunks;
            total.rows_done = step.rows_done;
            if step.done {
                total.done = true;
                return Ok(total);
            }
        }
    }

    /// Fetch and checksum-verify every resident chunk, repairing corrupt
    /// ones from redundancy (data legs from parity, parity legs by
    /// recomputation) with durable write-back. Unrepairable corruption is
    /// counted, never silently served.
    pub fn scrub(&mut self, now_ns: u64) -> Result<ArrayScrubReport, ArrayError> {
        let mut report = ArrayScrubReport::default();
        for row in 0..self.rows {
            let Some(meta) = self.rows_meta[row as usize].clone() else { continue };
            report.rows_scanned += 1;
            for (pos, leg) in meta.legs.iter().enumerate() {
                let Some(leg) = leg else { continue };
                let m = self.data_member(row, pos);
                if !self.resident(m, row) {
                    continue; // Degraded leg: rebuild's job, not scrub's.
                }
                let (bytes, _c) = self.fetch(now_ns, m, row, true)?;
                report.chunks_verified += 1;
                if bytes.len() == leg.len as usize && chunk_crc(&bytes) == leg.crc {
                    continue;
                }
                if self.level == RaisLevel::Rais0 {
                    report.unrepaired += 1;
                    continue;
                }
                match self.reconstruct(now_ns, row, pos, *leg) {
                    Ok((data, _span)) => {
                        self.repairs.repaired_chunks += 1;
                        self.repairs.repaired_bytes += data.len() as u64;
                        self.store(now_ns, m, row, data)?;
                        report.repaired += 1;
                    }
                    Err(ArrayError::Unrecoverable { .. }) => report.unrepaired += 1,
                    Err(e) => return Err(e),
                }
            }
            if let Some(pmeta) = meta.parity {
                let pm = self.parity_member(row);
                if self.resident(pm, row) {
                    let (bytes, _c) = self.fetch(now_ns, pm, row, true)?;
                    report.chunks_verified += 1;
                    if bytes.len() != pmeta.len as usize || chunk_crc(&bytes) != pmeta.crc {
                        match self.recompute_parity(now_ns, row, &meta, pmeta) {
                            Ok(pbuf) => {
                                self.repairs.repaired_chunks += 1;
                                self.repairs.repaired_bytes += pbuf.len() as u64;
                                self.store(now_ns, pm, row, pbuf)?;
                                report.repaired += 1;
                            }
                            Err(ArrayError::Unrecoverable { .. }) => report.unrepaired += 1,
                            Err(e) => return Err(e),
                        }
                    }
                }
            }
        }
        Ok(report)
    }

    /// Check array invariants without consuming fault draws: every member
    /// FTL's own integrity, every resident chunk against its recorded
    /// length/checksum, and — where a row is fully resident — the XOR
    /// relation between legs and parity. After a bit-rot campaign run
    /// [`RaisArray::scrub`] first; `verify_integrity` reports rot that
    /// scrub has not yet repaired as [`ArrayIntegrityError::MetaMismatch`].
    pub fn verify_integrity(&self) -> Result<(), ArrayIntegrityError> {
        for (i, m) in self.members.iter().enumerate() {
            if m.state == MemberState::Failed {
                continue;
            }
            if let Err(error) = m.dev.verify_integrity() {
                return Err(ArrayIntegrityError::Member { member: i, error });
            }
        }
        for row in 0..self.rows {
            let Some(meta) = &self.rows_meta[row as usize] else { continue };
            let mut all_resident = true;
            let mut acc: Vec<u8> = Vec::new();
            for (pos, leg) in meta.legs.iter().enumerate() {
                let Some(leg) = leg else {
                    all_resident = false;
                    continue;
                };
                let m = self.data_member(row, pos);
                match self.members[m].chunks[row as usize].as_ref() {
                    Some(bytes) if self.members[m].state != MemberState::Failed => {
                        if bytes.len() != leg.len as usize || chunk_crc(bytes) != leg.crc {
                            return Err(ArrayIntegrityError::MetaMismatch { row, member: m });
                        }
                        xor_into(&mut acc, bytes);
                    }
                    _ => all_resident = false,
                }
            }
            if let Some(pmeta) = meta.parity {
                let pm = self.parity_member(row);
                match self.members[pm].chunks[row as usize].as_ref() {
                    Some(bytes) if self.members[pm].state != MemberState::Failed => {
                        if bytes.len() != pmeta.len as usize || chunk_crc(bytes) != pmeta.crc {
                            return Err(ArrayIntegrityError::MetaMismatch { row, member: pm });
                        }
                        if all_resident {
                            let mut check = acc.clone();
                            xor_into(&mut check, bytes);
                            if check.iter().any(|&b| b != 0) {
                                return Err(ArrayIntegrityError::ParityMismatch { row });
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Undo the capacity accounting of whatever `row` currently stores
    /// (called before a full-row overwrite).
    fn release_row_accounting(&mut self, row: u64) {
        let Some(meta) = self.rows_meta[row as usize].take() else { return };
        for leg in meta.legs.iter().flatten() {
            self.logical_stored -= self.chunk;
            self.physical_data -= u64::from(leg.len);
        }
        if let Some(p) = meta.parity {
            self.parity_stored -= u64::from(p.len);
        }
    }

    /// Locate a data chunk: `(device index, device byte offset)` for global
    /// chunk index `ci` (timing plane).
    fn locate(&self, ci: u64) -> (usize, u64) {
        let n = self.members.len() as u64;
        match self.level {
            RaisLevel::Rais0 => {
                let dev = (ci % n) as usize;
                let row = ci / n;
                (dev, row * self.chunk)
            }
            RaisLevel::Rais5 => {
                let dw = n - 1;
                let row = ci / dw;
                let pos = ci % dw;
                let parity_dev = (row % n) as usize;
                let dev = if (pos as usize) < parity_dev { pos as usize } else { pos as usize + 1 };
                (dev, row * self.chunk)
            }
        }
    }

    /// Parity device and offset for a stripe row (timing plane).
    fn parity_of(&self, row: u64) -> (usize, u64) {
        let n = self.members.len() as u64;
        ((row % n) as usize, row * self.chunk)
    }

    /// Submit one host I/O at `now_ns` on the timing plane; returns the
    /// array-level completion (the slowest sub-I/O).
    ///
    /// This path models request *timing* only and predates the data
    /// plane; use it on healthy arrays without armed fault plans.
    ///
    /// # Panics
    /// Panics on zero-length I/O, on a failed member, or if an injected
    /// fault fires.
    pub fn submit(&mut self, now_ns: u64, kind: IoKind, offset: u64, len: u32) -> Completion {
        assert!(len > 0, "zero-length I/O");
        let offset = offset % self.logical_bytes();
        let len = u64::from(len).min(self.logical_bytes() - offset);
        let mut span = Span::new();

        match (self.level, kind) {
            (_, IoKind::Read) | (RaisLevel::Rais0, IoKind::Write) => {
                // Straight striping: split across chunks.
                let mut pos = offset;
                let end = offset + len;
                while pos < end {
                    let ci = pos / self.chunk;
                    let within = pos % self.chunk;
                    let take = (self.chunk - within).min(end - pos);
                    let (dev, dev_off) = self.locate(ci);
                    span.track(self.members[dev].dev.submit(
                        now_ns,
                        kind,
                        dev_off + within,
                        take as u32,
                    ));
                    pos += take;
                }
            }
            (RaisLevel::Rais5, IoKind::Write) => {
                let dw = self.data_width() as u64;
                let row_bytes = dw * self.chunk;
                let mut pos = offset;
                let end = offset + len;
                while pos < end {
                    let row = pos / row_bytes;
                    let row_start = row * row_bytes;
                    let row_end = row_start + row_bytes;
                    let seg_end = end.min(row_end);
                    let full_row = pos == row_start && seg_end == row_end;
                    let (pdev, poff) = self.parity_of(row);
                    if full_row {
                        // Full-stripe write: data chunks + one parity chunk,
                        // computed in memory.
                        for k in 0..dw {
                            let ci = row * dw + k;
                            let (dev, dev_off) = self.locate(ci);
                            span.track(self.members[dev].dev.submit(
                                now_ns,
                                IoKind::Write,
                                dev_off,
                                self.chunk as u32,
                            ));
                        }
                        span.track(self.members[pdev].dev.submit(
                            now_ns,
                            IoKind::Write,
                            poff,
                            self.chunk as u32,
                        ));
                    } else {
                        // Partial row: per touched chunk, read-modify-write
                        // of data and parity.
                        let mut p = pos;
                        while p < seg_end {
                            let ci = p / self.chunk;
                            let within = p % self.chunk;
                            let take = (self.chunk - within).min(seg_end - p);
                            let (dev, dev_off) = self.locate(ci);
                            // Read old data, read old parity (parallel).
                            let r1 = self.members[dev].dev.submit(
                                now_ns,
                                IoKind::Read,
                                dev_off + within,
                                take as u32,
                            );
                            let r2 = self.members[pdev].dev.submit(
                                now_ns,
                                IoKind::Read,
                                poff + within,
                                take as u32,
                            );
                            let ready = r1.finish_ns.max(r2.finish_ns);
                            // Write new data and new parity once both reads
                            // are in.
                            span.track(self.members[dev].dev.submit(
                                ready,
                                IoKind::Write,
                                dev_off + within,
                                take as u32,
                            ));
                            span.track(self.members[pdev].dev.submit(
                                ready,
                                IoKind::Write,
                                poff + within,
                                take as u32,
                            ));
                            span.track(r1);
                            span.track(r2);
                            p += take;
                        }
                    }
                    pos = seg_end;
                }
            }
        }
        Completion { start_ns: span.start_ns, finish_ns: span.finish_ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member_cfg() -> SsdConfig {
        SsdConfig {
            logical_bytes: 16 << 20,
            overprovision: 0.25,
            sectors_per_block: 64,
            gc_low_watermark: 3,
            ..SsdConfig::default()
        }
    }

    fn rais5() -> RaisArray {
        RaisArray::new(RaisLevel::Rais5, 5, member_cfg(), 65536).unwrap()
    }

    fn rais0() -> RaisArray {
        RaisArray::new(RaisLevel::Rais0, 5, member_cfg(), 65536).unwrap()
    }

    /// A compressible-looking payload of `len` bytes, seeded by `tag`.
    fn payload(tag: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i as u64).wrapping_mul(7).wrapping_add(tag * 131) % 251) as u8).collect()
    }

    #[test]
    fn capacities() {
        assert_eq!(rais0().logical_bytes(), 5 * (16 << 20));
        assert_eq!(rais5().logical_bytes(), 4 * (16 << 20));
    }

    #[test]
    fn shape_errors_are_typed_not_panics() {
        assert_eq!(
            RaisArray::new(RaisLevel::Rais5, 2, member_cfg(), 65536).unwrap_err(),
            ArrayError::TooFewMembers { level: RaisLevel::Rais5, members: 2, required: 3 }
        );
        assert_eq!(
            RaisArray::new(RaisLevel::Rais0, 1, member_cfg(), 65536).unwrap_err(),
            ArrayError::TooFewMembers { level: RaisLevel::Rais0, members: 1, required: 2 }
        );
        assert_eq!(
            RaisArray::new(RaisLevel::Rais0, 2, member_cfg(), 1000).unwrap_err(),
            ArrayError::BadChunk { chunk: 1000 }
        );
        assert!(matches!(
            RaisArray::new(
                RaisLevel::Rais0,
                2,
                SsdConfig { overprovision: 0.0, ..member_cfg() },
                65536
            )
            .unwrap_err(),
            ArrayError::Config(ConfigError::NoSpareArea)
        ));
        assert!(matches!(
            RaisArray::new(RaisLevel::Rais0, 2, member_cfg(), (16 << 20) - 4096 + 8192)
                .unwrap_err(),
            ArrayError::ChunkVsCapacity { .. }
        ));
    }

    #[test]
    fn rais0_spreads_chunks_round_robin() {
        let mut a = rais0();
        // Write 5 chunks: each device must receive exactly one.
        for i in 0..5u64 {
            a.submit(0, IoKind::Write, i * 65536, 65536);
        }
        for d in 0..5 {
            assert_eq!(a.device(d).stats().writes, 1, "device {d}");
        }
    }

    #[test]
    fn rais5_rotates_parity() {
        let mut a = rais5();
        // Full-row writes across 5 rows: every device must see both data
        // and parity roles, i.e. 5 writes per row × 5 rows spread evenly.
        let row_bytes = 4 * 65536;
        for r in 0..5u64 {
            a.submit(0, IoKind::Write, r * row_bytes, row_bytes as u32);
        }
        for d in 0..5 {
            assert_eq!(a.device(d).stats().writes, 5, "device {d}");
        }
    }

    #[test]
    fn rais5_small_write_penalty() {
        // A 4 KiB write on RAIS5 costs 2 reads + 2 writes; on RAIS0 just 1
        // write. RAIS5 latency must be visibly higher.
        let mut a5 = rais5();
        let mut a0 = rais0();
        let c5 = a5.submit(0, IoKind::Write, 0, 4096);
        let c0 = a0.submit(0, IoKind::Write, 0, 4096);
        assert!(
            c5.finish_ns > c0.finish_ns,
            "RAIS5 {} !> RAIS0 {}",
            c5.finish_ns,
            c0.finish_ns
        );
        // And it must have touched exactly two devices with 1R+1W each.
        let s = a5.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 2);
    }

    #[test]
    fn full_stripe_write_avoids_rmw() {
        let mut a = rais5();
        let row_bytes = 4 * 65536u32;
        let c = a.submit(0, IoKind::Write, 0, row_bytes);
        let s = a.stats();
        assert_eq!(s.reads, 0, "full-stripe write must not read");
        assert_eq!(s.writes, 5, "4 data + 1 parity");
        assert!(c.finish_ns > 0);
    }

    #[test]
    fn reads_never_touch_parity() {
        let mut a = rais5();
        a.submit(0, IoKind::Read, 0, 4 * 65536);
        assert_eq!(a.stats().reads, 4);
        assert_eq!(a.stats().writes, 0);
    }

    #[test]
    fn parallel_legs_overlap() {
        // A 4-chunk read lands on 4 devices in parallel: array latency must
        // be far less than the sum of four serial chunk reads.
        let mut a = rais0();
        let c = a.submit(0, IoKind::Read, 0, 4 * 65536);
        let mut single = rais0();
        let one = single.submit(0, IoKind::Read, 0, 65536);
        let serial_estimate = 4 * (one.finish_ns - one.start_ns);
        assert!(
            c.finish_ns - c.start_ns < serial_estimate / 2,
            "array read {} vs serial {}",
            c.finish_ns - c.start_ns,
            serial_estimate
        );
    }

    #[test]
    fn array_preserves_linear_size_scaling() {
        // Within one chunk the single-device linearity passes through.
        let mut a = rais0();
        let c1 = a.submit(a.device(0).busy_until(), IoKind::Read, 0, 4096);
        let t1 = c1.finish_ns - c1.start_ns;
        let now = (0..5).map(|i| a.device(i).busy_until()).max().unwrap();
        let c2 = a.submit(now, IoKind::Read, 0, 32768);
        let t2 = c2.finish_ns - c2.start_ns;
        assert!(t2 > t1);
    }

    #[test]
    fn offsets_wrap_at_array_capacity() {
        let mut a = rais0();
        let cap = a.logical_bytes();
        let c = a.submit(0, IoKind::Write, cap + 8192, 4096);
        assert!(c.finish_ns > 0);
        assert_eq!(a.stats().writes, 1);
    }

    #[test]
    fn aggregate_stats_sum_members() {
        let mut a = rais0();
        a.submit(0, IoKind::Write, 0, 65536 * 3);
        let s = a.stats();
        assert_eq!(s.writes, 3);
        assert_eq!(s.bytes_written, 65536 * 3);
    }

    // ------------------------------------------------------------------
    // Data plane: compressed parity, degraded reads, rebuild.
    // ------------------------------------------------------------------

    #[test]
    fn row_roundtrip_and_direct_reads() {
        let mut a = rais5();
        let ps: Vec<Vec<u8>> = (0..4).map(|i| payload(i, 3000 + 500 * i as usize)).collect();
        let refs: Vec<&[u8]> = ps.iter().map(|p| p.as_slice()).collect();
        a.write_row(0, 0, &refs).unwrap();
        for (pos, p) in ps.iter().enumerate() {
            let r = a.read_chunk(0, 0, pos).unwrap();
            assert_eq!(&r.data, p);
            assert_eq!(r.mode, ReadMode::Direct);
        }
        a.verify_integrity().unwrap();
    }

    #[test]
    fn parity_leg_sized_to_largest_compressed_chunk() {
        let mut a = rais5();
        let ps: Vec<Vec<u8>> = vec![payload(1, 4096), payload(2, 9000), payload(3, 5000), payload(4, 4096)];
        let refs: Vec<&[u8]> = ps.iter().map(|p| p.as_slice()).collect();
        a.write_row(0, 0, &refs).unwrap();
        let cap = a.capacity();
        assert_eq!(cap.parity_bytes, 9000, "parity sized to the row max");
        assert_eq!(cap.parity_bytes_written, 9000);
        assert_eq!(cap.parity_control_bytes, 65536, "uncompressed control pays a full chunk");
        assert!(cap.parity_bytes_written < cap.parity_control_bytes);
    }

    #[test]
    fn virtual_capacity_grows_with_compression_ratio() {
        let mut a = rais5();
        // 64 KiB logical chunks stored in 16 KiB: ratio 4 → 4x virtual.
        let ps: Vec<Vec<u8>> = (0..4).map(|i| payload(i, 16384)).collect();
        let refs: Vec<&[u8]> = ps.iter().map(|p| p.as_slice()).collect();
        a.write_row(0, 0, &refs).unwrap();
        let cap = a.capacity();
        assert_eq!(cap.logical_stored_bytes, 4 * 65536);
        assert_eq!(cap.physical_data_bytes, 4 * 16384);
        assert_eq!(cap.virtual_bytes, cap.exported_bytes * 4);
    }

    #[test]
    fn degraded_reads_bit_identical_after_any_single_kill() {
        for victim in 0..5 {
            let mut a = rais5();
            let ps: Vec<Vec<u8>> = (0..4).map(|i| payload(i + 10, 2000 + 700 * i as usize)).collect();
            let refs: Vec<&[u8]> = ps.iter().map(|p| p.as_slice()).collect();
            for row in 0..3 {
                a.write_row(0, row, &refs).unwrap();
            }
            a.kill_member(victim).unwrap();
            for row in 0..3 {
                for (pos, p) in ps.iter().enumerate() {
                    let r = a.read_chunk(0, row, pos).unwrap();
                    assert_eq!(&r.data, p, "victim {victim} row {row} pos {pos}");
                }
            }
            // The victim is the parity member of at most one of the three
            // rows, so it must have been a data member somewhere.
            assert!(a.repair_stats().degraded_reads > 0, "victim {victim}");
        }
    }

    #[test]
    fn rais0_kill_is_typed_loss_not_silent() {
        let mut a = rais0();
        let ps: Vec<Vec<u8>> = (0..5).map(|i| payload(i, 4096)).collect();
        let refs: Vec<&[u8]> = ps.iter().map(|p| p.as_slice()).collect();
        a.write_row(0, 0, &refs).unwrap();
        a.kill_member(2).unwrap();
        let err = a.read_chunk(0, 0, 2).unwrap_err();
        assert_eq!(
            err,
            ArrayError::Unrecoverable { row: 0, pos: 2, reason: LossReason::NoRedundancy }
        );
        // Other members still serve.
        assert_eq!(a.read_chunk(0, 0, 0).unwrap().data, ps[0]);
    }

    #[test]
    fn rebuild_restores_health_and_data() {
        let mut a = rais5();
        let rows = 8u64;
        for row in 0..rows {
            let ps: Vec<Vec<u8>> = (0..4).map(|i| payload(row * 10 + i, 3000 + (row as usize % 3) * 800)).collect();
            let refs: Vec<&[u8]> = ps.iter().map(|p| p.as_slice()).collect();
            a.write_row(0, row, &refs).unwrap();
        }
        a.kill_member(1).unwrap();
        assert_eq!(a.member_state(1), MemberState::Failed);
        let progress = a.rebuild(0, 1).unwrap();
        assert!(progress.done);
        assert_eq!(progress.lost_chunks, 0);
        assert!(progress.reconstructed_chunks > 0);
        assert_eq!(a.member_state(1), MemberState::Healthy);
        // Every chunk reads Direct again — member 1 is fully repopulated.
        for row in 0..rows {
            for pos in 0..4 {
                let r = a.read_chunk(0, row, pos).unwrap();
                assert_eq!(r.mode, ReadMode::Direct, "row {row} pos {pos}");
                assert_eq!(&r.data, &payload(row * 10 + pos as u64, 3000 + (row as usize % 3) * 800));
            }
        }
        a.verify_integrity().unwrap();
    }

    #[test]
    fn online_rebuild_interleaves_with_foreground_writes() {
        let mut a = rais5();
        for row in 0..6u64 {
            let ps: Vec<Vec<u8>> = (0..4).map(|i| payload(row * 7 + i, 5000)).collect();
            let refs: Vec<&[u8]> = ps.iter().map(|p| p.as_slice()).collect();
            a.write_row(0, row, &refs).unwrap();
        }
        a.kill_member(3).unwrap();
        a.start_rebuild(3).unwrap();
        // Step one row at a time, interleaving a foreground overwrite that
        // lands on the rebuilding member ahead of the cursor.
        let hot = payload(999, 6000);
        a.write_chunk(0, 5, 2, &hot).unwrap();
        let mut done = false;
        while !done {
            done = a.rebuild_step(0, 3, 1).unwrap().done;
        }
        assert_eq!(a.member_state(3), MemberState::Healthy);
        assert_eq!(a.read_chunk(0, 5, 2).unwrap().data, hot);
        for row in 0..5u64 {
            for pos in 0..4 {
                assert_eq!(a.read_chunk(0, row, pos).unwrap().data, payload(row * 7 + pos as u64, 5000));
            }
        }
        a.verify_integrity().unwrap();
    }

    #[test]
    fn rot_detected_and_repaired_from_parity() {
        let mut a = rais5();
        let ps: Vec<Vec<u8>> = (0..4).map(|i| payload(i, 8000)).collect();
        let refs: Vec<&[u8]> = ps.iter().map(|p| p.as_slice()).collect();
        a.write_row(0, 0, &refs).unwrap();
        // Corrupt member bytes directly (simulating rot that already stuck).
        let m = a.data_member(0, 1);
        a.members[m].chunks[0].as_mut().unwrap()[100] ^= 0xFF;
        let r = a.read_chunk(0, 0, 1).unwrap();
        assert_eq!(r.mode, ReadMode::Repaired);
        assert_eq!(&r.data, &ps[1]);
        assert_eq!(a.repair_stats().repaired_chunks, 1);
        // Repair is durable: next read is Direct.
        let r2 = a.read_chunk(0, 0, 1).unwrap();
        assert_eq!(r2.mode, ReadMode::Direct);
        a.verify_integrity().unwrap();
    }

    #[test]
    fn injected_bit_rot_never_served_silently() {
        // With an armed per-member rot plan, every read either returns the
        // exact written bytes or a typed error — across many reads.
        let mut a = rais5();
        let ps: Vec<Vec<u8>> = (0..4).map(|i| payload(i + 40, 7000)).collect();
        let refs: Vec<&[u8]> = ps.iter().map(|p| p.as_slice()).collect();
        for row in 0..4 {
            a.write_row(0, row, &refs).unwrap();
        }
        a.set_member_fault_plans(FaultPlan { seed: 42, bit_rot_rate: 0.05, ..FaultPlan::none() });
        let mut repaired = 0;
        for _ in 0..10 {
            for row in 0..4 {
                for (pos, p) in ps.iter().enumerate() {
                    match a.read_chunk(0, row, pos) {
                        Ok(r) => {
                            assert_eq!(&r.data, p, "row {row} pos {pos}");
                            if r.mode == ReadMode::Repaired {
                                repaired += 1;
                            }
                        }
                        Err(ArrayError::Unrecoverable { .. }) => {}
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }
        assert!(repaired > 0, "a 5% rot rate over 160 reads must fire and repair");
        assert!(a.fault_stats().rot_pages > 0);
    }

    #[test]
    fn scrub_repairs_rot_and_reports() {
        let mut a = rais5();
        let ps: Vec<Vec<u8>> = (0..4).map(|i| payload(i + 60, 6000)).collect();
        let refs: Vec<&[u8]> = ps.iter().map(|p| p.as_slice()).collect();
        for row in 0..3 {
            a.write_row(0, row, &refs).unwrap();
        }
        let m = a.data_member(1, 0);
        a.members[m].chunks[1].as_mut().unwrap()[7] ^= 1;
        let report = a.scrub(0).unwrap();
        assert_eq!(report.rows_scanned, 3);
        assert_eq!(report.repaired, 1);
        assert_eq!(report.unrepaired, 0);
        a.verify_integrity().unwrap();
    }

    #[test]
    fn compressed_rmw_updates_parity_with_length_change() {
        let mut a = rais5();
        let ps: Vec<Vec<u8>> = vec![payload(1, 9000), payload(2, 4096), payload(3, 4096), payload(4, 4096)];
        let refs: Vec<&[u8]> = ps.iter().map(|p| p.as_slice()).collect();
        a.write_row(0, 0, &refs).unwrap();
        assert_eq!(a.capacity().parity_bytes, 9000);
        // Shrink the longest leg: parity must shrink to the new row max.
        let small = payload(9, 4500);
        a.write_chunk(0, 0, 0, &small).unwrap();
        assert_eq!(a.capacity().parity_bytes, 4500);
        assert_eq!(a.read_chunk(0, 0, 0).unwrap().data, small);
        // Grow a leg past everything: parity grows with it.
        let big = payload(11, 20000);
        a.write_chunk(0, 0, 3, &big).unwrap();
        assert_eq!(a.capacity().parity_bytes, 20000);
        for (pos, want) in [(0usize, &small), (3usize, &big)] {
            assert_eq!(&a.read_chunk(0, 0, pos).unwrap().data, want);
        }
        a.verify_integrity().unwrap();
        // Reconstruction still works after RMW: kill a member and re-read.
        a.kill_member(a.data_member(0, 1)).unwrap();
        assert_eq!(a.read_chunk(0, 0, 1).unwrap().data, ps[1]);
    }

    #[test]
    fn degraded_write_then_rebuild_recovers_phantom_leg() {
        let mut a = rais5();
        let ps: Vec<Vec<u8>> = (0..4).map(|i| payload(i + 80, 5000)).collect();
        let refs: Vec<&[u8]> = ps.iter().map(|p| p.as_slice()).collect();
        a.write_row(0, 0, &refs).unwrap();
        let victim = a.data_member(0, 2);
        a.kill_member(victim).unwrap();
        // Overwrite the failed member's chunk: a degraded write. The new
        // bytes live only in parity until rebuild.
        let fresh = payload(123, 4800);
        a.write_chunk(0, 0, 2, &fresh).unwrap();
        let r = a.read_chunk(0, 0, 2).unwrap();
        assert_eq!(r.mode, ReadMode::Degraded);
        assert_eq!(r.data, fresh);
        let progress = a.rebuild(0, victim).unwrap();
        assert_eq!(progress.lost_chunks, 0);
        let r2 = a.read_chunk(0, 0, 2).unwrap();
        assert_eq!(r2.mode, ReadMode::Direct);
        assert_eq!(r2.data, fresh);
    }

    #[test]
    fn double_fault_is_typed_loss() {
        let mut a = rais5();
        let ps: Vec<Vec<u8>> = (0..4).map(|i| payload(i, 4096)).collect();
        let refs: Vec<&[u8]> = ps.iter().map(|p| p.as_slice()).collect();
        a.write_row(0, 0, &refs).unwrap();
        a.kill_member(a.data_member(0, 0)).unwrap();
        // Corrupt a surviving sibling: reconstruction of pos 0 must fail
        // typed (URE during degraded operation), not return garbage.
        let sib = a.data_member(0, 1);
        a.members[sib].chunks[0].as_mut().unwrap()[0] ^= 1;
        let err = a.read_chunk(0, 0, 0).unwrap_err();
        assert!(matches!(
            err,
            ArrayError::Unrecoverable { reason: LossReason::DoubleFault, .. }
        ));
        // The corrupt sibling is equally unrecoverable while the row is
        // degraded (two unknowns, one parity) — typed, never garbage.
        let err = a.read_chunk(0, 0, 1).unwrap_err();
        assert!(matches!(
            err,
            ArrayError::Unrecoverable { reason: LossReason::DoubleFault, .. }
        ));
        // The intact survivors still serve directly.
        assert_eq!(a.read_chunk(0, 0, 2).unwrap().data, ps[2]);
        assert_eq!(a.read_chunk(0, 0, 3).unwrap().data, ps[3]);
    }

    #[test]
    fn compressed_parity_charges_fewer_device_bytes() {
        // The whole point: a row of well-compressed chunks must write
        // fewer parity bytes to the device than chunk-sized parity would.
        let mut a = rais5();
        let ps: Vec<Vec<u8>> = (0..4).map(|i| payload(i, 8192)).collect();
        let refs: Vec<&[u8]> = ps.iter().map(|p| p.as_slice()).collect();
        for row in 0..10 {
            a.write_row(0, row, &refs).unwrap();
        }
        let cap = a.capacity();
        assert_eq!(cap.parity_bytes_written, 10 * 8192);
        assert_eq!(cap.parity_control_bytes, 10 * 65536);
        // Device-level accounting agrees: total bytes written across
        // members is data + compressed parity, not data + full chunks.
        assert_eq!(a.stats().bytes_written, 10 * (4 * 8192 + 8192));
    }

    #[test]
    fn member_fault_plans_are_decorrelated() {
        let mut a = rais5();
        a.set_member_fault_plans(FaultPlan { seed: 7, bit_rot_rate: 0.5, ..FaultPlan::none() });
        let seeds: Vec<u64> =
            (0..5).map(|i| a.members[i].dev.config().fault.seed).collect();
        assert_eq!(seeds[0], 7, "lane 0 keeps the base seed");
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 5, "lane seeds must be distinct: {seeds:?}");
    }

    #[test]
    fn rebuild_requires_failed_member() {
        let mut a = rais5();
        assert_eq!(a.start_rebuild(0).unwrap_err(), ArrayError::NotFailed { member: 0 });
        assert_eq!(
            a.rebuild_step(0, 0, 1).unwrap_err(),
            ArrayError::NotRebuilding { member: 0 }
        );
        assert_eq!(a.kill_member(9).unwrap_err(), ArrayError::BadMember { member: 9, width: 5 });
    }

    #[test]
    fn payload_shape_errors() {
        let mut a = rais5();
        let big = vec![0u8; 65537];
        assert_eq!(
            a.write_chunk(0, 0, 0, &big).unwrap_err(),
            ArrayError::ChunkTooLarge { len: 65537, chunk: 65536 }
        );
        assert_eq!(a.write_chunk(0, 0, 0, &[]).unwrap_err(), ArrayError::EmptyChunk);
        assert_eq!(
            a.write_row(0, 0, &[&[1u8][..]]).unwrap_err(),
            ArrayError::WrongWidth { given: 1, data_width: 4 }
        );
        assert_eq!(
            a.read_chunk(0, 0, 0).unwrap_err(),
            ArrayError::NotStored { row: 0, pos: 0 }
        );
        assert_eq!(
            a.read_chunk(0, 99999, 0).unwrap_err(),
            ArrayError::BadRow { row: 99999, rows: 256 }
        );
    }
}
