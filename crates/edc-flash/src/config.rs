//! SSD geometry and timing configuration.

use crate::fault::FaultPlan;

/// Size of the allocation sector: the FTL maps and allocates in units of
/// 1 KiB, which is 25 % of a 4 KiB logical block — the smallest quantum
/// EDC's allocator uses (paper Fig. 5), so compressed blocks consume
/// physical space at exactly the paper's granularity.
pub const SECTOR_BYTES: u64 = 1024;

/// NAND + interface timing parameters.
///
/// Defaults approximate a 2009-era SLC SATA SSD (Intel X25-E class): reads
/// around 35 µs for 4 KiB, writes a few times slower per byte, erases in
/// the millisecond range, and a transfer path of a few ns/byte — producing
/// the linear response-vs-size behaviour of the paper's Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NandTiming {
    /// Fixed command/firmware overhead per read request (ns).
    pub read_overhead_ns: u64,
    /// Fixed command/firmware overhead per write request (ns).
    pub write_overhead_ns: u64,
    /// Per-byte cost of the read path: sensing + transfer (ns/byte).
    pub read_ns_per_byte: f64,
    /// Per-byte cost of the write path: transfer + program, amortized over
    /// internal channel parallelism (ns/byte).
    pub write_ns_per_byte: f64,
    /// Block erase latency (ns).
    pub erase_ns: u64,
    /// Per-byte cost of GC migration copies (internal read+program, no host
    /// transfer) (ns/byte).
    pub migrate_ns_per_byte: f64,
}

impl Default for NandTiming {
    fn default() -> Self {
        NandTiming {
            read_overhead_ns: 25_000,
            write_overhead_ns: 50_000,
            read_ns_per_byte: 3.0,
            write_ns_per_byte: 10.0,
            erase_ns: 1_500_000,
            migrate_ns_per_byte: 12.0,
        }
    }
}

/// A misconfigured [`SsdConfig`], reported by [`SsdConfig::check`] instead
/// of a panic so array constructors can surface it as a typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Logical capacity was zero.
    ZeroCapacity,
    /// Logical capacity is not a whole number of erase blocks.
    MisalignedCapacity,
    /// Over-provisioning must be positive to allow out-of-place updates.
    NoSpareArea,
    /// `sectors_per_block` was zero.
    ZeroBlockSize,
    /// The device has too few physical blocks for the GC watermark.
    TooSmallForWatermark,
    /// Spare blocks do not exceed the GC watermark.
    SpareBelowWatermark,
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::ZeroCapacity => write!(f, "capacity must be positive"),
            ConfigError::MisalignedCapacity => {
                write!(f, "logical capacity must be a whole number of blocks")
            }
            ConfigError::NoSpareArea => {
                write!(f, "need spare area for out-of-place updates")
            }
            ConfigError::ZeroBlockSize => write!(f, "sectors_per_block must be positive"),
            ConfigError::TooSmallForWatermark => {
                write!(f, "device too small for the GC watermark")
            }
            ConfigError::SpareBelowWatermark => {
                write!(f, "over-provisioning must exceed the GC watermark")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full device configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsdConfig {
    /// Logical (exported) capacity in bytes. Must be a multiple of the
    /// block size.
    pub logical_bytes: u64,
    /// Physical over-provisioning as a fraction of logical capacity
    /// (e.g. 0.10 = 10 % spare area).
    pub overprovision: f64,
    /// Sectors per erase block. With 1 KiB sectors, 256 gives the 64–128 KB
    /// erase blocks §II-A describes (we use 256 KiB-class blocks).
    pub sectors_per_block: u32,
    /// Free-block low-watermark at which GC starts, in blocks.
    pub gc_low_watermark: u32,
    /// Static wear-leveling threshold: when the spread between the most-
    /// and least-erased block exceeds this, GC picks the least-erased
    /// (cold) block as its victim so its data migrates and the block
    /// rejoins the erase rotation. `0` disables wear leveling (the
    /// default; greedy GC alone already wears evenly under the paper's
    /// workloads — see `edc-flash::wear` tests).
    pub wear_level_threshold: u32,
    /// Timing parameters.
    pub timing: NandTiming,
    /// Fault-injection plan ([`FaultPlan::none`] by default — no faults).
    /// When active, use the fallible device entry points
    /// (`SsdDevice::try_submit`, `Ftl::try_write`); the legacy infallible
    /// wrappers panic if an injected fault actually fires.
    pub fault: FaultPlan,
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            logical_bytes: 1 << 30, // 1 GiB keeps experiments fast but GC-active
            overprovision: 0.10,
            sectors_per_block: 256,
            gc_low_watermark: 8,
            wear_level_threshold: 0,
            timing: NandTiming::default(),
            fault: FaultPlan::none(),
        }
    }
}

impl SsdConfig {
    /// Bytes per erase block.
    pub fn block_bytes(&self) -> u64 {
        u64::from(self.sectors_per_block) * SECTOR_BYTES
    }

    /// Number of logical sectors exported.
    pub fn logical_sectors(&self) -> u64 {
        self.logical_bytes / SECTOR_BYTES
    }

    /// Number of physical blocks (logical + over-provisioned space).
    pub fn physical_blocks(&self) -> u32 {
        let physical_bytes = (self.logical_bytes as f64 * (1.0 + self.overprovision)) as u64;
        (physical_bytes / self.block_bytes()) as u32
    }

    /// Non-panicking invariant check; returns the first violated invariant.
    ///
    /// Fault-plan rates are still checked by [`FaultPlan::validate`] at
    /// device construction — they are developer errors, not array-shape
    /// errors, so they stay panicking.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.sectors_per_block == 0 {
            return Err(ConfigError::ZeroBlockSize);
        }
        if self.logical_bytes == 0 {
            return Err(ConfigError::ZeroCapacity);
        }
        if !self.logical_bytes.is_multiple_of(self.block_bytes()) {
            return Err(ConfigError::MisalignedCapacity);
        }
        if self.overprovision <= 0.0 {
            return Err(ConfigError::NoSpareArea);
        }
        if self.physical_blocks() <= self.gc_low_watermark + 1 {
            return Err(ConfigError::TooSmallForWatermark);
        }
        let spare_blocks = self.physical_blocks() - (self.logical_bytes / self.block_bytes()) as u32;
        if spare_blocks <= self.gc_low_watermark {
            return Err(ConfigError::SpareBelowWatermark);
        }
        Ok(())
    }

    /// Validate invariants; panics with a clear message on misconfiguration.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
        self.fault.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SsdConfig::default().validate();
    }

    #[test]
    fn physical_blocks_include_overprovisioning() {
        let cfg = SsdConfig::default();
        let logical_blocks = (cfg.logical_bytes / cfg.block_bytes()) as u32;
        assert!(cfg.physical_blocks() > logical_blocks);
        let spare = cfg.physical_blocks() - logical_blocks;
        assert!((spare as f64 / logical_blocks as f64 - 0.10).abs() < 0.01);
    }

    #[test]
    fn block_bytes_matches_sector_math() {
        let cfg = SsdConfig::default();
        assert_eq!(cfg.block_bytes(), 256 * 1024);
        assert_eq!(cfg.logical_sectors(), (1 << 30) / 1024);
    }

    #[test]
    #[should_panic(expected = "whole number of blocks")]
    fn misaligned_capacity_rejected() {
        let cfg = SsdConfig { logical_bytes: (1 << 30) + 1024, ..SsdConfig::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "spare area")]
    fn zero_overprovision_rejected() {
        let cfg = SsdConfig { overprovision: 0.0, ..SsdConfig::default() };
        cfg.validate();
    }

    #[test]
    fn check_reports_typed_errors_without_panicking() {
        assert_eq!(SsdConfig::default().check(), Ok(()));
        let cfg = SsdConfig { logical_bytes: (1 << 30) + 1024, ..SsdConfig::default() };
        assert_eq!(cfg.check(), Err(ConfigError::MisalignedCapacity));
        let cfg = SsdConfig { overprovision: 0.0, ..SsdConfig::default() };
        assert_eq!(cfg.check(), Err(ConfigError::NoSpareArea));
        let cfg = SsdConfig { logical_bytes: 0, ..SsdConfig::default() };
        assert_eq!(cfg.check(), Err(ConfigError::ZeroCapacity));
    }

    #[test]
    fn default_timing_write_slower_than_read() {
        let t = NandTiming::default();
        assert!(t.write_ns_per_byte > t.read_ns_per_byte);
        // 4 KiB read ≈ 37 µs — the X25-E ballpark.
        let read_4k = t.read_overhead_ns as f64 + 4096.0 * t.read_ns_per_byte;
        assert!((30_000.0..80_000.0).contains(&read_4k));
    }
}
