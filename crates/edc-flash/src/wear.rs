//! Wear analysis and endurance projection.
//!
//! The paper's third design objective is reliability: "the number of block
//! erase cycles \[is\] significantly reduced, which improves the system
//! reliability accordingly" (§III-A), and §VI lists endurance evaluation
//! as future work. This module turns the FTL's per-block erase counters
//! into the endurance measures that work needs: distribution statistics,
//! a wear-evenness index, and a projected device lifetime under the
//! observed write rate.

/// Summary of a device's wear state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearStats {
    /// Number of erase blocks.
    pub blocks: usize,
    /// Total erases performed.
    pub total_erases: u64,
    /// Mean erases per block.
    pub mean: f64,
    /// Maximum erases on any block (the lifetime-limiting figure).
    pub max: u32,
    /// Standard deviation of per-block erase counts.
    pub std_dev: f64,
    /// Gini coefficient of the erase distribution (0 = perfectly even
    /// wear, → 1 = all wear concentrated on few blocks).
    pub gini: f64,
}

impl WearStats {
    /// Compute statistics from per-block erase counts.
    pub fn from_counts(counts: &[u32]) -> Self {
        let n = counts.len();
        if n == 0 {
            return WearStats {
                blocks: 0,
                total_erases: 0,
                mean: 0.0,
                max: 0,
                std_dev: 0.0,
                gini: 0.0,
            };
        }
        let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
        let mean = total as f64 / n as f64;
        let max = counts.iter().copied().max().unwrap_or(0);
        let var =
            counts.iter().map(|&c| (f64::from(c) - mean).powi(2)).sum::<f64>() / n as f64;
        // Gini via the sorted-rank formula.
        let gini = if total == 0 {
            0.0
        } else {
            let mut sorted: Vec<u32> = counts.to_vec();
            sorted.sort_unstable();
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &c)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * f64::from(c))
                .sum();
            weighted / (n as f64 * total as f64)
        };
        WearStats { blocks: n, total_erases: total, mean, max, std_dev: var.sqrt(), gini }
    }

    /// Projected fraction of rated endurance consumed, given a per-block
    /// program/erase limit (e.g. 100 000 for SLC, 3 000 for TLC).
    pub fn endurance_consumed(&self, pe_limit: u32) -> f64 {
        assert!(pe_limit > 0);
        f64::from(self.max) / f64::from(pe_limit)
    }

    /// Projected device lifetime in days: how long until the *most-worn*
    /// block reaches `pe_limit`, if wear continues at the observed
    /// `erases-per-simulated-second` rate over `elapsed_s`.
    ///
    /// Returns `f64::INFINITY` when no wear was observed.
    pub fn projected_lifetime_days(&self, pe_limit: u32, elapsed_s: f64) -> f64 {
        assert!(pe_limit > 0 && elapsed_s > 0.0);
        if self.max == 0 {
            return f64::INFINITY;
        }
        let max_rate_per_s = f64::from(self.max) / elapsed_s;
        let remaining = f64::from(pe_limit.saturating_sub(self.max));
        remaining / max_rate_per_s / 86_400.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;
    use crate::ssd::{IoKind, SsdDevice};

    #[test]
    fn empty_and_zero_wear() {
        let s = WearStats::from_counts(&[]);
        assert_eq!(s.blocks, 0);
        let s = WearStats::from_counts(&[0, 0, 0]);
        assert_eq!(s.total_erases, 0);
        assert_eq!(s.gini, 0.0);
        assert_eq!(s.projected_lifetime_days(1000, 60.0), f64::INFINITY);
    }

    #[test]
    fn uniform_wear_has_zero_gini() {
        let s = WearStats::from_counts(&[5; 100]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.max, 5);
        assert_eq!(s.std_dev, 0.0);
        assert!(s.gini.abs() < 1e-12, "gini {}", s.gini);
    }

    #[test]
    fn concentrated_wear_has_high_gini() {
        let mut counts = vec![0u32; 100];
        counts[0] = 1000;
        let s = WearStats::from_counts(&counts);
        assert!(s.gini > 0.95, "gini {}", s.gini);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn gini_orders_distributions() {
        let even = WearStats::from_counts(&[10, 10, 10, 10]);
        let mild = WearStats::from_counts(&[5, 10, 10, 15]);
        let skew = WearStats::from_counts(&[0, 0, 10, 30]);
        assert!(even.gini < mild.gini);
        assert!(mild.gini < skew.gini);
    }

    #[test]
    fn endurance_and_lifetime_math() {
        let s = WearStats::from_counts(&[10, 20, 30]);
        assert!((s.endurance_consumed(100) - 0.30).abs() < 1e-12);
        // max=30 erases in 60 s → 0.5/s; 70 remaining → 140 s ≈ 0.00162 days.
        let days = s.projected_lifetime_days(100, 60.0);
        assert!((days - 140.0 / 86_400.0).abs() < 1e-9, "days {days}");
    }

    #[test]
    fn log_structured_ftl_wears_evenly() {
        // The FTL's round-robin free-list reuse must keep the Gini low even
        // under random overwrites.
        let cfg = SsdConfig {
            logical_bytes: 16 << 20,
            overprovision: 0.25,
            sectors_per_block: 64,
            gc_low_watermark: 3,
            ..SsdConfig::default()
        };
        let mut dev = SsdDevice::new(cfg);
        dev.precondition(1.0);
        let mut x = 77u64;
        let mut now = 0;
        for _ in 0..30_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let offset = (x % (dev.logical_bytes() / 4096)) * 4096;
            let c = dev.submit(now, IoKind::Write, offset, 4096);
            now = c.finish_ns;
        }
        let s = WearStats::from_counts(dev.erase_counts());
        assert!(s.total_erases > 100, "need real wear, got {}", s.total_erases);
        assert!(s.gini < 0.5, "wear too uneven: gini {}", s.gini);
    }

    #[test]
    fn fewer_bytes_written_project_longer_lifetime() {
        let run = |len: u32| -> f64 {
            let cfg = SsdConfig {
                logical_bytes: 16 << 20,
                overprovision: 0.25,
                sectors_per_block: 64,
                gc_low_watermark: 3,
                ..SsdConfig::default()
            };
            let mut dev = SsdDevice::new(cfg);
            dev.precondition(1.0);
            let mut x = 5u64;
            let mut now = 0;
            for _ in 0..20_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let offset = (x % (dev.logical_bytes() / 4096)) * 4096;
                let c = dev.submit(now, IoKind::Write, offset, len);
                now = c.finish_ns;
            }
            WearStats::from_counts(dev.erase_counts()).projected_lifetime_days(100_000, 60.0)
        };
        let full = run(4096);
        let compressed = run(2048);
        assert!(
            compressed > full,
            "half-size writes must project longer life: {compressed} vs {full}"
        );
    }
}
