//! Deterministic fault injection for the simulated flash stack.
//!
//! Real NAND fails in structured ways: pages fail to program, blocks fail
//! to erase, reads are disturbed into bit errors, and power can vanish
//! between any two page programs. A [`FaultPlan`] describes *how often*
//! each of those happens; a [`FaultState`] turns the plan into a
//! deterministic, seeded stream of yes/no decisions so that every
//! campaign run — and every failing test case — replays exactly.
//!
//! The plan is plain `Copy` data and rides inside
//! [`crate::SsdConfig`] (device level) and the pipeline configuration in
//! `edc-core` (store level). A plan with all rates at zero and no power
//! cut is *inactive*: the fallible entry points become infallible and the
//! legacy panicking wrappers stay safe to call.
//!
//! Decisions are drawn by hashing `(seed, draw counter)` through
//! splitmix64, so they depend only on *how many* decisions were made
//! before, never on wall-clock time or thread interleaving.

use core::fmt;

/// splitmix64 finalizer — the same mixer `edc-datagen` uses, duplicated
/// here so `edc-flash` keeps zero dependencies.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded description of the faults to inject.
///
/// All rates are probabilities in `[0, 1]` evaluated per opportunity
/// (per read request, per page program, per block erase, per page
/// fetched). `power_cut_after_programs` arms a one-shot power loss that
/// fires when the cumulative page-program counter reaches the given
/// value — "power cut after N page programs".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the decision stream. Two components given the same plan
    /// draw identical fault sequences.
    pub seed: u64,
    /// Probability that a read attempt fails transiently (retry may
    /// succeed).
    pub read_error_rate: f64,
    /// Probability that a page program fails (the page is scrapped and
    /// the write retried on the next page).
    pub program_error_rate: f64,
    /// Probability that a block erase fails (the block is retired).
    pub erase_error_rate: f64,
    /// Probability, per page fetched, that a stored bit has rotted —
    /// persistent corruption caught by checksums, not by retries.
    pub bit_rot_rate: f64,
    /// One-shot power loss after this many cumulative page programs.
    pub power_cut_after_programs: Option<u64>,
    /// Transient-read retry budget the degradation ladder may spend
    /// before declaring a read unrecoverable.
    pub read_retries: u32,
    /// Allow serving a write-through run's raw payload even when its
    /// checksum mismatches (best-effort degraded read instead of a hard
    /// error). Off by default: silent corruption stays loud unless a
    /// fault campaign opts in.
    pub allow_degraded_reads: bool,
}

impl FaultPlan {
    /// A plan that injects nothing — the implicit default everywhere.
    pub const fn none() -> Self {
        FaultPlan {
            seed: 0,
            read_error_rate: 0.0,
            program_error_rate: 0.0,
            erase_error_rate: 0.0,
            bit_rot_rate: 0.0,
            power_cut_after_programs: None,
            read_retries: 2,
            allow_degraded_reads: false,
        }
    }

    /// Whether any fault can ever fire under this plan.
    pub fn is_active(&self) -> bool {
        self.read_error_rate > 0.0
            || self.program_error_rate > 0.0
            || self.erase_error_rate > 0.0
            || self.bit_rot_rate > 0.0
            || self.power_cut_after_programs.is_some()
    }

    /// Panic with a clear message if any rate is outside `[0, 1]`.
    pub fn validate(&self) {
        for (name, rate) in [
            ("read_error_rate", self.read_error_rate),
            ("program_error_rate", self.program_error_rate),
            ("erase_error_rate", self.erase_error_rate),
            ("bit_rot_rate", self.bit_rot_rate),
        ] {
            assert!((0.0..=1.0).contains(&rate), "{name} must be in [0, 1], got {rate}");
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Encoded size of a [`FaultPlan`] in bytes (fixed-width, little-endian).
pub const FAULT_PLAN_BYTES: usize = 54;

impl FaultPlan {
    /// Serialize the plan into a fixed-width little-endian record.
    ///
    /// Rates are stored as IEEE-754 bit patterns so `decode` rebuilds a
    /// plan whose decision stream is bit-identical — this is what lets a
    /// record/replay log carry the fault environment along with the ops.
    pub fn encode(&self) -> [u8; FAULT_PLAN_BYTES] {
        let mut out = [0u8; FAULT_PLAN_BYTES];
        out[0..8].copy_from_slice(&self.seed.to_le_bytes());
        out[8..16].copy_from_slice(&self.read_error_rate.to_bits().to_le_bytes());
        out[16..24].copy_from_slice(&self.program_error_rate.to_bits().to_le_bytes());
        out[24..32].copy_from_slice(&self.erase_error_rate.to_bits().to_le_bytes());
        out[32..40].copy_from_slice(&self.bit_rot_rate.to_bits().to_le_bytes());
        out[40] = self.power_cut_after_programs.is_some() as u8;
        out[41..49].copy_from_slice(&self.power_cut_after_programs.unwrap_or(0).to_le_bytes());
        out[49..53].copy_from_slice(&self.read_retries.to_le_bytes());
        out[53] = self.allow_degraded_reads as u8;
        out
    }

    /// Inverse of [`FaultPlan::encode`]. Returns `None` on short input or
    /// flag bytes outside `{0, 1}` (corrupt record, not a panic).
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < FAULT_PLAN_BYTES {
            return None;
        }
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        let f64_at = |i: usize| f64::from_bits(u64_at(i));
        let cut_flag = bytes[40];
        let degraded = bytes[53];
        if cut_flag > 1 || degraded > 1 {
            return None;
        }
        Some(FaultPlan {
            seed: u64_at(0),
            read_error_rate: f64_at(8),
            program_error_rate: f64_at(16),
            erase_error_rate: f64_at(24),
            bit_rot_rate: f64_at(32),
            power_cut_after_programs: (cut_flag == 1).then(|| u64_at(41)),
            read_retries: u32::from_le_bytes(bytes[49..53].try_into().unwrap()),
            allow_degraded_reads: degraded == 1,
        })
    }
}

/// Derive lane `lane`'s fault seed from a base plan seed: identity for
/// lane 0 (a one-lane component then draws exactly the base stream) and a
/// splitmix-style avalanche of `(seed, lane)` otherwise, so shards or
/// array members fault independently instead of in lockstep. Shared by
/// the sharded pipeline front-end (per-shard plans) and the RAIS array
/// (per-member plans).
pub fn lane_seed(seed: u64, lane: usize) -> u64 {
    if lane == 0 {
        return seed;
    }
    // The avalanche steps of splitmix64 without its increment, preserving
    // bit-for-bit the per-shard seeds recorded in existing `.edcrr` logs.
    let mut x = seed ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// The plan re-seeded for lane `lane` via [`lane_seed`]; every other
    /// knob is copied verbatim.
    pub fn for_lane(&self, lane: usize) -> FaultPlan {
        FaultPlan { seed: lane_seed(self.seed, lane), ..*self }
    }
}

/// A typed flash-level fault, surfaced by the fallible device entry
/// points instead of a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// A read attempt failed transiently (read disturb, interface CRC).
    ReadFault,
    /// A page program failed even after scrapping and retrying pages.
    ProgramFault,
    /// A block erase failed and the block was retired.
    EraseFault,
    /// Power was lost after the given cumulative page-program count.
    PowerCut {
        /// Page programs completed before the lights went out.
        after_programs: u64,
    },
    /// The device is powered off (a power cut fired earlier); call
    /// `power_cycle` before issuing more I/O.
    PoweredOff,
    /// Block retirement exhausted the spare area: no free block remains.
    WornOut,
    /// The whole device failed (controller death / member-SSD kill in a
    /// RAIS campaign); no I/O will ever succeed again on this instance.
    DeviceFailed,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::ReadFault => write!(f, "transient read fault"),
            FaultError::ProgramFault => write!(f, "page program fault"),
            FaultError::EraseFault => write!(f, "block erase fault"),
            FaultError::PowerCut { after_programs } => {
                write!(f, "power cut after {after_programs} page programs")
            }
            FaultError::PoweredOff => write!(f, "device is powered off after a power cut"),
            FaultError::WornOut => write!(f, "device worn out: spare blocks exhausted"),
            FaultError::DeviceFailed => write!(f, "whole device failed"),
        }
    }
}

impl std::error::Error for FaultError {}

/// Counters of faults actually injected/observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient read faults fired.
    pub read_faults: u64,
    /// Page-program faults fired.
    pub program_faults: u64,
    /// Block-erase faults fired.
    pub erase_faults: u64,
    /// Pages whose fetch was served with a rotted bit.
    pub rot_pages: u64,
    /// Power cuts fired.
    pub power_cuts: u64,
}

impl FaultStats {
    /// Fold another component's counters into this one (per-shard
    /// aggregation).
    pub fn merge(&mut self, other: &FaultStats) {
        self.read_faults += other.read_faults;
        self.program_faults += other.program_faults;
        self.erase_faults += other.erase_faults;
        self.rot_pages += other.rot_pages;
        self.power_cuts += other.power_cuts;
    }
}

/// The live decision stream: a [`FaultPlan`] plus counters.
///
/// Decisions are pure functions of `(plan.seed, draws-so-far)`, so two
/// states with the same plan walked through the same sequence of
/// questions answer identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultState {
    plan: FaultPlan,
    /// Decisions drawn so far (the stream position).
    draws: u64,
    /// Cumulative page programs (the power-cut clock).
    programs: u64,
    powered: bool,
    stats: FaultStats,
}

impl FaultState {
    /// Start a decision stream for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        plan.validate();
        FaultState { plan, draws: 0, programs: 0, powered: true, stats: FaultStats::default() }
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injected-fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Cumulative page programs (the power-cut clock position).
    pub fn programs(&self) -> u64 {
        self.programs
    }

    /// Whether the (simulated) device currently has power.
    pub fn powered(&self) -> bool {
        self.powered
    }

    /// Restore power after a cut. The one-shot power cut is disarmed —
    /// the device stays up until a new plan arms another — and the
    /// program clock restarts at zero.
    pub fn power_cycle(&mut self) {
        self.powered = true;
        self.plan.power_cut_after_programs = None;
        self.programs = 0;
    }

    /// Next decision in `[0, 1)`.
    #[inline]
    fn draw(&mut self) -> f64 {
        let x = splitmix64(self.plan.seed ^ self.draws.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.draws += 1;
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Should this read attempt fail transiently?
    pub fn read_fault(&mut self) -> bool {
        if self.plan.read_error_rate == 0.0 {
            return false;
        }
        let hit = self.draw() < self.plan.read_error_rate;
        if hit {
            self.stats.read_faults += 1;
        }
        hit
    }

    /// Has this fetched page rotted? Returns a deterministic bit index to
    /// flip when it has.
    pub fn bit_rot(&mut self) -> Option<u32> {
        if self.plan.bit_rot_rate == 0.0 {
            return None;
        }
        if self.draw() < self.plan.bit_rot_rate {
            self.stats.rot_pages += 1;
            // A second draw picks which bit of the page rots.
            let bit = (self.draw() * 32768.0) as u32; // 4 KiB = 32768 bits
            Some(bit)
        } else {
            None
        }
    }

    /// Should this page program fail?
    pub fn program_fault(&mut self) -> bool {
        if self.plan.program_error_rate == 0.0 {
            return false;
        }
        let hit = self.draw() < self.plan.program_error_rate;
        if hit {
            self.stats.program_faults += 1;
        }
        hit
    }

    /// Should this block erase fail?
    pub fn erase_fault(&mut self) -> bool {
        if self.plan.erase_error_rate == 0.0 {
            return false;
        }
        let hit = self.draw() < self.plan.erase_error_rate;
        if hit {
            self.stats.erase_faults += 1;
        }
        hit
    }

    /// Advance the power-cut clock by one page program. Returns the
    /// power-cut error exactly when the armed budget is exhausted: the
    /// program that *would* have been the `N+1`-th does not happen.
    pub fn program_page(&mut self) -> Result<(), FaultError> {
        if !self.powered {
            return Err(FaultError::PoweredOff);
        }
        if let Some(cut) = self.plan.power_cut_after_programs {
            if self.programs >= cut {
                self.powered = false;
                self.stats.power_cuts += 1;
                return Err(FaultError::PowerCut { after_programs: self.programs });
            }
        }
        self.programs += 1;
        Ok(())
    }

    /// Cut power immediately, regardless of any armed program budget.
    ///
    /// This is the deterministic "yank the cord now" used by replayed
    /// `PowerCut` ops: unlike an armed `power_cut_after_programs` it does
    /// not depend on the program clock, so it lands at exactly the same
    /// op boundary on every replay. No-op if already powered off.
    pub fn cut_power(&mut self) {
        if self.powered {
            self.powered = false;
            self.stats.power_cuts += 1;
        }
    }

    /// Error unless the device has power.
    pub fn check_power(&self) -> Result<(), FaultError> {
        if self.powered {
            Ok(())
        } else {
            Err(FaultError::PoweredOff)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_never_fires() {
        let mut s = FaultState::new(FaultPlan::none());
        for _ in 0..10_000 {
            assert!(!s.read_fault());
            assert!(!s.program_fault());
            assert!(!s.erase_fault());
            assert!(s.bit_rot().is_none());
            assert!(s.program_page().is_ok());
        }
        assert_eq!(s.stats(), FaultStats::default());
        assert!(!FaultPlan::none().is_active());
    }

    #[test]
    fn decision_stream_is_deterministic() {
        let plan = FaultPlan { seed: 42, read_error_rate: 0.3, ..FaultPlan::none() };
        let mut a = FaultState::new(plan);
        let mut b = FaultState::new(plan);
        let seq_a: Vec<bool> = (0..1000).map(|_| a.read_fault()).collect();
        let seq_b: Vec<bool> = (0..1000).map(|_| b.read_fault()).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&x| x) && seq_a.iter().any(|&x| !x));
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mk = |seed| FaultState::new(FaultPlan { seed, read_error_rate: 0.5, ..FaultPlan::none() });
        let (mut a, mut b) = (mk(1), mk(2));
        let seq_a: Vec<bool> = (0..256).map(|_| a.read_fault()).collect();
        let seq_b: Vec<bool> = (0..256).map(|_| b.read_fault()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let mut s = FaultState::new(FaultPlan {
            seed: 7,
            program_error_rate: 0.1,
            ..FaultPlan::none()
        });
        let hits = (0..20_000).filter(|_| s.program_fault()).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.08..0.12).contains(&rate), "rate {rate}");
        assert_eq!(s.stats().program_faults, hits as u64);
    }

    #[test]
    fn power_cut_fires_exactly_once_at_budget() {
        let mut s = FaultState::new(FaultPlan {
            power_cut_after_programs: Some(3),
            ..FaultPlan::none()
        });
        assert!(s.program_page().is_ok());
        assert!(s.program_page().is_ok());
        assert!(s.program_page().is_ok());
        assert_eq!(s.program_page(), Err(FaultError::PowerCut { after_programs: 3 }));
        assert!(!s.powered());
        assert_eq!(s.program_page(), Err(FaultError::PoweredOff));
        assert_eq!(s.check_power(), Err(FaultError::PoweredOff));
        s.power_cycle();
        assert!(s.powered());
        // Disarmed: the clock restarts and no further cut fires.
        for _ in 0..100 {
            assert!(s.program_page().is_ok());
        }
        assert_eq!(s.stats().power_cuts, 1);
    }

    #[test]
    fn bit_rot_reports_bit_index_in_page() {
        let mut s = FaultState::new(FaultPlan { seed: 3, bit_rot_rate: 1.0, ..FaultPlan::none() });
        let bit = s.bit_rot().expect("rate 1.0 must rot");
        assert!(bit < 32768);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn invalid_rate_rejected() {
        FaultState::new(FaultPlan { read_error_rate: 1.5, ..FaultPlan::none() });
    }

    #[test]
    fn plan_encode_decode_round_trips() {
        let plans = [
            FaultPlan::none(),
            FaultPlan {
                seed: 0xDEAD_BEEF_CAFE_F00D,
                read_error_rate: 0.125,
                program_error_rate: 1.0 / 3.0,
                erase_error_rate: 0.0078125,
                bit_rot_rate: 1e-6,
                power_cut_after_programs: Some(u64::MAX - 1),
                read_retries: 9,
                allow_degraded_reads: true,
            },
        ];
        for plan in plans {
            let bytes = plan.encode();
            assert_eq!(FaultPlan::decode(&bytes), Some(plan));
        }
        assert_eq!(FaultPlan::decode(&[0u8; FAULT_PLAN_BYTES - 1]), None);
        let mut bad = FaultPlan::none().encode();
        bad[40] = 2;
        assert_eq!(FaultPlan::decode(&bad), None);
    }

    #[test]
    fn decoded_plan_draws_identical_stream() {
        let plan = FaultPlan { seed: 99, read_error_rate: 0.4, ..FaultPlan::none() };
        let decoded = FaultPlan::decode(&plan.encode()).unwrap();
        let mut a = FaultState::new(plan);
        let mut b = FaultState::new(decoded);
        for _ in 0..512 {
            assert_eq!(a.read_fault(), b.read_fault());
        }
    }

    #[test]
    fn lane_seeds_decorrelate_but_lane_zero_is_identity() {
        let base = FaultPlan { seed: 77, read_error_rate: 0.5, ..FaultPlan::none() };
        assert_eq!(base.for_lane(0), base);
        let mut streams: Vec<Vec<bool>> = (0..4)
            .map(|lane| {
                let mut s = FaultState::new(base.for_lane(lane));
                (0..256).map(|_| s.read_fault()).collect()
            })
            .collect();
        streams.sort();
        streams.dedup();
        assert_eq!(streams.len(), 4, "every lane must draw a distinct stream");
    }

    #[test]
    fn forced_cut_power_is_immediate_and_idempotent() {
        let mut s = FaultState::new(FaultPlan::none());
        assert!(s.program_page().is_ok());
        s.cut_power();
        assert!(!s.powered());
        assert_eq!(s.program_page(), Err(FaultError::PoweredOff));
        s.cut_power(); // no double count
        assert_eq!(s.stats().power_cuts, 1);
        s.power_cycle();
        assert!(s.powered());
        assert!(s.program_page().is_ok());
    }
}
