//! # edc-flash
//!
//! NAND-flash SSD simulator and RAIS (Redundant Array of Independent SSDs)
//! substrate for the EDC reproduction.
//!
//! The paper evaluates EDC on real Intel X25-E SATA SSDs (single device and
//! a software RAIS5 of five). This crate replaces that hardware with a
//! simulator that reproduces the two device properties the paper's §II-A
//! identifies as the foundation of the EDC design:
//!
//! 1. **Response time grows linearly with request size** (Fig. 1): both
//!    reads and writes are dominated by electronic transfer, so the service
//!    model charges a fixed command overhead plus per-byte transfer and
//!    per-byte program/read cost.
//! 2. **Total bytes written drive garbage collection and wear**: the FTL is
//!    log-structured with out-of-place updates; when free blocks run low a
//!    greedy collector migrates valid data and erases victims, stalling the
//!    device and consuming endurance. Writing less (i.e., compressing)
//!    directly reduces GC frequency and erase counts.
//!
//! ## Layout
//!
//! * [`config`] — geometry and timing parameters ([`SsdConfig`] defaults
//!   approximate a 2009-era SLC SATA device like the X25-E),
//! * [`ftl`] — sector-mapped flash translation layer with greedy GC and
//!   per-block wear accounting,
//! * [`ssd`] — [`SsdDevice`]: the timing front-end that services byte-
//!   addressed reads/writes and reports [`DeviceStats`],
//! * [`rais`] — [`RaisArray`]: RAIS0/RAIS5 striping over N simulated
//!   devices (the paper's Fig. 11 platform) with compression-aware parity,
//!   whole-member fault injection, degraded-mode reads and online rebuild.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fault;
pub mod ftl;
pub mod hdd;
pub mod rais;
pub mod ssd;
pub mod wear;

pub use config::{ConfigError, NandTiming, SsdConfig};
pub use fault::{lane_seed, FaultError, FaultPlan, FaultState, FaultStats, FAULT_PLAN_BYTES};
pub use ftl::{Ftl, FtlStats, IntegrityError};
pub use hdd::{HddDevice, HddTiming};
pub use rais::{
    ArrayError, ArrayIntegrityError, ArrayScrubReport, CapacityReport, ChunkRead, LossReason,
    MemberState, RaisArray, RaisLevel, ReadMode, RebuildProgress, RepairStats,
};
pub use ssd::{DeviceStats, IoKind, SsdDevice};
pub use wear::WearStats;
