//! Sector-mapped flash translation layer with out-of-place updates, greedy
//! garbage collection and wear accounting.
//!
//! The FTL is log-structured: every written sector is appended to the
//! active block; overwriting a logical sector merely invalidates its old
//! physical location (§III-C of the paper: "the FTL ... uses an
//! out-of-place update scheme"). When free blocks fall to the low
//! watermark, greedy GC picks the block with the fewest valid sectors,
//! migrates them and erases it. The write-amplification and erase counts
//! this produces are exactly the channel through which compression buys
//! endurance and tail latency in the paper's argument.

use crate::config::{SsdConfig, SECTOR_BYTES};
use crate::fault::{FaultError, FaultPlan, FaultState, FaultStats};
use core::fmt;
use std::collections::VecDeque;

/// `rmap` marker: physical sector never written since erase.
const FREE: u32 = u32::MAX;
/// `rmap` marker: physical sector holds stale data.
const INVALID: u32 = u32::MAX - 1;
/// `map` marker: logical sector not mapped.
const UNMAPPED: u32 = u32::MAX;

/// Cumulative FTL statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Sectors written on behalf of the host.
    pub user_sectors_written: u64,
    /// Sectors copied by garbage collection.
    pub migrated_sectors: u64,
    /// Blocks erased.
    pub erases: u64,
    /// GC invocations.
    pub gc_runs: u64,
    /// Sectors discarded via TRIM.
    pub trimmed_sectors: u64,
    /// Blocks permanently retired after an erase fault.
    pub retired_blocks: u64,
}

impl FtlStats {
    /// Fold another FTL's counters into this one (array-level aggregation
    /// over member devices).
    pub fn merge(&mut self, other: &FtlStats) {
        self.user_sectors_written += other.user_sectors_written;
        self.migrated_sectors += other.migrated_sectors;
        self.erases += other.erases;
        self.gc_runs += other.gc_runs;
        self.trimmed_sectors += other.trimmed_sectors;
        self.retired_blocks += other.retired_blocks;
    }

    /// Write amplification factor: physical sectors written per user sector.
    pub fn write_amplification(&self) -> f64 {
        if self.user_sectors_written == 0 {
            return 1.0;
        }
        (self.user_sectors_written + self.migrated_sectors) as f64
            / self.user_sectors_written as f64
    }
}

/// Cost incurred by one FTL write call, for the timing layer to charge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteCharge {
    /// Sectors migrated by GC triggered within this call.
    pub migrated_sectors: u64,
    /// Blocks erased within this call.
    pub erases: u64,
}

/// Sector-mapped FTL.
#[derive(Debug, Clone)]
pub struct Ftl {
    sectors_per_block: u32,
    gc_low_watermark: u32,
    wear_level_threshold: u32,
    /// Logical sector -> physical sector.
    map: Vec<u32>,
    /// Physical sector -> logical sector, or FREE/INVALID.
    rmap: Vec<u32>,
    /// Valid sectors per block.
    valid: Vec<u16>,
    /// Erase count per block (wear).
    erase_count: Vec<u32>,
    /// Blocks retired after an erase fault (never reused, never victims).
    retired: Vec<bool>,
    free_blocks: VecDeque<u32>,
    active_block: u32,
    /// Next sector index within the active block.
    write_ptr: u32,
    stats: FtlStats,
    /// Seeded fault-decision stream (inactive by default).
    faults: FaultState,
    /// GC victim index: `bucket[v]` lists the *sealed* blocks (non-active,
    /// non-free, non-retired — i.e. GC candidates) holding exactly `v`
    /// valid sectors. A block enters its bucket when the active block
    /// rotates away from it and leaves when GC picks it; valid-count
    /// *increments* only ever hit the active block (the log appends
    /// there), so sealed blocks only move downward — each move is one
    /// swap_remove + push. Replaces the former O(#blocks) victim scan.
    bucket: Vec<Vec<u32>>,
    /// Position of each sealed block within its bucket (swap_remove index;
    /// meaningless while unsealed).
    bucket_pos: Vec<u32>,
    /// Bucket membership flag per block.
    sealed: Vec<bool>,
    /// Victim-eligibility veto per block. A pinned block never enters the
    /// GC candidate index, so it is never migrated or erased — the hook a
    /// dedup layer uses to keep a physical block untouched while content
    /// stored in it has outstanding extra references.
    pinned: Vec<bool>,
    /// Monotone cursor: no non-empty bucket exists below this index. Pops
    /// advance it, inserts below it pull it back — amortized O(1) victim
    /// selection.
    min_bucket: usize,
    /// Logical sectors relocated by GC migration since the last
    /// [`Ftl::take_relocations`] drain. This is the cooperation hook for
    /// the heat-aware recompression layer: relocated LSNs are exactly the
    /// data GC already paid to move, so the layer above can fold them into
    /// its recompression candidate set (and invalidate any cached
    /// translations) without scanning the device. Bounded by
    /// [`RELOCATION_LOG_CAP`]; overflow drops further entries (the log is
    /// a best-effort hint, never a correctness dependency).
    relocated: Vec<u64>,
}

/// Upper bound on the undrained GC relocation log. A caller that never
/// drains must not turn a GC-heavy workload into unbounded memory.
const RELOCATION_LOG_CAP: usize = 1 << 20;

/// One violated FTL invariant, reported by [`Ftl::verify_integrity`]
/// instead of a panic so callers (tests, the fault campaign) can treat a
/// broken mapping as data rather than an abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityError {
    /// A mapped logical sector's reverse entry does not point back at it.
    RmapMismatch {
        /// The logical sector whose mapping is broken.
        lsn: u64,
        /// The physical sector its map entry names.
        psn: u32,
    },
    /// A block's valid-sector counter disagrees with the reverse map.
    ValidCountMismatch {
        /// The block in question.
        block: u32,
        /// What the counter says.
        recorded: u16,
        /// What the reverse map actually holds.
        actual: u16,
    },
    /// A block on the free list still holds valid data.
    FreeBlockHoldsData {
        /// The offending free-listed block.
        block: u32,
        /// Its (non-zero) valid counter.
        valid: u16,
    },
    /// The total of per-block valid counters disagrees with the number of
    /// mapped logical sectors.
    ValidTotalMismatch {
        /// Sum of valid counters.
        valid: u64,
        /// Mapped logical sectors.
        mapped: u64,
    },
    /// The GC valid-count bucket structure disagrees with per-block state
    /// (membership, bucket index or recorded position) — the incremental
    /// O(1) victim index has drifted from the ground truth.
    GcBucketMismatch {
        /// The block whose bucket state is wrong.
        block: u32,
        /// Which bucket invariant it violates.
        reason: &'static str,
    },
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityError::RmapMismatch { lsn, psn } => {
                write!(f, "rmap of psn {psn} does not point back at lsn {lsn}")
            }
            IntegrityError::ValidCountMismatch { block, recorded, actual } => {
                write!(f, "valid counter of block {block}: recorded {recorded}, actual {actual}")
            }
            IntegrityError::FreeBlockHoldsData { block, valid } => {
                write!(f, "free block {block} holds {valid} valid sectors")
            }
            IntegrityError::ValidTotalMismatch { valid, mapped } => {
                write!(f, "{valid} valid sectors vs {mapped} mapped logical sectors")
            }
            IntegrityError::GcBucketMismatch { block, reason } => {
                write!(f, "GC bucket state of block {block} is wrong: {reason}")
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

impl Ftl {
    /// Build an empty (fully erased) FTL for `cfg`.
    pub fn new(cfg: &SsdConfig) -> Self {
        cfg.validate();
        let blocks = cfg.physical_blocks();
        let sectors_per_block = cfg.sectors_per_block;
        let phys_sectors = blocks as usize * sectors_per_block as usize;
        let free_blocks: VecDeque<u32> = (1..blocks).collect();
        let active_block = 0;
        Ftl {
            sectors_per_block,
            gc_low_watermark: cfg.gc_low_watermark,
            wear_level_threshold: cfg.wear_level_threshold,
            map: vec![UNMAPPED; cfg.logical_sectors() as usize],
            rmap: vec![FREE; phys_sectors],
            valid: vec![0; blocks as usize],
            erase_count: vec![0; blocks as usize],
            retired: vec![false; blocks as usize],
            free_blocks,
            active_block,
            write_ptr: 0,
            stats: FtlStats::default(),
            faults: FaultState::new(cfg.fault),
            bucket: vec![Vec::new(); sectors_per_block as usize + 1],
            bucket_pos: vec![0; blocks as usize],
            sealed: vec![false; blocks as usize],
            pinned: vec![false; blocks as usize],
            min_bucket: sectors_per_block as usize + 1,
            relocated: Vec::new(),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Injected-fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats()
    }

    /// Drain the log of logical sectors GC has relocated since the last
    /// drain, in migration order. Feed these to the heat-aware
    /// recompression layer: they are blocks GC already rewrote, so
    /// re-encoding them costs no extra device moves, and any cached
    /// physical translations for them are now stale.
    pub fn take_relocations(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.relocated)
    }

    /// Number of undrained GC relocations (saturates at the internal cap).
    pub fn relocation_backlog(&self) -> usize {
        self.relocated.len()
    }

    /// The live fault-decision stream (the SSD front-end shares it so
    /// device reads and FTL programs draw from one deterministic
    /// sequence).
    pub fn faults_mut(&mut self) -> &mut FaultState {
        &mut self.faults
    }

    /// Replace the fault plan, restarting the decision stream. Lets a
    /// campaign precondition a device fault-free, then arm faults.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultState::new(plan);
    }

    /// Number of logical sectors exported.
    pub fn logical_sectors(&self) -> u64 {
        self.map.len() as u64
    }

    /// Per-block erase counts (wear distribution).
    pub fn erase_counts(&self) -> &[u32] {
        &self.erase_count
    }

    /// Is the logical sector mapped (has it ever been written)?
    pub fn is_mapped(&self, lsn: u64) -> bool {
        self.map[lsn as usize] != UNMAPPED
    }

    /// Number of currently free blocks.
    pub fn free_block_count(&self) -> usize {
        self.free_blocks.len()
    }

    /// Write `count` logical sectors starting at `lsn`, returning the GC
    /// cost incurred.
    ///
    /// # Panics
    /// Panics if the range exceeds the logical capacity, or if an
    /// injected fault fires — arm a [`FaultPlan`] only together with the
    /// fallible [`Ftl::try_write`].
    pub fn write(&mut self, lsn: u64, count: u64) -> WriteCharge {
        self.try_write(lsn, count).expect("fault injected — use try_write with an armed FaultPlan")
    }

    /// Fallible write path: like [`Ftl::write`] but injected faults come
    /// back as typed errors. Program faults are absorbed (the page is
    /// scrapped and the next one tried); power cuts and spare-area
    /// exhaustion abort mid-range, leaving the sectors already written
    /// durable and the rest untouched — exactly what real NAND leaves
    /// behind.
    ///
    /// # Panics
    /// Panics if the range exceeds the logical capacity.
    pub fn try_write(&mut self, lsn: u64, count: u64) -> Result<WriteCharge, FaultError> {
        assert!(
            lsn + count <= self.map.len() as u64,
            "write beyond logical capacity: lsn {lsn} + {count} > {}",
            self.map.len()
        );
        self.faults.check_power()?;
        let mut charge = WriteCharge::default();
        for l in lsn..lsn + count {
            // The power-cut clock ticks before any state changes: a cut
            // between two sector programs leaves the earlier sectors
            // durable and this one entirely unwritten.
            self.faults.program_page()?;
            let psn = self.allocate(&mut charge)?;
            self.invalidate(l);
            self.map[l as usize] = psn;
            self.rmap[psn as usize] = l as u32;
            debug_assert!(!self.sealed[(psn / self.sectors_per_block) as usize]);
            self.valid[(psn / self.sectors_per_block) as usize] += 1;
            self.stats.user_sectors_written += 1;
        }
        Ok(charge)
    }

    /// Read check: returns how many of the `count` sectors at `lsn` are
    /// mapped (reads of never-written space return zeroes in real devices).
    pub fn read(&self, lsn: u64, count: u64) -> u64 {
        assert!(lsn + count <= self.map.len() as u64, "read beyond logical capacity");
        (lsn..lsn + count).filter(|&l| self.is_mapped(l)).count() as u64
    }

    /// TRIM/discard: drop the mapping of `count` sectors at `lsn` without
    /// writing. Discarded sectors become invalid immediately, so GC can
    /// reclaim their blocks without migrating them — the mechanism by
    /// which a compression layer tells the FTL that superseded slots are
    /// dead. Returns the number of sectors actually discarded.
    pub fn trim(&mut self, lsn: u64, count: u64) -> u64 {
        assert!(lsn + count <= self.map.len() as u64, "trim beyond logical capacity");
        let mut dropped = 0;
        for l in lsn..lsn + count {
            if self.is_mapped(l) {
                self.invalidate(l);
                self.map[l as usize] = UNMAPPED;
                dropped += 1;
            }
        }
        self.stats.trimmed_sectors += dropped;
        dropped
    }

    fn invalidate(&mut self, lsn: u64) {
        let old = self.map[lsn as usize];
        if old != UNMAPPED {
            self.rmap[old as usize] = INVALID;
            self.dec_valid(old / self.sectors_per_block);
        }
    }

    /// Decrement a block's valid counter, moving it one bucket down when
    /// it is a sealed GC candidate. (Increments never need the mirror
    /// operation: the log only ever appends to the active block, which is
    /// never sealed.)
    fn dec_valid(&mut self, block: u32) {
        let b = block as usize;
        self.valid[b] -= 1;
        if self.sealed[b] {
            let v = self.valid[b] as usize;
            let pos = self.bucket_pos[b] as usize;
            self.bucket[v + 1].swap_remove(pos);
            if let Some(&moved) = self.bucket[v + 1].get(pos) {
                self.bucket_pos[moved as usize] = pos as u32;
            }
            self.bucket_pos[b] = self.bucket[v].len() as u32;
            self.bucket[v].push(block);
            if v < self.min_bucket {
                self.min_bucket = v;
            }
        }
    }

    /// Veto GC victim selection for `block`: it leaves the candidate
    /// index (if sealed) and re-entry is refused until
    /// [`Ftl::unpin_block`]. Idempotent. The compression layer pins the
    /// blocks of runs with outstanding extra references so shared content
    /// is never relocated or erased behind the refcount ledger's back.
    pub fn pin_block(&mut self, block: u32) {
        let b = block as usize;
        if self.pinned[b] {
            return;
        }
        if self.sealed[b] {
            self.unseal_block(block);
        }
        self.pinned[b] = true;
    }

    /// Lift the veto of [`Ftl::pin_block`]; if the block is currently a
    /// GC candidate (non-active, non-free, non-retired) it re-enters the
    /// victim index at its present valid count. Idempotent.
    pub fn unpin_block(&mut self, block: u32) {
        let b = block as usize;
        if !self.pinned[b] {
            return;
        }
        self.pinned[b] = false;
        let candidate =
            block != self.active_block && !self.retired[b] && !self.free_blocks.contains(&block);
        if candidate {
            self.seal_block(block);
        }
    }

    /// Whether `block` is currently pinned out of GC victim selection.
    pub fn is_pinned(&self, block: u32) -> bool {
        self.pinned[block as usize]
    }

    /// Enter `block` into the GC candidate index (the active block just
    /// rotated away from it). Pinned blocks stay out of the index — they
    /// rejoin on [`Ftl::unpin_block`].
    fn seal_block(&mut self, block: u32) {
        let b = block as usize;
        if self.pinned[b] {
            return;
        }
        debug_assert!(!self.sealed[b] && !self.retired[b], "double seal");
        let v = self.valid[b] as usize;
        self.sealed[b] = true;
        self.bucket_pos[b] = self.bucket[v].len() as u32;
        self.bucket[v].push(block);
        if v < self.min_bucket {
            self.min_bucket = v;
        }
    }

    /// Remove `block` from the GC candidate index (it was picked as a
    /// victim, about to be erased or retired).
    fn unseal_block(&mut self, block: u32) {
        let b = block as usize;
        debug_assert!(self.sealed[b], "unseal of unsealed block");
        let v = self.valid[b] as usize;
        let pos = self.bucket_pos[b] as usize;
        self.bucket[v].swap_remove(pos);
        if let Some(&moved) = self.bucket[v].get(pos) {
            self.bucket_pos[moved as usize] = pos as u32;
        }
        self.sealed[b] = false;
    }

    /// Allocate the next physical sector in the active block, rotating to a
    /// fresh block (and running GC) as needed. Injected program faults are
    /// absorbed here: the faulty page is scrapped (marked stale, reclaimed
    /// at the next erase) and allocation moves on, as a real controller
    /// does. Only spare-area exhaustion is fatal.
    fn allocate(&mut self, charge: &mut WriteCharge) -> Result<u32, FaultError> {
        loop {
            if self.write_ptr == self.sectors_per_block {
                // Active block full: grab the next free block. The full
                // block is sealed into the GC candidate index only once
                // the rotation is certain (GC never victimizes the
                // still-active block, and a worn-out device must not
                // leave its active block sealed).
                self.maybe_gc(charge)?;
                let next = self.free_blocks.pop_front().ok_or(FaultError::WornOut)?;
                self.seal_block(self.active_block);
                self.active_block = next;
                self.write_ptr = 0;
            }
            let psn = self.active_block * self.sectors_per_block + self.write_ptr;
            self.write_ptr += 1;
            if self.faults.program_fault() {
                // Scrapped page: stale until its block is erased.
                self.rmap[psn as usize] = INVALID;
                continue;
            }
            return Ok(psn);
        }
    }

    /// Run greedy GC until the free list is above the watermark.
    ///
    /// Migration copies are controller-internal and intentionally do not
    /// tick the power-cut clock or draw program faults — user-visible
    /// fault semantics stay attached to host writes. Erase faults retire
    /// the victim block permanently (it keeps its stale pages and never
    /// rejoins the free list); a device that retires its whole spare area
    /// reports [`FaultError::WornOut`].
    fn maybe_gc(&mut self, charge: &mut WriteCharge) -> Result<(), FaultError> {
        while self.free_blocks.len() <= self.gc_low_watermark as usize {
            self.stats.gc_runs += 1;
            let victim = self.pick_victim().ok_or(FaultError::WornOut)?;
            // Migrate valid sectors out of the victim.
            let base = victim * self.sectors_per_block;
            for s in 0..self.sectors_per_block {
                let psn = base + s;
                let owner = self.rmap[psn as usize];
                if owner == FREE || owner == INVALID {
                    continue;
                }
                debug_assert_eq!(self.map[owner as usize], psn, "map/rmap out of sync");
                // Append to the log (active block cannot be the victim).
                if self.write_ptr == self.sectors_per_block {
                    let Some(next) = self.free_blocks.pop_front() else {
                        // Out of spare blocks mid-migration. Each sector
                        // moves atomically, so the map is consistent;
                        // re-seal the half-migrated victim at its reduced
                        // valid count so the candidate index stays exact
                        // even on a worn-out device.
                        self.seal_block(victim);
                        return Err(FaultError::WornOut);
                    };
                    self.seal_block(self.active_block);
                    self.active_block = next;
                    self.write_ptr = 0;
                }
                let new_psn = self.active_block * self.sectors_per_block + self.write_ptr;
                self.write_ptr += 1;
                self.map[owner as usize] = new_psn;
                self.rmap[new_psn as usize] = owner;
                self.rmap[psn as usize] = INVALID;
                debug_assert!(!self.sealed[self.active_block as usize]);
                self.valid[(new_psn / self.sectors_per_block) as usize] += 1;
                // The victim was unsealed when picked, so its decrements
                // need no bucket moves.
                self.valid[victim as usize] -= 1;
                self.stats.migrated_sectors += 1;
                charge.migrated_sectors += 1;
                if self.relocated.len() < RELOCATION_LOG_CAP {
                    self.relocated.push(u64::from(owner));
                }
            }
            debug_assert_eq!(self.valid[victim as usize], 0);
            if self.faults.erase_fault() {
                // Erase failed: retire the block. Its pages stay marked
                // stale so no invariant ever counts them as usable.
                for s in 0..self.sectors_per_block {
                    self.rmap[(base + s) as usize] = INVALID;
                }
                self.retired[victim as usize] = true;
                self.stats.retired_blocks += 1;
                continue;
            }
            // Erase the victim.
            for s in 0..self.sectors_per_block {
                self.rmap[(base + s) as usize] = FREE;
            }
            self.erase_count[victim as usize] += 1;
            self.stats.erases += 1;
            charge.erases += 1;
            self.free_blocks.push_back(victim);
        }
        Ok(())
    }

    /// Victim selection over the sealed-block bucket index. Normally
    /// greedy: pop any block from the lowest non-empty valid-count bucket
    /// — O(1) amortized via the monotone `min_bucket` cursor, replacing
    /// the former per-call scan of every block (plus a HashSet of the
    /// free list). When static wear leveling is enabled and the erase
    /// spread exceeds the threshold, the coldest sealed block is chosen
    /// instead so its (likely cold) data migrates and the block rejoins
    /// the erase rotation — that rare path keeps its linear scan. The
    /// returned victim leaves the index (it is about to be erased or
    /// retired).
    fn pick_victim(&mut self) -> Option<u32> {
        if self.wear_level_threshold > 0 {
            let max = self.erase_count.iter().copied().max().unwrap_or(0);
            let coldest = (0..self.valid.len() as u32)
                .filter(|&b| self.sealed[b as usize])
                .min_by_key(|&b| self.erase_count[b as usize]);
            if let Some(cold) = coldest {
                if max.saturating_sub(self.erase_count[cold as usize]) > self.wear_level_threshold
                {
                    self.unseal_block(cold);
                    return Some(cold);
                }
            }
        }
        while self.min_bucket < self.bucket.len() && self.bucket[self.min_bucket].is_empty() {
            self.min_bucket += 1;
        }
        if self.min_bucket >= self.bucket.len() {
            return None;
        }
        let victim = *self.bucket[self.min_bucket].last().expect("bucket non-empty");
        self.unseal_block(victim);
        Some(victim)
    }

    /// Sector count corresponding to `bytes`, rounded up.
    pub fn sectors_for(bytes: u64) -> u64 {
        bytes.div_ceil(SECTOR_BYTES).max(1)
    }

    /// Verify internal invariants, reporting the first violation as a
    /// typed [`IntegrityError`] instead of panicking.
    ///
    /// Checked: (1) every mapped logical sector's reverse entry points
    /// back at it, (2) per-block valid counters match the reverse map,
    /// (3) free-listed blocks hold no valid data, (4) total valid sectors
    /// equal the number of mapped logical sectors, (5) the GC bucket
    /// index exactly mirrors per-block state — a block is bucketed iff it
    /// is a GC candidate (non-active, non-free, non-retired, non-pinned),
    /// sits in the bucket named by its valid count, at its recorded
    /// position, exactly once. Intended for tests, debugging, and post-recovery audits in
    /// the fault campaign; cost is O(physical sectors).
    pub fn verify_integrity(&self) -> Result<(), IntegrityError> {
        let mut mapped = 0u64;
        for (lsn, &psn) in self.map.iter().enumerate() {
            if psn != UNMAPPED {
                mapped += 1;
                if self.rmap[psn as usize] != lsn as u32 {
                    return Err(IntegrityError::RmapMismatch { lsn: lsn as u64, psn });
                }
            }
        }
        let mut total_valid = 0u64;
        for b in 0..self.valid.len() as u32 {
            let base = b * self.sectors_per_block;
            let actual = (0..self.sectors_per_block)
                .filter(|&s| {
                    let v = self.rmap[(base + s) as usize];
                    v != FREE && v != INVALID
                })
                .count() as u16;
            if self.valid[b as usize] != actual {
                return Err(IntegrityError::ValidCountMismatch {
                    block: b,
                    recorded: self.valid[b as usize],
                    actual,
                });
            }
            total_valid += u64::from(actual);
        }
        for &b in &self.free_blocks {
            if self.valid[b as usize] != 0 {
                return Err(IntegrityError::FreeBlockHoldsData {
                    block: b,
                    valid: self.valid[b as usize],
                });
            }
        }
        if total_valid != mapped {
            return Err(IntegrityError::ValidTotalMismatch { valid: total_valid, mapped });
        }
        // (5) GC bucket index vs ground truth, both directions.
        let mut is_free = vec![false; self.valid.len()];
        for &b in &self.free_blocks {
            is_free[b as usize] = true;
        }
        for b in 0..self.valid.len() as u32 {
            let candidate = b != self.active_block
                && !is_free[b as usize]
                && !self.retired[b as usize]
                && !self.pinned[b as usize];
            if self.sealed[b as usize] != candidate {
                return Err(IntegrityError::GcBucketMismatch {
                    block: b,
                    reason: "sealed flag disagrees with active/free/retired state",
                });
            }
            if self.sealed[b as usize]
                && self
                    .bucket
                    .get(self.valid[b as usize] as usize)
                    .and_then(|bk| bk.get(self.bucket_pos[b as usize] as usize))
                    != Some(&b)
            {
                return Err(IntegrityError::GcBucketMismatch {
                    block: b,
                    reason: "block missing from the bucket named by its valid count",
                });
            }
        }
        for (v, bk) in self.bucket.iter().enumerate() {
            for (pos, &m) in bk.iter().enumerate() {
                if !self.sealed[m as usize]
                    || self.valid[m as usize] as usize != v
                    || self.bucket_pos[m as usize] as usize != pos
                {
                    return Err(IntegrityError::GcBucketMismatch {
                        block: m,
                        reason: "stale or duplicate bucket membership",
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SsdConfig {
        // 64 blocks of 64 KiB logical + 25% OP: tiny, GC-heavy device.
        SsdConfig {
            logical_bytes: 64 * 64 * 1024,
            overprovision: 0.25,
            sectors_per_block: 64,
            gc_low_watermark: 3,
            ..SsdConfig::default()
        }
    }

    #[test]
    fn fresh_device_is_unmapped() {
        let ftl = Ftl::new(&small_cfg());
        assert!(!ftl.is_mapped(0));
        assert_eq!(ftl.read(0, 100), 0);
        assert_eq!(ftl.stats(), FtlStats::default());
    }

    #[test]
    fn write_maps_sectors() {
        let mut ftl = Ftl::new(&small_cfg());
        let charge = ftl.write(10, 5);
        assert_eq!(charge, WriteCharge::default()); // no GC on fresh device
        assert_eq!(ftl.read(10, 5), 5);
        assert_eq!(ftl.read(0, 10), 0);
        assert_eq!(ftl.stats().user_sectors_written, 5);
    }

    #[test]
    fn overwrite_invalidates_old_location() {
        let mut ftl = Ftl::new(&small_cfg());
        ftl.write(0, 1);
        ftl.write(0, 1);
        assert_eq!(ftl.stats().user_sectors_written, 2);
        // Still exactly one valid copy.
        let total_valid: u32 = ftl.valid.iter().map(|&v| u32::from(v)).sum();
        assert_eq!(total_valid, 1);
    }

    #[test]
    #[should_panic(expected = "beyond logical capacity")]
    fn out_of_range_write_rejected() {
        let mut ftl = Ftl::new(&small_cfg());
        let cap = ftl.logical_sectors();
        ftl.write(cap, 1);
    }

    #[test]
    fn filling_device_triggers_gc() {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        // Fill the logical space twice over, in-place overwrites.
        for round in 0..2 {
            for l in 0..cap {
                ftl.write(l, 1);
            }
            let _ = round;
        }
        let stats = ftl.stats();
        assert!(stats.gc_runs > 0, "GC must have run");
        assert!(stats.erases > 0);
        assert_eq!(stats.user_sectors_written, 2 * cap);
        assert!(ftl.free_block_count() >= cfg.gc_low_watermark as usize);
        // Everything still readable.
        assert_eq!(ftl.read(0, cap), cap);
    }

    #[test]
    fn gc_relocations_are_logged_and_drained() {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        // Random overwrites leave valid sectors inside GC victims, forcing
        // migrations (sequential whole-device rewrites would not).
        let mut x = 0x9e37_79b9u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ftl.write(x % cap, 1);
        }
        let stats = ftl.stats();
        assert!(stats.migrated_sectors > 0, "workload must force GC migration");
        assert_eq!(
            ftl.relocation_backlog() as u64,
            stats.migrated_sectors,
            "every migrated sector appears in the relocation log"
        );
        let relocated = ftl.take_relocations();
        assert_eq!(relocated.len() as u64, stats.migrated_sectors);
        // Every logged LSN is a real, still-mapped logical sector.
        for &lsn in &relocated {
            assert!(lsn < cap);
            assert!(ftl.is_mapped(lsn), "GC only migrates valid data");
        }
        // Drain resets the log; further GC refills it.
        assert_eq!(ftl.take_relocations(), Vec::<u64>::new());
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ftl.write(x % cap, 1);
        }
        let newly_migrated = ftl.stats().migrated_sectors - stats.migrated_sectors;
        assert!(newly_migrated > 0);
        assert_eq!(ftl.relocation_backlog() as u64, newly_migrated);
        ftl.verify_integrity().expect("relocation logging must not disturb mapping state");
    }

    #[test]
    fn random_overwrites_preserve_mapping_invariants() {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        let mut x = 0x1234_5678u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let lsn = x % cap;
            let count = 1 + (x >> 32) % 8;
            let count = count.min(cap - lsn);
            ftl.write(lsn, count);
        }
        // Invariant: every mapped lsn's rmap points back at it.
        for (lsn, &psn) in ftl.map.iter().enumerate() {
            if psn != UNMAPPED {
                assert_eq!(ftl.rmap[psn as usize], lsn as u32, "lsn {lsn}");
            }
        }
        // Invariant: per-block valid counts match the rmap.
        for b in 0..ftl.valid.len() {
            let base = b as u32 * ftl.sectors_per_block;
            let actual = (0..ftl.sectors_per_block)
                .filter(|&s| {
                    let v = ftl.rmap[(base + s) as usize];
                    v != FREE && v != INVALID
                })
                .count() as u16;
            assert_eq!(ftl.valid[b], actual, "block {b}");
        }
    }

    #[test]
    fn write_amplification_grows_with_utilization() {
        // A device written once has WAF 1; heavy *random* overwrites raise
        // it above 1 (sequential overwrites invalidate whole blocks and
        // stay near 1 — see `sequential_overwrite_has_low_waf`).
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        for l in 0..cap {
            ftl.write(l, 1);
        }
        let cold = ftl.stats().write_amplification();
        assert_eq!(cold, 1.0, "first sequential fill must not amplify");
        let mut x = 5u64;
        for _ in 0..4 * cap {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ftl.write(x % cap, 1);
        }
        let hot = ftl.stats().write_amplification();
        assert!(hot > cold, "WAF must grow: {cold} -> {hot}");
    }

    #[test]
    fn sequential_overwrite_has_low_waf() {
        // Perfectly sequential overwrite = whole blocks invalidated at once
        // = near-free GC.
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        for _ in 0..4 {
            for l in 0..cap {
                ftl.write(l, 1);
            }
        }
        let waf = ftl.stats().write_amplification();
        assert!(waf < 1.1, "sequential WAF should stay near 1, got {waf}");
    }

    #[test]
    fn wear_counts_accumulate() {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        for _ in 0..4 {
            for l in 0..cap {
                ftl.write(l, 1);
            }
        }
        let total: u64 = ftl.erase_counts().iter().map(|&e| u64::from(e)).sum();
        assert_eq!(total, ftl.stats().erases);
        assert!(total > 0);
    }

    #[test]
    fn gc_charge_reported_to_caller() {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        let mut total_charge = WriteCharge::default();
        let mut x = 99u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let c = ftl.write(x % cap, 1);
            total_charge.migrated_sectors += c.migrated_sectors;
            total_charge.erases += c.erases;
        }
        assert_eq!(total_charge.migrated_sectors, ftl.stats().migrated_sectors);
        assert_eq!(total_charge.erases, ftl.stats().erases);
        assert!(total_charge.erases > 0);
    }

    #[test]
    fn trim_unmaps_and_reduces_gc_work() {
        let cfg = small_cfg();
        let cap = Ftl::new(&cfg).logical_sectors();
        // Workload A: overwrite everything twice (live data stays full).
        let mut a = Ftl::new(&cfg);
        for _ in 0..3 {
            for l in 0..cap {
                a.write(l, 1);
            }
        }
        // Workload B: same writes, but half the space is trimmed before
        // each overwrite round — GC migrates far less.
        let mut b = Ftl::new(&cfg);
        for _ in 0..3 {
            for l in 0..cap {
                b.write(l, 1);
            }
            b.trim(0, cap / 2);
        }
        assert!(b.stats().trimmed_sectors > 0);
        assert!(
            b.stats().migrated_sectors <= a.stats().migrated_sectors,
            "trim must not increase migration: {} vs {}",
            b.stats().migrated_sectors,
            a.stats().migrated_sectors
        );
        // Trimmed sectors read as unmapped; the rest stay readable.
        b.trim(0, 4);
        assert_eq!(b.read(0, 4), 0);
        assert_eq!(b.read(cap / 2, 4), 4);
        b.verify_integrity().expect("integrity");
    }

    #[test]
    fn trim_of_unmapped_space_is_noop() {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg);
        assert_eq!(ftl.trim(0, 100), 0);
        assert_eq!(ftl.stats().trimmed_sectors, 0);
        ftl.verify_integrity().expect("integrity");
    }

    #[test]
    fn sectors_for_rounds_up() {
        assert_eq!(Ftl::sectors_for(1), 1);
        assert_eq!(Ftl::sectors_for(1024), 1);
        assert_eq!(Ftl::sectors_for(1025), 2);
        assert_eq!(Ftl::sectors_for(4096), 4);
        assert_eq!(Ftl::sectors_for(0), 1);
    }

    #[test]
    fn wear_leveling_bounds_erase_spread() {
        // Hot/cold split: the first half of the logical space is written
        // once (cold), the second half is hammered. Without wear leveling
        // the cold data pins its blocks at zero erases; with it, cold
        // blocks are recycled once the spread exceeds the threshold.
        let run = |threshold: u32| -> (u32, u32) {
            let cfg = SsdConfig { wear_level_threshold: threshold, ..small_cfg() };
            let mut ftl = Ftl::new(&cfg);
            let cap = ftl.logical_sectors();
            for l in 0..cap {
                ftl.write(l, 1);
            }
            let mut x = 9u64;
            for _ in 0..30 * cap {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ftl.write(cap / 2 + x % (cap / 2), 1); // hot half only
            }
            ftl.verify_integrity().expect("integrity");
            let max = ftl.erase_counts().iter().copied().max().unwrap();
            let min = ftl.erase_counts().iter().copied().min().unwrap();
            (max, min)
        };
        let (max_off, min_off) = run(0);
        let (max_on, min_on) = run(8);
        assert_eq!(min_off, 0, "without WL, cold blocks never erase");
        assert!(min_on > 0, "with WL, every block eventually rotates");
        assert!(
            max_on - min_on < max_off - min_off,
            "WL must narrow the spread: {}..{} vs {}..{}",
            min_on,
            max_on,
            min_off,
            max_off
        );
    }

    #[test]
    fn gc_buckets_track_valid_counts_under_heavy_churn() {
        // Random overwrites + trims at high utilization keep GC busy; the
        // incremental bucket index must agree with ground truth at every
        // checkpoint (verify_integrity cross-checks membership, bucket
        // index and recorded position).
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        let mut x = 0xABCD_EF01u64;
        for i in 0..30_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let lsn = x % cap;
            if x.is_multiple_of(11) {
                ftl.trim(lsn, (1 + (x >> 32) % 4).min(cap - lsn));
            } else {
                ftl.write(lsn, (1 + (x >> 32) % 8).min(cap - lsn));
            }
            if i % 2_500 == 0 {
                ftl.verify_integrity().expect("bucket index drifted from ground truth");
            }
        }
        ftl.verify_integrity().expect("final state");
        assert!(ftl.stats().gc_runs > 0, "the workload must actually exercise GC");
    }

    #[test]
    fn gc_buckets_consistent_with_wear_leveling_and_erase_faults() {
        // The wear-leveling cold path and erase-fault retirement both pull
        // victims out of the index through unseal; neither may strand
        // stale bucket entries.
        let cfg = SsdConfig {
            wear_level_threshold: 4,
            fault: FaultPlan { erase_error_rate: 0.05, ..FaultPlan::none() },
            ..small_cfg()
        };
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        let mut x = 77u64;
        for i in 0..25_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match ftl.try_write(cap / 2 + x % (cap / 2), 1) {
                Ok(_) => {}
                Err(FaultError::WornOut) => break,
                Err(e) => panic!("unexpected fault: {e}"),
            }
            if i % 2_500 == 0 {
                ftl.verify_integrity().expect("bucket index drifted");
            }
        }
        ftl.verify_integrity().expect("final state");
    }

    #[test]
    fn verify_integrity_catches_bucket_drift() {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        for _ in 0..2 {
            for l in 0..cap {
                ftl.write(l, 1);
            }
        }
        ftl.verify_integrity().expect("healthy state");
        // Corrupt the index: move a sealed block into the wrong bucket
        // without touching its valid counter.
        let sealed = (0..ftl.sealed.len()).find(|&b| ftl.sealed[b]).expect("a sealed block");
        let v = ftl.valid[sealed] as usize;
        let pos = ftl.bucket_pos[sealed] as usize;
        ftl.bucket[v].swap_remove(pos);
        if let Some(&moved) = ftl.bucket[v].get(pos) {
            ftl.bucket_pos[moved as usize] = pos as u32;
        }
        let wrong = if v == 0 { 1 } else { v - 1 };
        ftl.bucket_pos[sealed] = ftl.bucket[wrong].len() as u32;
        ftl.bucket[wrong].push(sealed as u32);
        let err = ftl.verify_integrity().unwrap_err();
        assert!(
            matches!(err, IntegrityError::GcBucketMismatch { .. }),
            "drift must surface as GcBucketMismatch, got {err}"
        );
        // A stranded sealed flag is caught too.
        let mut ftl2 = Ftl::new(&cfg);
        for l in 0..cap {
            ftl2.write(l, 1);
        }
        let sealed2 = (0..ftl2.sealed.len()).find(|&b| ftl2.sealed[b]).expect("a sealed block");
        ftl2.unseal_block(sealed2 as u32);
        assert!(matches!(
            ftl2.verify_integrity().unwrap_err(),
            IntegrityError::GcBucketMismatch { .. }
        ));
    }

    #[test]
    fn pinned_block_is_never_erased_under_gc_churn() {
        let cfg = small_cfg();
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        for l in 0..cap {
            ftl.write(l, 1);
        }
        // Pin a sealed block that still holds valid data and remember
        // which logical sectors live there.
        let pinned = (0..ftl.sealed.len() as u32)
            .find(|&b| ftl.sealed[b as usize] && ftl.valid[b as usize] > 0)
            .expect("a sealed block with valid data");
        ftl.pin_block(pinned);
        assert!(ftl.is_pinned(pinned));
        ftl.pin_block(pinned); // idempotent
        ftl.verify_integrity().expect("pinning must keep the index exact");
        let base = pinned * ftl.sectors_per_block;
        let residents: Vec<u32> = (0..ftl.sectors_per_block)
            .map(|s| ftl.rmap[(base + s) as usize])
            .filter(|&o| o != FREE && o != INVALID)
            .collect();
        let erases_before = ftl.erase_counts()[pinned as usize];
        // Heavy churn everywhere *except* the resident sectors: GC runs
        // hard but the pinned block must never be victimized.
        let mut x = 0x51ED_B10Cu64;
        for i in 0..30_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let lsn = x % cap;
            if residents.contains(&(lsn as u32)) {
                continue;
            }
            ftl.write(lsn, 1);
            if i % 5_000 == 0 {
                ftl.verify_integrity().expect("churn checkpoint");
            }
        }
        assert!(ftl.stats().gc_runs > 0, "the workload must exercise GC");
        assert_eq!(
            ftl.erase_counts()[pinned as usize],
            erases_before,
            "a pinned block must never be erased"
        );
        for &lsn in &residents {
            assert_eq!(
                ftl.map[lsn as usize] / ftl.sectors_per_block,
                pinned,
                "resident lsn {lsn} must stay in place (never migrated)"
            );
        }
        // Unpinning returns the block to the rotation; churn may now
        // reclaim it without tripping any invariant.
        ftl.unpin_block(pinned);
        assert!(!ftl.is_pinned(pinned));
        ftl.unpin_block(pinned); // idempotent
        ftl.verify_integrity().expect("unpin must restore the index");
        for _ in 0..30_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ftl.write(x % cap, 1);
        }
        ftl.verify_integrity().expect("post-unpin churn");
        assert_eq!(ftl.read(0, cap), cap, "no data lost across pin/unpin churn");
    }

    #[test]
    fn waf_of_fresh_device_is_one() {
        let ftl = Ftl::new(&small_cfg());
        assert_eq!(ftl.stats().write_amplification(), 1.0);
    }

    #[test]
    fn power_cut_aborts_write_and_preserves_integrity() {
        let cfg = SsdConfig {
            fault: FaultPlan { power_cut_after_programs: Some(10), ..FaultPlan::none() },
            ..small_cfg()
        };
        let mut ftl = Ftl::new(&cfg);
        // First 10 sector programs succeed, the 11th hits the cut.
        let err = ftl.try_write(0, 20).unwrap_err();
        assert_eq!(err, FaultError::PowerCut { after_programs: 10 });
        assert_eq!(ftl.read(0, 10), 10, "sectors before the cut are durable");
        assert_eq!(ftl.read(10, 10), 0, "sectors after the cut never landed");
        // Everything else rejects until power is restored.
        assert_eq!(ftl.try_write(10, 1).unwrap_err(), FaultError::PoweredOff);
        ftl.verify_integrity().expect("cut must not corrupt the mapping");
        ftl.faults_mut().power_cycle();
        ftl.try_write(10, 10).expect("power restored");
        assert_eq!(ftl.read(0, 20), 20);
    }

    #[test]
    fn program_faults_scrap_pages_but_writes_succeed() {
        let cfg = SsdConfig {
            fault: FaultPlan { program_error_rate: 0.05, ..FaultPlan::none() },
            ..small_cfg()
        };
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        for round in 0..3u64 {
            for l in 0..cap {
                ftl.try_write(l, 1).expect("program faults are absorbed");
            }
            let _ = round;
        }
        assert!(ftl.fault_stats().program_faults > 0, "5% rate must fire over 3 fills");
        assert_eq!(ftl.read(0, cap), cap);
        ftl.verify_integrity().expect("scrapped pages must not break invariants");
    }

    #[test]
    fn erase_faults_retire_blocks() {
        let cfg = SsdConfig {
            fault: FaultPlan { erase_error_rate: 0.10, ..FaultPlan::none() },
            ..small_cfg()
        };
        let mut ftl = Ftl::new(&cfg);
        let cap = ftl.logical_sectors();
        let mut x = 7u64;
        let mut worn_out = false;
        'outer: for _ in 0..40 * cap {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match ftl.try_write(x % cap, 1) {
                Ok(_) => {}
                Err(FaultError::WornOut) => {
                    worn_out = true;
                    break 'outer;
                }
                Err(e) => panic!("unexpected fault: {e}"),
            }
        }
        assert!(ftl.stats().retired_blocks > 0, "10% erase-fault rate must retire blocks");
        ftl.verify_integrity().expect("retired blocks must not break invariants");
        // Either the device survived with degraded spare area, or it
        // eventually wore out — both are legal ends; silent corruption is not.
        let _ = worn_out;
    }

    #[test]
    fn inactive_fault_plan_changes_nothing() {
        let mut faulty = Ftl::new(&small_cfg());
        let mut clean = Ftl::new(&small_cfg());
        let cap = clean.logical_sectors();
        let mut x = 3u64;
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let lsn = x % cap;
            assert_eq!(faulty.try_write(lsn, 1).unwrap(), clean.write(lsn, 1));
        }
        assert_eq!(faulty.stats(), clean.stats());
        assert_eq!(faulty.fault_stats(), FaultStats::default());
    }
}
