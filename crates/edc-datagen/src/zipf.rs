//! Seeded Zipfian rank sampler for skewed-workload synthesis.
//!
//! The heat-aware recompression benchmark needs a workload where a small
//! hot set absorbs most accesses while a long cold tail goes quiet — the
//! regime in which background re-encoding of cold data pays off. The
//! classic model is the Zipfian distribution: rank `k` out of `n` is
//! drawn with probability `(1/k^θ) / H(n,θ)` where `H` is the
//! generalized harmonic number.
//!
//! This sampler is *exact*, not the rejection-based approximation: it
//! materializes the cumulative distribution once (`O(n)` setup, one
//! `f64` per rank) and answers each draw with a binary search
//! (`O(log n)`). For the benchmark's working sets (thousands to a few
//! million extents) the table is small and setup cost is immaterial,
//! while exactness makes the top-decile mass checkable against the
//! analytic value in tests.

use crate::rng::Rng64;

/// Exact inverse-CDF Zipfian sampler over ranks `0..n`.
///
/// Rank 0 is the hottest item. `theta = 0` degenerates to uniform;
/// `theta ≈ 0.99` is the YCSB-style default for skewed key-value
/// workloads.
#[derive(Debug, Clone)]
pub struct Zipfian {
    /// `cdf[k]` = P(rank ≤ k); last entry is exactly 1.0.
    cdf: Vec<f64>,
}

impl Zipfian {
    /// Build the sampler for `n` ranks with skew exponent `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipfian over an empty rank set is meaningless");
        assert!(theta.is_finite() && theta >= 0.0, "skew must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(total);
        }
        let norm = total;
        for c in &mut cdf {
            *c /= norm;
        }
        // Defend the binary search against accumulated rounding at the top.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipfian { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false — construction rejects an empty rank set.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw one rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.f64();
        // First index whose cumulative mass exceeds the uniform draw.
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }

    /// Exact probability mass of the hottest `k` ranks — the analytic
    /// value the sampled frequencies must converge to.
    pub fn head_mass(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        self.cdf[k.min(self.cdf.len()) - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipfian::new(100, 0.0);
        assert!((z.head_mass(10) - 0.1).abs() < 1e-12);
        let mut rng = Rng64::seed_from_u64(7);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (min, max) =
            counts.iter().fold((u32::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        assert!(min > 700 && max < 1300, "uniform draw spread: {min}..{max}");
    }

    #[test]
    fn top_decile_mass_matches_analytic_value() {
        // θ = 0.99, n = 1000: the hot head must dominate. The sampled
        // top-decile frequency has to land on the analytic CDF mass.
        let n = 1000;
        let z = Zipfian::new(n, 0.99);
        let analytic = z.head_mass(n / 10);
        assert!(analytic > 0.6, "skewed head must dominate, got {analytic}");
        let mut rng = Rng64::seed_from_u64(42);
        let draws = 200_000u32;
        let mut head = 0u32;
        for _ in 0..draws {
            if z.sample(&mut rng) < n / 10 {
                head += 1;
            }
        }
        let sampled = f64::from(head) / f64::from(draws);
        assert!(
            (sampled - analytic).abs() < 0.01,
            "sampled top-decile mass {sampled} vs analytic {analytic}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let z = Zipfian::new(64, 1.2);
        let mut a = Rng64::seed_from_u64(9);
        let mut b = Rng64::seed_from_u64(9);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn all_ranks_reachable_and_in_range() {
        let z = Zipfian::new(16, 0.8);
        let mut rng = Rng64::seed_from_u64(3);
        let mut seen = [false; 16];
        for _ in 0..50_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "every rank must be sampleable");
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipfian::new(1, 0.99);
        let mut rng = Rng64::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
