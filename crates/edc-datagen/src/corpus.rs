//! The two evaluation datasets of the paper's Fig. 2 as synthetic
//! look-alikes.
//!
//! Fig. 2 measures compression efficiency on "Linux source files" and
//! "Mozilla Firefox files". We cannot ship those trees, so we synthesize
//! corpora with the same gross character: the Linux-like corpus is
//! dominated by C source text (highly compressible), the Firefox-like
//! corpus mixes executable-like binary, resources and precompressed assets
//! (markedly less compressible). What the experiment needs from these
//! datasets is *two materially different compressibility levels*, which
//! these mixtures deliver.

use crate::generator::{BlockClass, ContentGenerator, DataMix};
use std::io::Read as _;
use std::path::Path;

/// A named corpus: a list of blocks plus provenance.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Display name used in figures.
    pub name: &'static str,
    /// The blocks.
    pub blocks: Vec<Vec<u8>>,
}

impl Corpus {
    /// Total size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }
}

/// Linux-kernel-source-like corpus: overwhelmingly C code and prose
/// (docs/comments), a sliver of binary artifacts.
pub fn linux_source_like(seed: u64, blocks: usize, block_len: usize) -> Corpus {
    let mix = DataMix::new(vec![
        (BlockClass::Code, 0.70),
        (BlockClass::Text, 0.22),
        (BlockClass::Binary, 0.06),
        (BlockClass::Random, 0.02),
    ]);
    build("linux-src", seed, mix, blocks, block_len)
}

/// Firefox-distribution-like corpus: executable/binary-heavy with
/// precompressed resources (omni.ja, media) and some text/JS.
pub fn firefox_binary_like(seed: u64, blocks: usize, block_len: usize) -> Corpus {
    let mix = DataMix::new(vec![
        (BlockClass::Binary, 0.40),
        (BlockClass::Media, 0.25),
        (BlockClass::Code, 0.15),
        (BlockClass::Text, 0.10),
        (BlockClass::Random, 0.10),
    ]);
    build("firefox", seed, mix, blocks, block_len)
}

fn build(name: &'static str, seed: u64, mix: DataMix, blocks: usize, block_len: usize) -> Corpus {
    let mut g = ContentGenerator::new(seed, mix);
    let blocks = (0..blocks).map(|_| g.block(block_len).1).collect();
    Corpus { name, blocks }
}

/// Build a corpus from a real directory tree: files are read in sorted
/// order (deterministic), split into `block_len` blocks, until `max_blocks`
/// have been collected. Short tails are kept as smaller blocks.
///
/// This is how to reproduce Fig. 2 on the *actual* datasets — point it at
/// a Linux source checkout or a Firefox installation directory.
pub fn from_directory(
    name: &'static str,
    root: &Path,
    block_len: usize,
    max_blocks: usize,
) -> std::io::Result<Corpus> {
    assert!(block_len > 0 && max_blocks > 0);
    let mut blocks = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            if blocks.len() >= max_blocks {
                return Ok(Corpus { name, blocks });
            }
            let path = entry.path();
            let ft = entry.file_type()?;
            if ft.is_dir() {
                stack.push(path);
            } else if ft.is_file() {
                let mut f = std::fs::File::open(&path)?;
                loop {
                    if blocks.len() >= max_blocks {
                        return Ok(Corpus { name, blocks });
                    }
                    let mut buf = vec![0u8; block_len];
                    let mut filled = 0;
                    while filled < block_len {
                        let n = f.read(&mut buf[filled..])?;
                        if n == 0 {
                            break;
                        }
                        filled += n;
                    }
                    if filled == 0 {
                        break;
                    }
                    buf.truncate(filled);
                    blocks.push(buf);
                    if filled < block_len {
                        break;
                    }
                }
            }
        }
    }
    Ok(Corpus { name, blocks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_compress::{codec_by_id, CodecId};

    fn corpus_ratio(c: &Corpus, id: CodecId) -> f64 {
        let codec = codec_by_id(id).unwrap();
        let orig: usize = c.total_bytes();
        let comp: usize = c.blocks.iter().map(|b| codec.compress(b).len()).sum();
        orig as f64 / comp as f64
    }

    #[test]
    fn corpora_have_requested_shape() {
        let c = linux_source_like(1, 16, 4096);
        assert_eq!(c.blocks.len(), 16);
        assert_eq!(c.total_bytes(), 16 * 4096);
    }

    #[test]
    fn linux_like_more_compressible_than_firefox_like() {
        // The defining property of the Fig. 2 datasets.
        let linux = linux_source_like(11, 48, 8192);
        let firefox = firefox_binary_like(11, 48, 8192);
        for id in [CodecId::Lzf, CodecId::Deflate] {
            let rl = corpus_ratio(&linux, id);
            let rf = corpus_ratio(&firefox, id);
            assert!(rl > rf, "{id}: linux {rl:.2} !> firefox {rf:.2}");
        }
    }

    #[test]
    fn linux_like_compresses_well_with_gzip_class() {
        let linux = linux_source_like(3, 32, 8192);
        let r = corpus_ratio(&linux, CodecId::Deflate);
        assert!(r > 2.0, "source-code corpus should beat 2x, got {r:.2}");
    }

    #[test]
    fn from_directory_reads_real_files() {
        let dir = std::env::temp_dir().join("edc-datagen-corpus-test");
        let sub = dir.join("sub");
        std::fs::create_dir_all(&sub).unwrap();
        std::fs::write(dir.join("a.txt"), vec![b'a'; 5000]).unwrap();
        std::fs::write(sub.join("b.bin"), vec![b'b'; 100]).unwrap();
        let c = from_directory("real", &dir, 4096, 100).unwrap();
        // a.txt → 4096 + 904 tail; b.bin → 100.
        assert_eq!(c.blocks.len(), 3);
        assert_eq!(c.total_bytes(), 5100);
        assert!(c.blocks.iter().any(|b| b.len() == 4096 && b[0] == b'a'));
        assert!(c.blocks.iter().any(|b| b.len() == 100 && b[0] == b'b'));
        // Block cap respected.
        let capped = from_directory("real", &dir, 1024, 2).unwrap();
        assert_eq!(capped.blocks.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpora_are_deterministic() {
        let a = firefox_binary_like(5, 8, 4096);
        let b = firefox_binary_like(5, 8, 4096);
        assert_eq!(a.blocks, b.blocks);
    }
}
