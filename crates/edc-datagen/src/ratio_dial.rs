//! Target-ratio content generation — SDGen's headline capability.
//!
//! SDGen "creates data with variable compression ratio" matching samples
//! from real applications. [`RatioDial`] does the equivalent analytically:
//! a block is built from an incompressible random span of `p·len` bytes
//! followed by a trivially compressible filler, so its compressed fraction
//! under an LZ codec is ≈ `p` plus a small framing overhead.
//! [`RatioDial::calibrated`] closes the loop by bisecting `p` against a
//! real codec until the achieved fraction matches the target.

use crate::rng::Rng64;
use edc_compress::Codec;

/// Generates blocks with a chosen compressed/original fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioDial {
    /// Fraction of each block filled with incompressible bytes (0.0–1.0).
    random_fraction: f64,
}

impl RatioDial {
    /// Dial set directly to a random-byte fraction (≈ the compressed
    /// fraction an LZ codec will achieve).
    pub fn new(random_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&random_fraction), "fraction must be in [0,1]");
        RatioDial { random_fraction }
    }

    /// The configured random fraction.
    pub fn random_fraction(&self) -> f64 {
        self.random_fraction
    }

    /// Generate one block of `len` bytes.
    pub fn generate(&self, seed: u64, len: usize) -> Vec<u8> {
        let mut rng = Rng64::seed_from_u64(seed);
        let n_random = ((len as f64) * self.random_fraction).round() as usize;
        let n_random = n_random.min(len);
        let mut out = vec![0u8; len];
        rng.fill_bytes(&mut out[..n_random]);
        // Filler: a short repeating phrase — compresses to almost nothing.
        const FILLER: &[u8] = b"edc filler block content ";
        for (i, slot) in out[n_random..].iter_mut().enumerate() {
            *slot = FILLER[i % FILLER.len()];
        }
        out
    }

    /// Bisect the dial until `codec` compresses generated blocks to within
    /// `tol` of `target_fraction` (compressed/original).
    pub fn calibrated(codec: &dyn Codec, target_fraction: f64, len: usize, tol: f64) -> Self {
        assert!((0.0..=1.0).contains(&target_fraction));
        assert!(len > 0 && tol > 0.0);
        let measure = |p: f64| -> f64 {
            let block = RatioDial::new(p).generate(0xD1A1, len);
            codec.compress(&block).len() as f64 / len as f64
        };
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..32 {
            let mid = (lo + hi) / 2.0;
            let got = measure(mid);
            if (got - target_fraction).abs() <= tol {
                return RatioDial::new(mid);
            }
            if got < target_fraction {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        RatioDial::new((lo + hi) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_compress::{codec_by_id, CodecId};

    #[test]
    fn extremes() {
        let d0 = RatioDial::new(0.0).generate(1, 4096);
        let d1 = RatioDial::new(1.0).generate(1, 4096);
        let lzf = codec_by_id(CodecId::Lzf).unwrap();
        let f0 = lzf.compress(&d0).len() as f64 / 4096.0;
        let f1 = lzf.compress(&d1).len() as f64 / 4096.0;
        assert!(f0 < 0.1, "pure filler must compress hard, got {f0}");
        assert!(f1 > 0.9, "pure random must not compress, got {f1}");
    }

    #[test]
    fn fraction_tracks_dial_monotonically() {
        let lzf = codec_by_id(CodecId::Lzf).unwrap();
        let mut prev = -1.0f64;
        for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let b = RatioDial::new(p).generate(7, 8192);
            let f = lzf.compress(&b).len() as f64 / 8192.0;
            assert!(f > prev, "fraction must increase with the dial");
            prev = f;
        }
    }

    #[test]
    fn calibration_hits_target() {
        let lzf = codec_by_id(CodecId::Lzf).unwrap();
        for target in [0.3, 0.5, 0.7] {
            let dial = RatioDial::calibrated(lzf, target, 8192, 0.02);
            let b = dial.generate(99, 8192);
            let got = lzf.compress(&b).len() as f64 / 8192.0;
            assert!((got - target).abs() < 0.05, "target {target}, got {got}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = RatioDial::new(0.4);
        assert_eq!(d.generate(5, 4096), d.generate(5, 4096));
        assert_ne!(d.generate(5, 4096), d.generate(6, 4096));
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0,1]")]
    fn out_of_range_dial_rejected() {
        let _ = RatioDial::new(1.5);
    }
}
