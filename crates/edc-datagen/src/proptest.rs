//! Minimal in-tree property-test harness.
//!
//! The original test suites used the `proptest` crate; this module keeps
//! their shape — N randomized cases per property, value generators over a
//! seeded RNG — without the external dependency (the build must work
//! offline). There is no shrinking: on failure the harness reports the
//! case's seed, and `Property::seed` reruns exactly that case under a
//! debugger.
//!
//! ```
//! use edc_datagen::proptest::{cases, vec_u8};
//!
//! cases(64).run("round trip", |rng| {
//!     let data = vec_u8(rng, 0, 4096);
//!     assert_eq!(data.len(), data.clone().len());
//! });
//! ```

use crate::rng::{splitmix64, Rng64};

/// A property to be checked over many random cases.
#[derive(Debug, Clone, Copy)]
pub struct Property {
    cases: u32,
    seed: u64,
}

/// Start a property with `n` random cases (mirrors
/// `ProptestConfig::with_cases`).
pub fn cases(n: u32) -> Property {
    Property { cases: n, seed: 0xEDC_5EED }
}

impl Property {
    /// Override the master seed — paste a failing case's reported seed here
    /// to replay just that input.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.cases = 1;
        self
    }

    /// Run `f` once per case with an independent, deterministic RNG.
    /// Panics inside `f` (failed assertions) are annotated with the case
    /// seed and re-raised.
    pub fn run<F: FnMut(&mut Rng64)>(self, name: &str, mut f: F) {
        for case in 0..self.cases {
            let case_seed = splitmix64(self.seed ^ (u64::from(case) << 32));
            let mut rng = Rng64::seed_from_u64(case_seed);
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
            if let Err(payload) = result {
                eprintln!(
                    "property {name:?} failed on case {case}/{}; replay with \
                     `cases(1).seed(0x{case_seed:X}).run(...)`",
                    self.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// A byte vector with length in `[min_len, max_len)` and arbitrary bytes.
pub fn vec_u8(rng: &mut Rng64, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = rng.range_usize(min_len, max_len.max(min_len + 1));
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

/// A byte vector whose bytes come from the small alphabet `[0, alphabet)` —
/// match-heavy input for LZ codecs.
pub fn vec_u8_alphabet(rng: &mut Rng64, min_len: usize, max_len: usize, alphabet: u8) -> Vec<u8> {
    let len = rng.range_usize(min_len, max_len.max(min_len + 1));
    (0..len).map(|_| rng.below(u64::from(alphabet)) as u8).collect()
}

/// Run-heavy bytes: up to `max_runs` runs of a repeated byte, each
/// `[1, max_run_len)` long.
pub fn vec_u8_runs(rng: &mut Rng64, max_runs: usize, max_run_len: usize) -> Vec<u8> {
    let runs = rng.below_usize(max_runs.max(1));
    let mut out = Vec::new();
    for _ in 0..runs {
        let byte = rng.next_u64() as u8;
        let n = rng.range_usize(1, max_run_len.max(2));
        out.extend(std::iter::repeat_n(byte, n));
    }
    out
}

/// A generic vector with length in `[min_len, max_len)` built by `f`.
pub fn vec_of<T>(
    rng: &mut Rng64,
    min_len: usize,
    max_len: usize,
    f: impl Fn(&mut Rng64) -> T,
) -> Vec<T> {
    let len = rng.range_usize(min_len, max_len.max(min_len + 1));
    (0..len).map(|_| f(rng)).collect()
}

/// One of the three block distributions the codec properties use:
/// arbitrary bytes, small alphabet, run-heavy.
pub fn block(rng: &mut Rng64, max_len: usize) -> Vec<u8> {
    match rng.below(3) {
        0 => vec_u8(rng, 0, max_len),
        1 => vec_u8_alphabet(rng, 0, max_len, 4),
        _ => vec_u8_runs(rng, 64, 64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_case_count() {
        let count = std::cell::Cell::new(0u32);
        cases(17).run("count", |_| count.set(count.get() + 1));
        assert_eq!(count.get(), 17);
    }

    #[test]
    fn cases_draw_distinct_inputs() {
        let mut lens = std::collections::HashSet::new();
        cases(32).run("distinct", |rng| {
            lens.insert(vec_u8(rng, 0, 4096).len());
        });
        assert!(lens.len() > 10, "cases must vary, got {} lengths", lens.len());
    }

    #[test]
    fn failure_reports_and_propagates() {
        let result = std::panic::catch_unwind(|| {
            cases(8).run("always fails", |_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn seed_replays_single_case() {
        let mut first: Option<Vec<u8>> = None;
        cases(1).seed(0xABCD).run("a", |rng| {
            first = Some(vec_u8(rng, 0, 128));
        });
        let mut second: Option<Vec<u8>> = None;
        cases(1).seed(0xABCD).run("b", |rng| {
            second = Some(vec_u8(rng, 0, 128));
        });
        assert_eq!(first, second);
        assert!(first.is_some());
    }

    #[test]
    fn generators_respect_bounds() {
        cases(64).run("bounds", |rng| {
            let a = vec_u8(rng, 1, 100);
            assert!((1..100).contains(&a.len()));
            let b = vec_u8_alphabet(rng, 0, 50, 4);
            assert!(b.iter().all(|&x| x < 4));
            let c = vec_u8_runs(rng, 16, 32);
            assert!(c.len() < 16 * 32);
        });
    }
}
