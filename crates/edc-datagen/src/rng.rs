//! Dependency-free deterministic pseudo-random generator.
//!
//! The whole workspace must build offline, so instead of the `rand` crate
//! every seeded component (content generation, synthetic traces, property
//! tests) draws from this xorshift64*-based generator: a single `u64` of
//! state, splitmix64 seeding so nearby seeds decorrelate, and the usual
//! derived draws (unit-interval doubles, bounded integers, byte fills).
//! Statistical quality is far beyond what the synthetic workloads need,
//! and determinism per seed is exact across platforms.

/// splitmix64 finalizer — used for seeding and one-shot hashing.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A small, fast, seeded xorshift64* generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Create a generator from a 64-bit seed (any value, including 0).
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix the seed so sequential seeds give unrelated streams;
        // xorshift state must be non-zero.
        let state = splitmix64(seed) | 1;
        Rng64 { state }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform double in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        // Lemire multiply-shift; bias is < 2^-64 per draw — irrelevant for
        // workload synthesis, and deterministic either way.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below_usize(hi - lo)
    }

    /// Coin flip with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fill `out` with uniform bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut chunks = out.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }

    /// Fork an independent stream (for per-case sub-generators).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut r = Rng64::seed_from_u64(2);
        let mean: f64 = (0..100_000).map(|_| r.f64()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut r = Rng64::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn fill_bytes_covers_tail_lengths() {
        for len in [0usize, 1, 7, 8, 9, 4096] {
            let mut r = Rng64::seed_from_u64(4);
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 64 {
                let distinct: std::collections::HashSet<u8> = buf.iter().copied().collect();
                assert!(distinct.len() > 16, "len {len} looks non-random");
            }
        }
    }

    #[test]
    fn zero_seed_works() {
        let mut r = Rng64::seed_from_u64(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
