//! Seeded duplication injection for dedup benchmarks.
//!
//! Content-defined deduplication only pays off when the workload actually
//! repeats itself, and real storage traces repeat with strong *temporal
//! locality*: a block written recently is far more likely to be written
//! again than one from the distant past (the same observation behind
//! every dedup study since Zhu et al., FAST'08). [`DupStream`] wraps a
//! [`ContentGenerator`] with exactly that structure — each emitted block
//! is, with probability `dup_fraction`, a byte-exact copy of an earlier
//! unique block chosen by a Zipfian draw over *recency ranks* (rank 0 =
//! the most recently minted unique), and otherwise a fresh unique block.
//!
//! The achieved duplicate fraction concentrates tightly around the dial
//! (i.i.d. coin per block; at 10 000 draws the standard deviation is
//! ≈ 0.5 %), which the unit tests pin to ±2 %. Everything is seeded, so a
//! benchmark arm and its dedup-off control replay the identical byte
//! stream.

use crate::generator::{ContentGenerator, DataMix};
use crate::rng::Rng64;
use crate::zipf::Zipfian;

/// Deterministic block stream with a dialable duplicate fraction and
/// Zipfian-over-recency reuse.
#[derive(Debug, Clone)]
pub struct DupStream {
    gen: ContentGenerator,
    rng: Rng64,
    dup_fraction: f64,
    theta: f64,
    /// Every unique block emitted so far, oldest first.
    uniques: Vec<Vec<u8>>,
    /// Recency-rank sampler over a prefix of `uniques` (rebuilt
    /// geometrically so total setup cost stays O(n), not O(n²)).
    zipf: Option<Zipfian>,
    draws: u64,
    dups: u64,
}

impl DupStream {
    /// Create a stream seeded by `seed`, drawing fresh content from `mix`.
    ///
    /// `dup_fraction` is the probability in `[0, 1)` that a block repeats
    /// earlier content; `theta ≥ 0` is the Zipfian skew of the recency
    /// reuse distribution (`0` = uniform over all prior uniques,
    /// `≈ 0.99` = strongly recent-biased).
    ///
    /// # Panics
    /// Panics on `dup_fraction` outside `[0, 1)` or non-finite/negative
    /// `theta`.
    pub fn new(seed: u64, mix: DataMix, dup_fraction: f64, theta: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&dup_fraction),
            "dup_fraction must be in [0, 1), got {dup_fraction}"
        );
        assert!(theta.is_finite() && theta >= 0.0, "theta must be finite and non-negative");
        DupStream {
            gen: ContentGenerator::new(seed, mix),
            rng: Rng64::seed_from_u64(seed ^ 0xD0D5_EED0_0DED_0B5E),
            dup_fraction,
            theta,
            uniques: Vec::new(),
            zipf: None,
            draws: 0,
            dups: 0,
        }
    }

    /// Emit the next block of `len` bytes: a duplicate of an earlier
    /// unique with probability `dup_fraction` (the very first block is
    /// always unique), a fresh unique otherwise.
    pub fn block(&mut self, len: usize) -> Vec<u8> {
        self.draws += 1;
        if !self.uniques.is_empty() && self.rng.chance(self.dup_fraction) {
            self.dups += 1;
            let ranks = self.sampler_len();
            let rank = self.zipf.as_ref().expect("sampler built").sample(&mut self.rng);
            // Rank 0 = most recent unique; the sampler may lag behind
            // `uniques` growth, which only shortens the reachable tail.
            let idx = self.uniques.len() - 1 - rank.min(ranks - 1);
            return self.uniques[idx].clone();
        }
        let (_, block) = self.gen.block(len);
        self.uniques.push(block.clone());
        block
    }

    /// Ranks currently covered by the Zipfian sampler, rebuilding it when
    /// the unique pool has outgrown it by ≥ 25 % (geometric rebuilds keep
    /// total setup linear in the number of uniques).
    fn sampler_len(&mut self) -> usize {
        let n = self.uniques.len();
        let current = self.zipf.as_ref().map_or(0, Zipfian::len);
        if current == 0 || (n > current && n * 4 >= current * 5) {
            self.zipf = Some(Zipfian::new(n, self.theta));
            return n;
        }
        current
    }

    /// Blocks emitted so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Blocks emitted as duplicates of earlier content.
    pub fn dup_blocks(&self) -> u64 {
        self.dups
    }

    /// Distinct (unique) blocks emitted so far.
    pub fn unique_blocks(&self) -> u64 {
        self.uniques.len() as u64
    }

    /// The duplicate fraction actually achieved so far (0 before any
    /// draw).
    pub fn achieved_dup_fraction(&self) -> f64 {
        if self.draws == 0 {
            return 0.0;
        }
        self.dups as f64 / self.draws as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BlockClass;
    use std::collections::HashSet;

    fn stream(seed: u64, frac: f64) -> DupStream {
        DupStream::new(seed, DataMix::primary_storage(), frac, 0.99)
    }

    #[test]
    fn achieved_dup_fraction_within_two_percent_of_dial() {
        for (seed, dial) in [(1u64, 0.4), (2, 0.4), (7, 0.25), (11, 0.6)] {
            let mut s = stream(seed, dial);
            for _ in 0..10_000 {
                s.block(4096);
            }
            let got = s.achieved_dup_fraction();
            assert!(
                (got - dial).abs() <= 0.02,
                "seed {seed}: dialed {dial}, achieved {got}"
            );
        }
    }

    #[test]
    fn duplicates_are_byte_exact_copies_of_earlier_uniques() {
        let mut s = stream(3, 0.5);
        let mut seen: HashSet<Vec<u8>> = HashSet::new();
        let mut dup_hits = 0u64;
        for _ in 0..2_000 {
            let before = s.dup_blocks();
            let b = s.block(4096);
            if s.dup_blocks() > before {
                assert!(seen.contains(&b), "a duplicate must repeat an earlier block");
                dup_hits += 1;
            } else {
                seen.insert(b);
            }
        }
        assert_eq!(dup_hits, s.dup_blocks());
        assert!(dup_hits > 0);
        assert_eq!(s.unique_blocks() + s.dup_blocks(), s.draws());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = stream(42, 0.4);
        let mut b = stream(42, 0.4);
        for _ in 0..500 {
            assert_eq!(a.block(4096), b.block(4096));
        }
        let mut c = stream(43, 0.4);
        let diverged = (0..500).any(|_| a.block(4096) != c.block(4096));
        assert!(diverged, "different seeds must give different streams");
    }

    #[test]
    fn reuse_is_recency_biased() {
        // With strong skew, the most recent decile of uniques must absorb
        // well over its uniform share of the duplicate draws.
        let mut s = DupStream::new(5, DataMix::pure(BlockClass::Random), 0.5, 0.99);
        let mut recent_hits = 0u64;
        let mut dup_draws = 0u64;
        for _ in 0..5_000 {
            let before = s.dup_blocks();
            let b = s.block(512);
            if s.dup_blocks() > before {
                dup_draws += 1;
                let n = s.uniques.len();
                let cutoff = n.saturating_sub(n / 10).max(1);
                if s.uniques[cutoff - 1..].iter().any(|u| u == &b) {
                    recent_hits += 1;
                }
            }
        }
        assert!(dup_draws > 1_000);
        let frac = recent_hits as f64 / dup_draws as f64;
        assert!(frac > 0.3, "recent decile absorbed only {frac:.3} of reuse");
    }

    #[test]
    fn zero_fraction_never_duplicates() {
        let mut s = stream(9, 0.0);
        for _ in 0..1_000 {
            s.block(1024);
        }
        assert_eq!(s.dup_blocks(), 0);
        assert_eq!(s.achieved_dup_fraction(), 0.0);
        assert_eq!(s.unique_blocks(), 1_000);
    }

    #[test]
    #[should_panic(expected = "dup_fraction")]
    fn rejects_fraction_of_one() {
        let _ = stream(1, 1.0);
    }
}
