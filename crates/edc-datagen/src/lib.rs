//! # edc-datagen
//!
//! SDGen-equivalent synthetic content generation for the EDC reproduction.
//!
//! The traces the paper replays (SPC financial, MSR Cambridge) carry **no
//! payload bytes**, so the authors used SDGen (Gracia-Tinedo et al.,
//! FAST'15) to synthesize block contents whose *compressibility* — ratio,
//! compression time, heterogeneity — mimics data sampled from real
//! applications. This crate plays that role:
//!
//! * [`BlockClass`] — content families with distinct compressibility
//!   (zero-filled, prose text, source code, structured binary records,
//!   already-compressed media, random),
//! * [`DataMix`] — a weighted mixture of classes, with presets matching the
//!   skewed distribution published measurements report (≈31 % of chunks
//!   incompressible, half the chunks providing most of the savings —
//!   El-Shimi et al., ATC'12, cited in the paper's §I),
//! * [`ContentGenerator`] — deterministic, seeded block producer,
//! * [`corpus`] — the two evaluation datasets of the paper's Fig. 2
//!   ("Linux source files", "Mozilla Firefox files") as synthetic look-alikes,
//! * [`ratio_dial`] — generate blocks hitting a *target* compressed
//!   fraction, SDGen's headline capability,
//! * [`dup`] — seeded duplication injection: a dialable duplicate
//!   fraction with Zipfian-over-recency reuse, for dedup benchmarks.
//!
//! Everything is seeded via the in-tree [`rng::Rng64`] (the workspace has
//! no external dependencies so it builds offline), so every experiment
//! that consumes generated content is exactly reproducible. The [`proptest`]
//! module hosts the shared randomized-property-test harness the per-crate
//! test suites use for the same reason.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod dup;
pub mod generator;
pub mod proptest;
pub mod ratio_dial;
pub mod rng;
pub mod zipf;

pub use dup::DupStream;
pub use generator::{BlockClass, ContentGenerator, DataMix};
pub use ratio_dial::RatioDial;
pub use rng::Rng64;
pub use zipf::Zipfian;
