//! Block-content generation by class and weighted mixture.

use crate::rng::Rng64;

/// A family of block contents with a characteristic compressibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockClass {
    /// All-zero block (freshly trimmed space, sparse files). Extreme ratio.
    Zero,
    /// Natural-language-like prose from a word-bigram chain. Gzip ≈ 2–3×.
    Text,
    /// Source-code-like lines: keywords, identifiers, indentation. High ratio.
    Code,
    /// Structured binary records: mixed counters, enums, zero padding. Medium.
    Binary,
    /// Already-compressed media (JPEG/MP4-like): random with thin headers.
    /// Effectively incompressible.
    Media,
    /// Uniform random bytes. Incompressible; worst case for any codec.
    Random,
}

impl BlockClass {
    /// All classes, in a stable order.
    pub const ALL: [BlockClass; 6] = [
        BlockClass::Zero,
        BlockClass::Text,
        BlockClass::Code,
        BlockClass::Binary,
        BlockClass::Media,
        BlockClass::Random,
    ];

    /// Whether a sampling estimator should flag this class as a
    /// write-through candidate.
    pub fn is_incompressible(self) -> bool {
        matches!(self, BlockClass::Media | BlockClass::Random)
    }
}

/// A weighted mixture of block classes.
#[derive(Debug, Clone, PartialEq)]
pub struct DataMix {
    weights: Vec<(BlockClass, f64)>,
    total: f64,
}

impl DataMix {
    /// Build a mix from `(class, weight)` pairs. Weights need not sum to 1.
    ///
    /// # Panics
    /// Panics if empty or any weight is non-positive.
    pub fn new(weights: Vec<(BlockClass, f64)>) -> Self {
        assert!(!weights.is_empty(), "mix needs at least one class");
        assert!(weights.iter().all(|&(_, w)| w > 0.0), "weights must be positive");
        let total = weights.iter().map(|&(_, w)| w).sum();
        DataMix { weights, total }
    }

    /// A single-class mix.
    pub fn pure(class: BlockClass) -> Self {
        DataMix::new(vec![(class, 1.0)])
    }

    /// The skewed "primary storage" mix from the measurements the paper
    /// cites (§I): roughly 31 % of chunks incompressible, the rest split
    /// across compressible families with a tail of near-empty blocks.
    pub fn primary_storage() -> Self {
        DataMix::new(vec![
            (BlockClass::Zero, 0.06),
            (BlockClass::Text, 0.22),
            (BlockClass::Code, 0.16),
            (BlockClass::Binary, 0.25),
            (BlockClass::Media, 0.19),
            (BlockClass::Random, 0.12),
        ])
    }

    /// An OLTP-leaning mix: database pages are structured binary with
    /// embedded text, few media blobs.
    pub fn oltp() -> Self {
        DataMix::new(vec![
            (BlockClass::Zero, 0.05),
            (BlockClass::Text, 0.15),
            (BlockClass::Binary, 0.55),
            (BlockClass::Media, 0.10),
            (BlockClass::Random, 0.15),
        ])
    }

    /// Fraction of weight on incompressible classes.
    pub fn incompressible_fraction(&self) -> f64 {
        self.weights
            .iter()
            .filter(|(c, _)| c.is_incompressible())
            .map(|&(_, w)| w)
            .sum::<f64>()
            / self.total
    }

    /// Sample a class.
    pub fn sample(&self, rng: &mut Rng64) -> BlockClass {
        let mut x = rng.f64() * self.total;
        for &(class, w) in &self.weights {
            if x < w {
                return class;
            }
            x -= w;
        }
        self.weights.last().expect("non-empty").0
    }
}

/// Deterministic, seeded block-content generator.
#[derive(Debug, Clone)]
pub struct ContentGenerator {
    rng: Rng64,
    mix: DataMix,
}

/// Vocabulary for [`BlockClass::Text`] blocks.
const WORDS: &[&str] = &[
    "the", "of", "and", "to", "in", "is", "that", "it", "was", "for", "on", "are", "with",
    "as", "system", "storage", "data", "flash", "request", "block", "write", "read", "time",
    "latency", "queue", "device", "page", "compression", "ratio", "workload", "trace",
    "performance", "space", "efficiency", "intensity", "monitor", "buffer", "schedule",
    "application", "server", "financial", "transaction", "record", "update", "period",
];

/// Keyword pool for [`BlockClass::Code`] blocks.
const KEYWORDS: &[&str] = &[
    "if", "else", "for", "while", "return", "struct", "static", "const", "int", "void",
    "char", "unsigned", "sizeof", "NULL", "break", "continue", "switch", "case", "typedef",
];

impl ContentGenerator {
    /// Create a generator with a seed and a class mixture.
    pub fn new(seed: u64, mix: DataMix) -> Self {
        ContentGenerator { rng: Rng64::seed_from_u64(seed), mix }
    }

    /// Create a single-class generator.
    pub fn pure(seed: u64, class: BlockClass) -> Self {
        Self::new(seed, DataMix::pure(class))
    }

    /// The active mixture.
    pub fn mix(&self) -> &DataMix {
        &self.mix
    }

    /// Generate one block of `len` bytes; the class is sampled from the mix.
    /// Returns the class actually used alongside the bytes.
    pub fn block(&mut self, len: usize) -> (BlockClass, Vec<u8>) {
        let class = self.mix.sample(&mut self.rng);
        (class, self.block_of(class, len))
    }

    /// Generate one block of `len` bytes of a specific class.
    pub fn block_of(&mut self, class: BlockClass, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        match class {
            BlockClass::Zero => out.resize(len, 0),
            BlockClass::Text => self.fill_text(&mut out, len),
            BlockClass::Code => self.fill_code(&mut out, len),
            BlockClass::Binary => self.fill_binary(&mut out, len),
            BlockClass::Media => self.fill_media(&mut out, len),
            BlockClass::Random => {
                out.resize(len, 0);
                self.rng.fill_bytes(&mut out);
            }
        }
        debug_assert_eq!(out.len(), len);
        out
    }

    /// Prose: words drawn with a strong recency bias (re-use of the last few
    /// words approximates bigram structure), sentence punctuation.
    fn fill_text(&mut self, out: &mut Vec<u8>, len: usize) {
        let mut recent: Vec<&str> = Vec::with_capacity(8);
        let mut since_period = 0usize;
        while out.len() < len {
            let reuse = !recent.is_empty() && self.rng.chance(0.35);
            let word = if reuse {
                recent[self.rng.below_usize(recent.len())]
            } else {
                WORDS[self.rng.below_usize(WORDS.len())]
            };
            if recent.len() == 8 {
                recent.remove(0);
            }
            recent.push(word);
            out.extend_from_slice(word.as_bytes());
            since_period += 1;
            if since_period > 8 && self.rng.chance(0.2) {
                out.extend_from_slice(b". ");
                since_period = 0;
            } else {
                out.push(b' ');
            }
        }
        out.truncate(len);
    }

    /// Source code: indented lines of keywords, identifiers and operators.
    fn fill_code(&mut self, out: &mut Vec<u8>, len: usize) {
        let idents = ["req", "buf", "len", "dev", "ctx", "ret", "flags", "offset", "page_idx"];
        let mut depth = 1usize;
        while out.len() < len {
            for _ in 0..depth {
                out.extend_from_slice(b"    ");
            }
            let kw = KEYWORDS[self.rng.below_usize(KEYWORDS.len())];
            let a = idents[self.rng.below_usize(idents.len())];
            let b = idents[self.rng.below_usize(idents.len())];
            match self.rng.below(4) {
                0 => {
                    out.extend_from_slice(kw.as_bytes());
                    out.extend_from_slice(b" (");
                    out.extend_from_slice(a.as_bytes());
                    out.extend_from_slice(b" < ");
                    out.extend_from_slice(b.as_bytes());
                    out.extend_from_slice(b") {\n");
                    depth = (depth + 1).min(4);
                }
                1 => {
                    out.extend_from_slice(a.as_bytes());
                    out.extend_from_slice(b" = ");
                    out.extend_from_slice(b.as_bytes());
                    let n = self.rng.below(4096);
                    out.extend_from_slice(format!(" + {n};\n").as_bytes());
                }
                2 => {
                    out.extend_from_slice(b"}\n");
                    depth = depth.saturating_sub(1).max(1);
                }
                _ => {
                    out.extend_from_slice(b"return ");
                    out.extend_from_slice(a.as_bytes());
                    out.extend_from_slice(b";\n");
                }
            }
        }
        out.truncate(len);
    }

    /// Structured binary: fixed-layout records — id counter, small enums,
    /// timestamps with small deltas, zero padding. Compresses ~2× like real
    /// database/index pages.
    fn fill_binary(&mut self, out: &mut Vec<u8>, len: usize) {
        let mut id = self.rng.below(1_000_000);
        let mut ts = 1_400_000_000u64 + self.rng.below(10_000_000);
        while out.len() < len {
            id += self.rng.range_u64(1, 4);
            ts += self.rng.below(1000);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&ts.to_le_bytes());
            out.push(self.rng.below(6) as u8); // status enum
            out.push(0);
            out.extend_from_slice(&(self.rng.below(10_000) as u32).to_le_bytes());
            out.extend_from_slice(&[0u8; 10]); // reserved/padding
        }
        out.truncate(len);
    }

    /// Media: random body with sparse structured marker bytes, like the
    /// entropy-coded payload of JPEG/video containers.
    fn fill_media(&mut self, out: &mut Vec<u8>, len: usize) {
        out.resize(len, 0);
        self.rng.fill_bytes(out);
        // Sprinkle marker sequences every ~2 KiB (segment headers).
        let mut pos = 0usize;
        while pos + 4 <= len {
            out[pos] = 0xFF;
            out[pos + 1] = 0xD8 + self.rng.below(8) as u8;
            pos += 1500 + self.rng.below_usize(1000);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_have_requested_length() {
        let mut g = ContentGenerator::new(1, DataMix::primary_storage());
        for len in [0usize, 1, 511, 4096, 65536] {
            let (_, b) = g.block(len);
            assert_eq!(b.len(), len);
        }
    }

    #[test]
    fn every_class_generates() {
        let mut g = ContentGenerator::pure(2, BlockClass::Zero);
        for class in BlockClass::ALL {
            let b = g.block_of(class, 4096);
            assert_eq!(b.len(), 4096);
        }
    }

    #[test]
    fn zero_blocks_are_zero() {
        let mut g = ContentGenerator::pure(3, BlockClass::Zero);
        assert!(g.block_of(BlockClass::Zero, 8192).iter().all(|&b| b == 0));
    }

    #[test]
    fn text_is_ascii_words() {
        let mut g = ContentGenerator::pure(4, BlockClass::Text);
        let b = g.block_of(BlockClass::Text, 4096);
        assert!(b.iter().all(|&c| c.is_ascii_lowercase() || c == b' ' || c == b'.'));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ContentGenerator::new(42, DataMix::primary_storage());
        let mut b = ContentGenerator::new(42, DataMix::primary_storage());
        for _ in 0..20 {
            assert_eq!(a.block(4096), b.block(4096));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ContentGenerator::pure(1, BlockClass::Random);
        let mut b = ContentGenerator::pure(2, BlockClass::Random);
        assert_ne!(a.block_of(BlockClass::Random, 4096), b.block_of(BlockClass::Random, 4096));
    }

    #[test]
    fn mix_sampling_respects_weights() {
        let mix = DataMix::new(vec![(BlockClass::Zero, 9.0), (BlockClass::Random, 1.0)]);
        let mut rng = Rng64::seed_from_u64(7);
        let zeros = (0..10_000).filter(|_| mix.sample(&mut rng) == BlockClass::Zero).count();
        assert!((8500..9500).contains(&zeros), "got {zeros} zeros out of 10000");
    }

    #[test]
    fn primary_storage_mix_is_about_31pct_incompressible() {
        let f = DataMix::primary_storage().incompressible_fraction();
        assert!((0.25..0.40).contains(&f), "incompressible fraction {f}");
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn non_positive_weight_rejected() {
        let _ = DataMix::new(vec![(BlockClass::Zero, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mix_rejected() {
        let _ = DataMix::new(vec![]);
    }

    #[test]
    fn media_blocks_are_high_entropy() {
        let mut g = ContentGenerator::pure(5, BlockClass::Media);
        let b = g.block_of(BlockClass::Media, 4096);
        let distinct = b.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(distinct > 200, "media must look random, {distinct} distinct bytes");
    }

    #[test]
    fn binary_blocks_have_zero_padding() {
        let mut g = ContentGenerator::pure(6, BlockClass::Binary);
        let b = g.block_of(BlockClass::Binary, 4096);
        let zeros = b.iter().filter(|&&x| x == 0).count();
        assert!(zeros > b.len() / 5, "expected padding zeros, got {zeros}");
    }
}
