//! Property tests for trace parsing/serialization and synthetic
//! generation invariants.

use edc_trace::writer::{to_msr, to_spc};
use edc_trace::{msr, spc, OpType, Request, SynthConfig, Trace};
use proptest::prelude::*;

fn request_strategy() -> impl Strategy<Value = Request> {
    (0u64..1_000_000_000, any::<bool>(), 0u64..1_000_000, 1u32..64).prop_map(
        |(at, read, block, len_blocks)| Request {
            arrival_ns: at,
            op: if read { OpType::Read } else { OpType::Write },
            offset: block * 4096,
            len: len_blocks * 512,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SPC text round-trips: write → parse preserves ops, offsets, sizes
    /// (timestamps to µs precision).
    #[test]
    fn spc_round_trips(reqs in proptest::collection::vec(request_strategy(), 1..100)) {
        let t = Trace::new("p", reqs);
        let parsed = spc::parse("p", &to_spc(&t), None).unwrap();
        prop_assert_eq!(parsed.requests.len(), t.requests.len());
        for (a, b) in parsed.requests.iter().zip(&t.requests) {
            prop_assert_eq!(a.op, b.op);
            prop_assert_eq!(a.offset, b.offset / 512 * 512);
            prop_assert_eq!(a.len, b.len);
            prop_assert!((a.arrival_ns as i64 - b.arrival_ns as i64).abs() <= 1000);
        }
    }

    /// MSR text round-trips (inter-arrival structure; the parser rebases).
    #[test]
    fn msr_round_trips(reqs in proptest::collection::vec(request_strategy(), 1..100)) {
        let t = Trace::new("p", reqs);
        let parsed = msr::parse("p", &to_msr(&t, "host"), None).unwrap();
        prop_assert_eq!(parsed.requests.len(), t.requests.len());
        let base_a = parsed.requests[0].arrival_ns as i64;
        let base_b = t.requests[0].arrival_ns as i64;
        for (a, b) in parsed.requests.iter().zip(&t.requests) {
            prop_assert_eq!(a.op, b.op);
            prop_assert_eq!(a.offset, b.offset);
            prop_assert_eq!(a.len, b.len);
            let da = a.arrival_ns as i64 - base_a;
            let db = b.arrival_ns as i64 - base_b;
            prop_assert!((da - db).abs() <= 100);
        }
    }

    /// Synthetic generation invariants for arbitrary configurations:
    /// ordered arrivals, in-volume offsets, sizes from the distribution,
    /// determinism per seed.
    #[test]
    fn synth_invariants(
        seed in any::<u64>(),
        on_rate in 50.0f64..2000.0,
        read_frac in 0.0f64..1.0,
        seq_prob in 0.0f64..1.0,
        batch in 1.0f64..8.0,
    ) {
        let cfg = SynthConfig {
            duration_s: 5.0,
            on_rate,
            off_rate: 5.0,
            mean_on_s: 1.0,
            mean_off_s: 2.0,
            read_fraction: read_frac,
            size_dist: vec![(4096, 0.5), (8192, 0.3), (16384, 0.2)],
            seq_prob,
            volume_bytes: 1 << 30,
            batch_mean: batch,
        };
        let a = cfg.generate("x", seed);
        let b = cfg.generate("x", seed);
        prop_assert_eq!(&a, &b, "same seed must reproduce");
        prop_assert!(a.requests.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        for r in &a.requests {
            prop_assert!(r.offset + u64::from(r.len) <= cfg.volume_bytes + 65536);
            prop_assert!([4096u32, 8192, 16384].contains(&r.len));
            prop_assert!(r.arrival_ns <= 5_000_000_000);
        }
    }
}
