//! Property tests for trace parsing/serialization and synthetic
//! generation invariants. Runs on the in-tree harness
//! (`edc_datagen::proptest`).

use edc_datagen::proptest::{cases, vec_of};
use edc_datagen::Rng64;
use edc_trace::writer::{to_msr, to_spc};
use edc_trace::{msr, spc, OpType, Request, SynthConfig, Trace};

fn random_request(rng: &mut Rng64) -> Request {
    Request {
        arrival_ns: rng.below(1_000_000_000),
        op: if rng.chance(0.5) { OpType::Read } else { OpType::Write },
        offset: rng.below(1_000_000) * 4096,
        len: rng.range_u64(1, 64) as u32 * 512,
    }
}

/// SPC text round-trips: write → parse preserves ops, offsets, sizes
/// (timestamps to µs precision).
#[test]
fn spc_round_trips() {
    cases(48).run("spc_round_trips", |rng| {
        let reqs = vec_of(rng, 1, 100, random_request);
        let t = Trace::new("p", reqs);
        let parsed = spc::parse("p", &to_spc(&t), None).unwrap();
        assert_eq!(parsed.requests.len(), t.requests.len());
        for (a, b) in parsed.requests.iter().zip(&t.requests) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.offset, b.offset / 512 * 512);
            assert_eq!(a.len, b.len);
            assert!((a.arrival_ns as i64 - b.arrival_ns as i64).abs() <= 1000);
        }
    });
}

/// MSR text round-trips (inter-arrival structure; the parser rebases).
#[test]
fn msr_round_trips() {
    cases(48).run("msr_round_trips", |rng| {
        let reqs = vec_of(rng, 1, 100, random_request);
        let t = Trace::new("p", reqs);
        let parsed = msr::parse("p", &to_msr(&t, "host"), None).unwrap();
        assert_eq!(parsed.requests.len(), t.requests.len());
        let base_a = parsed.requests[0].arrival_ns as i64;
        let base_b = t.requests[0].arrival_ns as i64;
        for (a, b) in parsed.requests.iter().zip(&t.requests) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.offset, b.offset);
            assert_eq!(a.len, b.len);
            let da = a.arrival_ns as i64 - base_a;
            let db = b.arrival_ns as i64 - base_b;
            assert!((da - db).abs() <= 100);
        }
    });
}

/// Synthetic generation invariants for arbitrary configurations:
/// ordered arrivals, in-volume offsets, sizes from the distribution,
/// determinism per seed.
#[test]
fn synth_invariants() {
    cases(48).run("synth_invariants", |rng| {
        let seed = rng.next_u64();
        let on_rate = 50.0 + rng.f64() * 1950.0;
        let read_frac = rng.f64();
        let seq_prob = rng.f64();
        let batch = 1.0 + rng.f64() * 7.0;
        let cfg = SynthConfig {
            duration_s: 5.0,
            on_rate,
            off_rate: 5.0,
            mean_on_s: 1.0,
            mean_off_s: 2.0,
            read_fraction: read_frac,
            size_dist: vec![(4096, 0.5), (8192, 0.3), (16384, 0.2)],
            seq_prob,
            volume_bytes: 1 << 30,
            batch_mean: batch,
        };
        let a = cfg.generate("x", seed);
        let b = cfg.generate("x", seed);
        assert_eq!(&a, &b, "same seed must reproduce");
        assert!(a.requests.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        for r in &a.requests {
            assert!(r.offset + u64::from(r.len) <= cfg.volume_bytes + 65536);
            assert!([4096u32, 8192, 16384].contains(&r.len));
            assert!(r.arrival_ns <= 5_000_000_000);
        }
    });
}
