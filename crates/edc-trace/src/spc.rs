//! Parser for the UMass Trace Repository / Storage Performance Council
//! financial trace format ("Fin1"/"Fin2" in the paper).
//!
//! Each line is `ASU,LBA,Size,Opcode,Timestamp[,...]`:
//!
//! * `ASU` — application-specific unit (volume id), used for filtering,
//! * `LBA` — logical block address in 512-byte sectors,
//! * `Size` — request size in bytes,
//! * `Opcode` — `r`/`R` read, `w`/`W` write,
//! * `Timestamp` — seconds from trace start, fractional.
//!
//! Trailing fields and blank/comment (`#`) lines are ignored.

use crate::{OpType, Request, Trace};
use std::fmt;

/// Sector size used by the LBA field.
pub const SECTOR: u64 = 512;

/// Error from parsing an SPC trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpcParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for SpcParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SPC trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for SpcParseError {}

/// Parse SPC trace text. `asu_filter`: keep only this ASU (`None` = all).
///
/// ```
/// let text = "0,128,4096,w,0.5\n1,256,8192,r,0.75\n";
/// let trace = edc_trace::spc::parse("Fin1", text, None).unwrap();
/// assert_eq!(trace.requests.len(), 2);
/// assert_eq!(trace.requests[0].offset, 128 * 512); // LBA is in sectors
/// ```
pub fn parse(name: &str, text: &str, asu_filter: Option<u32>) -> Result<Trace, SpcParseError> {
    let mut requests = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split(',').map(str::trim);
        let err = |reason: &str| SpcParseError { line, reason: reason.to_string() };
        let asu: u32 = fields
            .next()
            .ok_or_else(|| err("missing ASU"))?
            .parse()
            .map_err(|_| err("bad ASU"))?;
        let lba: u64 = fields
            .next()
            .ok_or_else(|| err("missing LBA"))?
            .parse()
            .map_err(|_| err("bad LBA"))?;
        let size: u32 = fields
            .next()
            .ok_or_else(|| err("missing size"))?
            .parse()
            .map_err(|_| err("bad size"))?;
        let op = match fields.next().ok_or_else(|| err("missing opcode"))? {
            "r" | "R" => OpType::Read,
            "w" | "W" => OpType::Write,
            other => return Err(err(&format!("bad opcode {other:?}"))),
        };
        let ts: f64 = fields
            .next()
            .ok_or_else(|| err("missing timestamp"))?
            .parse()
            .map_err(|_| err("bad timestamp"))?;
        if ts < 0.0 {
            return Err(err("negative timestamp"));
        }
        if size == 0 {
            return Err(err("zero-size request"));
        }
        if asu_filter.is_some_and(|want| want != asu) {
            continue;
        }
        requests.push(Request {
            arrival_ns: (ts * 1e9) as u64,
            op,
            offset: lba * SECTOR,
            len: size,
        });
    }
    Ok(Trace::new(name, requests))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# UMass financial trace sample
0,20941264,8192,W,0.000000
0,20939840,8192,w,0.011413
1,3209056,4096,r,0.026214
0,20939968,12288,R,0.042382

2,1024,512,w,1.5
";

    #[test]
    fn parses_all_lines() {
        let t = parse("Fin1", SAMPLE, None).unwrap();
        assert_eq!(t.requests.len(), 5);
        assert_eq!(t.name, "Fin1");
    }

    #[test]
    fn field_conversion() {
        let t = parse("Fin1", SAMPLE, None).unwrap();
        let r = t.requests[0];
        assert_eq!(r.arrival_ns, 0);
        assert_eq!(r.op, OpType::Write);
        assert_eq!(r.offset, 20941264 * SECTOR);
        assert_eq!(r.len, 8192);
        let r2 = t.requests[2];
        assert_eq!(r2.op, OpType::Read);
        assert_eq!(r2.arrival_ns, 26_214_000);
    }

    #[test]
    fn asu_filter() {
        let t = parse("Fin1", SAMPLE, Some(0)).unwrap();
        assert_eq!(t.requests.len(), 3);
        assert!(t.requests.iter().all(|r| r.offset >= 20939840 * SECTOR));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let t = parse("x", "# only a comment\n\n", None).unwrap();
        assert!(t.requests.is_empty());
    }

    #[test]
    fn bad_opcode_rejected() {
        let err = parse("x", "0,1,512,q,0.0", None).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("opcode"));
    }

    #[test]
    fn bad_number_rejected() {
        assert!(parse("x", "0,abc,512,r,0.0", None).is_err());
        assert!(parse("x", "0,1,512,r,notanumber", None).is_err());
    }

    #[test]
    fn zero_size_rejected() {
        let err = parse("x", "0,1,0,r,0.0", None).unwrap_err();
        assert!(err.reason.contains("zero-size"));
    }

    #[test]
    fn negative_timestamp_rejected() {
        assert!(parse("x", "0,1,512,r,-1.0", None).is_err());
    }

    #[test]
    fn out_of_order_timestamps_sorted() {
        let text = "0,1,512,r,2.0\n0,2,512,r,1.0\n";
        let t = parse("x", text, None).unwrap();
        assert!(t.requests[0].arrival_ns < t.requests[1].arrival_ns);
    }
}
