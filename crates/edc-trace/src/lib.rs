//! # edc-trace
//!
//! Block-I/O trace infrastructure for the EDC reproduction.
//!
//! The paper replays four traces: two OLTP traces from the Storage
//! Performance Council ("Fin1", "Fin2", collected at a large financial
//! institution) and two enterprise volumes from Microsoft Research
//! Cambridge ("Usr_0", "Prxy_0"). This crate provides:
//!
//! * [`Request`]/[`Trace`] — the in-memory trace model every other crate
//!   consumes,
//! * [`spc`] — parser for the UMass/SPC financial trace format,
//! * [`msr`] — parser for the MSR Cambridge (SNIA IOTTA) CSV format,
//! * [`synth`] — seeded synthetic workload generators with ON/OFF
//!   burstiness, including presets that match the published
//!   characteristics of the four paper traces (read/write mix, request
//!   sizes, intensity) — used because the original trace files are not
//!   redistributable,
//! * [`stats`] — workload characterization (the paper's Table II) and
//!   per-second intensity series (Fig. 3),
//! * [`writer`] — serializers back to the SPC/MSR text formats.
//!
//! Offsets and sizes are bytes; times are nanoseconds from trace start.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod msr;
pub mod spc;
pub mod stats;
pub mod synth;
pub mod writer;

pub use stats::{IntensityPoint, WorkloadStats};
pub use synth::{SynthConfig, TracePreset};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpType {
    /// Read request.
    Read,
    /// Write request.
    Write,
}

/// One block-level I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival time in nanoseconds from trace start.
    pub arrival_ns: u64,
    /// Operation type.
    pub op: OpType,
    /// Byte offset on the volume.
    pub offset: u64,
    /// Request length in bytes (> 0).
    pub len: u32,
}

impl Request {
    /// The paper's *calculated IOPS* unit: number of 4 KiB pages this
    /// request counts as (`ceil(len / 4096)`, minimum 1). Paper §III-D.
    pub fn page_units(&self) -> u32 {
        self.len.div_ceil(4096).max(1)
    }

    /// First 4 KiB logical block touched.
    pub fn first_block(&self) -> u64 {
        self.offset / 4096
    }

    /// Number of 4 KiB logical blocks touched (by span, accounting for
    /// offset alignment).
    pub fn block_span(&self) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let first = self.offset / 4096;
        let last = (self.offset + u64::from(self.len) - 1) / 4096;
        last - first + 1
    }
}

/// An ordered sequence of requests plus provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Display name ("Fin1", "Usr_0", ...).
    pub name: String,
    /// Requests in non-decreasing arrival order.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Build a trace, sorting requests by arrival time if needed.
    pub fn new(name: impl Into<String>, mut requests: Vec<Request>) -> Self {
        if !requests.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns) {
            requests.sort_by_key(|r| r.arrival_ns);
        }
        Trace { name: name.into(), requests }
    }

    /// Trace duration: arrival of the last request.
    pub fn duration_ns(&self) -> u64 {
        self.requests.last().map_or(0, |r| r.arrival_ns)
    }

    /// Total bytes moved (reads + writes).
    pub fn total_bytes(&self) -> u64 {
        self.requests.iter().map(|r| u64::from(r.len)).sum()
    }

    /// Truncate to the first `n` requests (for quick experiments).
    pub fn take(mut self, n: usize) -> Self {
        self.requests.truncate(n);
        self
    }

    /// Extract the sub-trace arriving in `[from_s, to_s)`, rebased so the
    /// window start becomes t = 0.
    pub fn slice(&self, from_s: f64, to_s: f64) -> Trace {
        assert!(from_s >= 0.0 && to_s > from_s, "invalid window");
        let from_ns = (from_s * 1e9) as u64;
        let to_ns = (to_s * 1e9) as u64;
        let requests = self
            .requests
            .iter()
            .filter(|r| r.arrival_ns >= from_ns && r.arrival_ns < to_ns)
            .map(|r| Request { arrival_ns: r.arrival_ns - from_ns, ..*r })
            .collect();
        Trace { name: format!("{}[{from_s}s..{to_s}s]", self.name), requests }
    }

    /// Merge several traces into one interleaved workload (multi-volume
    /// consolidation): requests keep their arrival times and are re-sorted.
    pub fn merge(name: impl Into<String>, traces: &[&Trace]) -> Trace {
        let mut requests: Vec<Request> =
            traces.iter().flat_map(|t| t.requests.iter().copied()).collect();
        requests.sort_by_key(|r| r.arrival_ns);
        Trace { name: name.into(), requests }
    }

    /// Speed the trace up (`factor` > 1) or slow it down (`factor` < 1) by
    /// scaling inter-arrival times — the standard trace-acceleration knob
    /// for sensitivity studies.
    pub fn scale_rate(&self, factor: f64) -> Trace {
        assert!(factor > 0.0, "factor must be positive");
        let requests = self
            .requests
            .iter()
            .map(|r| Request { arrival_ns: (r.arrival_ns as f64 / factor) as u64, ..*r })
            .collect();
        Trace { name: format!("{}x{factor}", self.name), requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(at: u64, len: u32) -> Request {
        Request { arrival_ns: at, op: OpType::Write, offset: 0, len }
    }

    #[test]
    fn page_units_follow_paper_rule() {
        // "one 8KB request is traded as two 4KB requests" (§III-D)
        assert_eq!(req(0, 8192).page_units(), 2);
        assert_eq!(req(0, 4096).page_units(), 1);
        assert_eq!(req(0, 4097).page_units(), 2);
        assert_eq!(req(0, 1).page_units(), 1);
        assert_eq!(req(0, 65536).page_units(), 16);
    }

    #[test]
    fn block_span_accounts_for_alignment() {
        let r = Request { arrival_ns: 0, op: OpType::Read, offset: 4000, len: 200 };
        // Crosses the 4096 boundary: blocks 0 and 1.
        assert_eq!(r.block_span(), 2);
        let aligned = Request { arrival_ns: 0, op: OpType::Read, offset: 8192, len: 4096 };
        assert_eq!(aligned.block_span(), 1);
        let zero = Request { arrival_ns: 0, op: OpType::Read, offset: 8192, len: 0 };
        assert_eq!(zero.block_span(), 0);
    }

    #[test]
    fn trace_sorts_out_of_order_input() {
        let t = Trace::new("t", vec![req(50, 1), req(10, 1), req(30, 1)]);
        let arrivals: Vec<u64> = t.requests.iter().map(|r| r.arrival_ns).collect();
        assert_eq!(arrivals, vec![10, 30, 50]);
        assert_eq!(t.duration_ns(), 50);
    }

    #[test]
    fn trace_accumulators() {
        let t = Trace::new("t", vec![req(0, 4096), req(1, 8192)]);
        assert_eq!(t.total_bytes(), 12288);
        assert_eq!(t.take(1).requests.len(), 1);
    }

    #[test]
    fn slice_window_rebases() {
        let t = Trace::new(
            "t",
            vec![req(500_000_000, 1), req(1_500_000_000, 1), req(2_500_000_000, 1)],
        );
        let s = t.slice(1.0, 2.0);
        assert_eq!(s.requests.len(), 1);
        assert_eq!(s.requests[0].arrival_ns, 500_000_000);
        // Window edges: inclusive start, exclusive end.
        assert_eq!(t.slice(0.5, 1.5).requests.len(), 1);
        assert_eq!(t.slice(0.5, 1.6).requests.len(), 2);
        assert!(t.slice(3.0, 4.0).requests.is_empty());
    }

    #[test]
    fn merge_interleaves_by_arrival() {
        let a = Trace::new("a", vec![req(10, 1), req(30, 1)]);
        let b = Trace::new("b", vec![req(20, 1), req(40, 1)]);
        let m = Trace::merge("ab", &[&a, &b]);
        let arrivals: Vec<u64> = m.requests.iter().map(|r| r.arrival_ns).collect();
        assert_eq!(arrivals, vec![10, 20, 30, 40]);
    }

    #[test]
    fn scale_rate_compresses_time() {
        let t = Trace::new("t", vec![req(1000, 1), req(2000, 1)]);
        let fast = t.scale_rate(2.0);
        assert_eq!(fast.requests[0].arrival_ns, 500);
        assert_eq!(fast.requests[1].arrival_ns, 1000);
        let slow = t.scale_rate(0.5);
        assert_eq!(slow.requests[1].arrival_ns, 4000);
        assert_eq!(slow.duration_ns(), 2 * t.duration_ns());
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn zero_scale_rejected() {
        let _ = Trace::new("t", vec![]).scale_rate(0.0);
    }
}
