//! Parser for the MSR Cambridge block-I/O trace format (SNIA IOTTA
//! repository; "Usr_0"/"Prxy_0" in the paper).
//!
//! Each line is
//! `Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`:
//!
//! * `Timestamp` — Windows filetime (100 ns ticks since 1601),
//! * `Hostname` — e.g. `usr`, `prxy`,
//! * `DiskNumber` — volume index on that host,
//! * `Type` — `Read`/`Write` (case-insensitive),
//! * `Offset` — byte offset,
//! * `Size` — bytes,
//! * `ResponseTime` — device response time in 100 ns ticks (ignored here;
//!   the simulator produces its own service times).
//!
//! Timestamps are rebased so the first kept request arrives at t = 0.

use crate::{OpType, Request, Trace};
use std::fmt;

/// Error from parsing an MSR trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsrParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for MsrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MSR trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for MsrParseError {}

/// Parse MSR trace text, keeping only `disk_filter` (`None` = all disks).
pub fn parse(name: &str, text: &str, disk_filter: Option<u32>) -> Result<Trace, MsrParseError> {
    let mut raw: Vec<(u64, Request)> = Vec::new();
    for (idx, line_text) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = line_text.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let err = |reason: &str| MsrParseError { line, reason: reason.to_string() };
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() < 6 {
            return Err(err("expected at least 6 comma-separated fields"));
        }
        let ticks: u64 = fields[0].parse().map_err(|_| err("bad timestamp"))?;
        let disk: u32 = fields[2].parse().map_err(|_| err("bad disk number"))?;
        let op = match fields[3].to_ascii_lowercase().as_str() {
            "read" => OpType::Read,
            "write" => OpType::Write,
            other => return Err(err(&format!("bad type {other:?}"))),
        };
        let offset: u64 = fields[4].parse().map_err(|_| err("bad offset"))?;
        let size: u64 = fields[5].parse().map_err(|_| err("bad size"))?;
        if size == 0 {
            return Err(err("zero-size request"));
        }
        let size: u32 = size.try_into().map_err(|_| err("size exceeds u32"))?;
        if disk_filter.is_some_and(|want| want != disk) {
            continue;
        }
        raw.push((ticks, Request { arrival_ns: 0, op, offset, len: size }));
    }
    // Rebase filetime ticks (100 ns) to nanoseconds from trace start.
    let base = raw.iter().map(|&(t, _)| t).min().unwrap_or(0);
    let requests = raw
        .into_iter()
        .map(|(t, mut r)| {
            r.arrival_ns = (t - base) * 100;
            r
        })
        .collect();
    Ok(Trace::new(name, requests))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
128166372003061629,usr,0,Read,7014609920,24576,41286
128166372016382155,usr,0,Write,2657792000,4096,543
128166372026382155,usr,1,Read,3056,8192,1000
128166372036382155,usr,0,write,2657796096,4096,600
";

    #[test]
    fn parses_and_rebases() {
        let t = parse("Usr_0", SAMPLE, None).unwrap();
        assert_eq!(t.requests.len(), 4);
        assert_eq!(t.requests[0].arrival_ns, 0);
        // Second line: (128166372016382155 - ...03061629) * 100 ns
        let expect = (128166372016382155u64 - 128166372003061629) * 100;
        assert_eq!(t.requests[1].arrival_ns, expect);
    }

    #[test]
    fn field_conversion() {
        let t = parse("Usr_0", SAMPLE, None).unwrap();
        let r = t.requests[0];
        assert_eq!(r.op, OpType::Read);
        assert_eq!(r.offset, 7014609920);
        assert_eq!(r.len, 24576);
    }

    #[test]
    fn case_insensitive_type() {
        let t = parse("Usr_0", SAMPLE, None).unwrap();
        assert_eq!(t.requests[3].op, OpType::Write);
    }

    #[test]
    fn disk_filter() {
        let t = parse("Usr_0", SAMPLE, Some(0)).unwrap();
        assert_eq!(t.requests.len(), 3);
        let t1 = parse("Usr_0", SAMPLE, Some(1)).unwrap();
        assert_eq!(t1.requests.len(), 1);
    }

    #[test]
    fn short_line_rejected() {
        let err = parse("x", "123,usr,0,Read,100", None).unwrap_err();
        assert!(err.reason.contains("6 comma-separated"));
    }

    #[test]
    fn bad_type_rejected() {
        assert!(parse("x", "1,usr,0,Trim,0,512,1", None).is_err());
    }

    #[test]
    fn zero_size_rejected() {
        assert!(parse("x", "1,usr,0,Read,0,0,1", None).is_err());
    }

    #[test]
    fn empty_input_ok() {
        let t = parse("x", "", None).unwrap();
        assert!(t.requests.is_empty());
    }

    #[test]
    fn response_time_field_optional_and_ignored() {
        let t = parse("x", "1000,usr,0,Read,0,512", None).unwrap();
        assert_eq!(t.requests.len(), 1);
    }
}
