//! `trace-tool` — generate, inspect and convert block-I/O traces.
//!
//! ```text
//! trace-tool gen fin1 60 42 --format spc -o fin1.spc   # synthesize
//! trace-tool stats fin1.spc --format spc               # Table II row
//! trace-tool convert fin1.spc spc msr -o fin1.msr      # format conversion
//! ```

use edc_trace::stats::WorkloadStats;
use edc_trace::writer::{to_msr, to_spc};
use edc_trace::{msr, spc, Trace, TracePreset};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  trace-tool gen <fin1|fin2|usr0|prxy0> <duration_s> <seed> [--format spc|msr] [-o FILE]\n  trace-tool stats <FILE> [--format spc|msr]\n  trace-tool convert <FILE> <spc|msr> <spc|msr> [-o FILE]\n  trace-tool slice <FILE> <from_s> <to_s> [--format spc|msr] [-o FILE]\n  trace-tool scale <FILE> <factor> [--format spc|msr] [-o FILE]"
    );
    exit(2);
}

fn preset(name: &str) -> TracePreset {
    match name.to_ascii_lowercase().as_str() {
        "fin1" => TracePreset::Fin1,
        "fin2" => TracePreset::Fin2,
        "usr0" | "usr_0" => TracePreset::Usr0,
        "prxy0" | "prxy_0" => TracePreset::Prxy0,
        other => {
            eprintln!("unknown preset {other:?} (fin1|fin2|usr0|prxy0)");
            exit(2);
        }
    }
}

fn parse_trace(path: &str, format: &str) -> Trace {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("reading {path}: {e}");
        exit(1);
    });
    let result = match format {
        "spc" => spc::parse(path, &text, None).map_err(|e| e.to_string()),
        "msr" => msr::parse(path, &text, None).map_err(|e| e.to_string()),
        other => {
            eprintln!("unknown format {other:?} (spc|msr)");
            exit(2);
        }
    };
    result.unwrap_or_else(|e| {
        eprintln!("parsing {path}: {e}");
        exit(1);
    })
}

fn serialize(trace: &Trace, format: &str) -> String {
    match format {
        "spc" => to_spc(trace),
        "msr" => to_msr(trace, &trace.name.replace(|c: char| !c.is_ascii_alphanumeric(), "_")),
        other => {
            eprintln!("unknown format {other:?} (spc|msr)");
            exit(2);
        }
    }
}

fn emit(text: &str, out: Option<&String>) {
    match out {
        Some(path) => std::fs::write(path, text).unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            exit(1);
        }),
        None => print!("{text}"),
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1))
}

fn print_stats(trace: &Trace) {
    let s = WorkloadStats::from_trace(trace);
    println!("trace:               {}", s.name);
    println!("requests:            {}", s.requests);
    println!("write fraction:      {:.1}%", s.write_fraction * 100.0);
    println!("read fraction:       {:.1}%", s.read_fraction * 100.0);
    println!("avg request size:    {:.2} KiB", s.avg_request_kib);
    println!("duration:            {:.1} s", s.duration_s);
    println!("avg IOPS:            {:.1}", s.avg_iops);
    println!("avg calculated IOPS: {:.1} (4 KiB page-units/s)", s.avg_calculated_iops);
    println!("burstiness:          {:.1}x peak-to-mean", s.burstiness);
    println!("idle seconds:        {:.1}%", s.idle_fraction * 100.0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "gen" => {
            if args.len() < 4 {
                usage();
            }
            let p = preset(&args[1]);
            let duration: f64 = args[2].parse().unwrap_or_else(|_| usage());
            let seed: u64 = args[3].parse().unwrap_or_else(|_| usage());
            let format = flag(&args, "--format").map_or("spc", String::as_str).to_string();
            let trace = p.generate(duration, seed);
            eprintln!("# generated {} requests", trace.requests.len());
            emit(&serialize(&trace, &format), flag(&args, "-o"));
        }
        "stats" => {
            if args.len() < 2 {
                usage();
            }
            let format = flag(&args, "--format").map_or("spc", String::as_str).to_string();
            let trace = parse_trace(&args[1], &format);
            print_stats(&trace);
        }
        "convert" => {
            if args.len() < 4 {
                usage();
            }
            let trace = parse_trace(&args[1], &args[2]);
            emit(&serialize(&trace, &args[3]), flag(&args, "-o"));
        }
        "slice" => {
            if args.len() < 4 {
                usage();
            }
            let format = flag(&args, "--format").map_or("spc", String::as_str).to_string();
            let trace = parse_trace(&args[1], &format);
            let from: f64 = args[2].parse().unwrap_or_else(|_| usage());
            let to: f64 = args[3].parse().unwrap_or_else(|_| usage());
            let sliced = trace.slice(from, to);
            eprintln!("# {} requests in [{from}s, {to}s)", sliced.requests.len());
            emit(&serialize(&sliced, &format), flag(&args, "-o"));
        }
        "scale" => {
            if args.len() < 3 {
                usage();
            }
            let format = flag(&args, "--format").map_or("spc", String::as_str).to_string();
            let trace = parse_trace(&args[1], &format);
            let factor: f64 = args[2].parse().unwrap_or_else(|_| usage());
            let scaled = trace.scale_rate(factor);
            eprintln!("# duration {:.2}s -> {:.2}s", trace.duration_ns() as f64 / 1e9, scaled.duration_ns() as f64 / 1e9);
            emit(&serialize(&scaled, &format), flag(&args, "-o"));
        }
        _ => usage(),
    }
}
