//! Trace serialization: write [`Trace`]s in the SPC and MSR on-disk
//! formats.
//!
//! Useful for exporting the synthetic workloads so they can be replayed by
//! external tools (blktrace replayers, fio's trace mode, the authors' own
//! prototype) or archived next to experiment results. `parse(write(t)) ==
//! t` up to the formats' timestamp precision.

use crate::{OpType, Trace};
use std::fmt::Write as _;

/// Serialize to the UMass/SPC financial format
/// (`ASU,LBA,Size,Opcode,Timestamp`; LBA in 512-byte sectors, timestamp in
/// seconds). All requests are emitted under ASU 0.
///
/// Offsets are rounded down to sector alignment (the format cannot express
/// sub-sector offsets).
pub fn to_spc(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.requests.len() * 32);
    for r in &trace.requests {
        let _ = writeln!(
            out,
            "0,{},{},{},{:.6}",
            r.offset / 512,
            r.len,
            if r.op == OpType::Read { 'r' } else { 'w' },
            r.arrival_ns as f64 / 1e9
        );
    }
    out
}

/// Serialize to the MSR Cambridge format
/// (`Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`;
/// timestamp in Windows filetime ticks). `host` labels all lines;
/// response times are written as 0 (unknown).
pub fn to_msr(trace: &Trace, host: &str) -> String {
    // An arbitrary filetime epoch in 2007, matching real MSR traces.
    const BASE_TICKS: u64 = 128_166_372_000_000_000;
    let mut out = String::with_capacity(trace.requests.len() * 48);
    for r in &trace.requests {
        let _ = writeln!(
            out,
            "{},{},0,{},{},{},0",
            BASE_TICKS + r.arrival_ns / 100,
            host,
            if r.op == OpType::Read { "Read" } else { "Write" },
            r.offset,
            r.len
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::TracePreset;
    use crate::{msr, spc, Request};

    fn sample() -> Trace {
        TracePreset::Fin2.generate(5.0, 123)
    }

    #[test]
    fn spc_round_trip() {
        let original = sample();
        let text = to_spc(&original);
        let parsed = spc::parse(&original.name, &text, None).unwrap();
        assert_eq!(parsed.requests.len(), original.requests.len());
        for (a, b) in parsed.requests.iter().zip(&original.requests) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.offset / 512, b.offset / 512);
            assert_eq!(a.len, b.len);
            // Microsecond timestamp precision through the text format.
            assert!((a.arrival_ns as i64 - b.arrival_ns as i64).abs() <= 1_000);
        }
    }

    #[test]
    fn msr_round_trip() {
        let original = sample();
        let text = to_msr(&original, "fin2");
        let parsed = msr::parse(&original.name, &text, None).unwrap();
        assert_eq!(parsed.requests.len(), original.requests.len());
        // The MSR parser rebases to the first request; compare inter-arrival
        // structure rather than absolute times.
        let base_a = parsed.requests[0].arrival_ns;
        let base_b = original.requests[0].arrival_ns;
        for (a, b) in parsed.requests.iter().zip(&original.requests) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.offset, b.offset);
            assert_eq!(a.len, b.len);
            // 100 ns tick precision.
            let da = (a.arrival_ns - base_a) as i64;
            let db = (b.arrival_ns - base_b) as i64;
            assert!((da - db).abs() <= 100);
        }
    }

    #[test]
    fn empty_trace_serializes_empty() {
        let t = Trace::new("e", vec![]);
        assert!(to_spc(&t).is_empty());
        assert!(to_msr(&t, "h").is_empty());
    }

    #[test]
    fn spc_lines_have_five_fields() {
        let text = to_spc(&sample());
        for line in text.lines().take(10) {
            assert_eq!(line.split(',').count(), 5, "line {line:?}");
        }
    }

    #[test]
    fn msr_lines_have_seven_fields() {
        let text = to_msr(&sample(), "usr");
        for line in text.lines().take(10) {
            assert_eq!(line.split(',').count(), 7, "line {line:?}");
            assert!(line.contains(",usr,"));
        }
    }

    #[test]
    fn request_op_mapping() {
        let t = Trace::new(
            "t",
            vec![
                Request { arrival_ns: 0, op: OpType::Read, offset: 512, len: 512 },
                Request { arrival_ns: 1000, op: OpType::Write, offset: 1024, len: 512 },
            ],
        );
        let spc_text = to_spc(&t);
        assert!(spc_text.contains(",r,"));
        assert!(spc_text.contains(",w,"));
        let msr_text = to_msr(&t, "h");
        assert!(msr_text.contains(",Read,"));
        assert!(msr_text.contains(",Write,"));
    }
}
