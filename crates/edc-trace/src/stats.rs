//! Workload characterization: the paper's Table II and the intensity
//! time-series behind Fig. 3.

use crate::{OpType, Request, Trace};

/// Aggregate workload characteristics (one row of the paper's Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// Trace name.
    pub name: String,
    /// Number of requests.
    pub requests: usize,
    /// Fraction of read requests (0–1).
    pub read_fraction: f64,
    /// Fraction of write requests (0–1).
    pub write_fraction: f64,
    /// Mean request size in KiB.
    pub avg_request_kib: f64,
    /// Trace duration in seconds.
    pub duration_s: f64,
    /// Mean raw IOPS (requests per second).
    pub avg_iops: f64,
    /// Mean *calculated* IOPS (4 KiB page-units per second — the paper's
    /// I/O-intensity metric, §III-D).
    pub avg_calculated_iops: f64,
    /// Peak-to-mean ratio of per-second arrival counts (burstiness).
    pub burstiness: f64,
    /// Fraction of whole seconds with fewer than 10 % of the mean arrivals
    /// (idleness).
    pub idle_fraction: f64,
}

impl WorkloadStats {
    /// Compute statistics for a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let n = trace.requests.len();
        if n == 0 {
            return WorkloadStats {
                name: trace.name.clone(),
                requests: 0,
                read_fraction: 0.0,
                write_fraction: 0.0,
                avg_request_kib: 0.0,
                duration_s: 0.0,
                avg_iops: 0.0,
                avg_calculated_iops: 0.0,
                burstiness: 0.0,
                idle_fraction: 0.0,
            };
        }
        let reads = trace.requests.iter().filter(|r| r.op == OpType::Read).count();
        let total_bytes: u64 = trace.requests.iter().map(|r| u64::from(r.len)).sum();
        let total_pages: u64 = trace.requests.iter().map(|r| u64::from(r.page_units())).sum();
        let duration_s = (trace.duration_ns() as f64 / 1e9).max(1e-9);
        let series = intensity_series(&trace.requests, 1.0);
        let mean_per_s = n as f64 / series.len().max(1) as f64;
        let peak = series.iter().map(|p| p.raw_iops).fold(0.0f64, f64::max);
        let idle = series.iter().filter(|p| p.raw_iops < 0.1 * mean_per_s).count();
        WorkloadStats {
            name: trace.name.clone(),
            requests: n,
            read_fraction: reads as f64 / n as f64,
            write_fraction: (n - reads) as f64 / n as f64,
            avg_request_kib: total_bytes as f64 / n as f64 / 1024.0,
            duration_s,
            avg_iops: n as f64 / duration_s,
            avg_calculated_iops: total_pages as f64 / duration_s,
            burstiness: if mean_per_s > 0.0 { peak / mean_per_s } else { 0.0 },
            idle_fraction: idle as f64 / series.len().max(1) as f64,
        }
    }
}

/// One bucket of the intensity time series (Fig. 3's y-axis values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntensityPoint {
    /// Bucket start time in seconds.
    pub t_s: f64,
    /// Raw requests per second in this bucket.
    pub raw_iops: f64,
    /// Calculated (4 KiB page-unit) IOPS in this bucket.
    pub calculated_iops: f64,
}

/// Bucket arrivals into windows of `bucket_s` seconds.
pub fn intensity_series(requests: &[Request], bucket_s: f64) -> Vec<IntensityPoint> {
    assert!(bucket_s > 0.0);
    let Some(last) = requests.last() else {
        return Vec::new();
    };
    let bucket_ns = (bucket_s * 1e9) as u64;
    let buckets = (last.arrival_ns / bucket_ns + 1) as usize;
    let mut raw = vec![0u64; buckets];
    let mut pages = vec![0u64; buckets];
    for r in requests {
        let b = (r.arrival_ns / bucket_ns) as usize;
        raw[b] += 1;
        pages[b] += u64::from(r.page_units());
    }
    raw.iter()
        .zip(pages.iter())
        .enumerate()
        .map(|(i, (&r, &p))| IntensityPoint {
            t_s: i as f64 * bucket_s,
            raw_iops: r as f64 / bucket_s,
            calculated_iops: p as f64 / bucket_s,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::TracePreset;

    fn mk(at_s: f64, op: OpType, len: u32) -> Request {
        Request { arrival_ns: (at_s * 1e9) as u64, op, offset: 0, len }
    }

    #[test]
    fn empty_trace_stats() {
        let s = WorkloadStats::from_trace(&Trace::new("e", vec![]));
        assert_eq!(s.requests, 0);
        assert_eq!(s.avg_iops, 0.0);
    }

    #[test]
    fn basic_fractions() {
        let t = Trace::new(
            "t",
            vec![
                mk(0.0, OpType::Read, 4096),
                mk(0.5, OpType::Write, 8192),
                mk(1.0, OpType::Write, 4096),
                mk(2.0, OpType::Write, 16384),
            ],
        );
        let s = WorkloadStats::from_trace(&t);
        assert_eq!(s.requests, 4);
        assert!((s.read_fraction - 0.25).abs() < 1e-9);
        assert!((s.write_fraction - 0.75).abs() < 1e-9);
        assert!((s.avg_request_kib - 8.0).abs() < 1e-9); // (4+8+4+16)/4 KiB
        assert!((s.duration_s - 2.0).abs() < 1e-9);
        assert!((s.avg_iops - 2.0).abs() < 1e-9);
        // pages: 1+2+1+4 = 8 over 2 s
        assert!((s.avg_calculated_iops - 4.0).abs() < 1e-9);
    }

    #[test]
    fn intensity_series_buckets() {
        let t = vec![
            mk(0.1, OpType::Read, 4096),
            mk(0.2, OpType::Read, 8192),
            mk(2.5, OpType::Write, 4096),
        ];
        let s = intensity_series(&t, 1.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].raw_iops, 2.0);
        assert_eq!(s[0].calculated_iops, 3.0);
        assert_eq!(s[1].raw_iops, 0.0);
        assert_eq!(s[2].raw_iops, 1.0);
        assert_eq!(s[0].t_s, 0.0);
        assert_eq!(s[2].t_s, 2.0);
    }

    #[test]
    fn sub_second_buckets() {
        let t = vec![mk(0.0, OpType::Read, 4096), mk(0.3, OpType::Read, 4096)];
        let s = intensity_series(&t, 0.25);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].raw_iops, 4.0); // 1 request / 0.25 s
    }

    #[test]
    fn empty_series() {
        assert!(intensity_series(&[], 1.0).is_empty());
    }

    #[test]
    fn presets_match_table2_characteristics() {
        // The synthetic presets must reproduce the qualitative Table II:
        // Fin1/Prxy_0 write-heavy, Fin2 read-heavy, Usr_0 big requests.
        let stats: Vec<WorkloadStats> = TracePreset::ALL
            .iter()
            .map(|p| WorkloadStats::from_trace(&p.generate(120.0, 42)))
            .collect();
        let by_name = |n: &str| stats.iter().find(|s| s.name == n).unwrap();
        assert!(by_name("Fin1").write_fraction > 0.7);
        assert!(by_name("Fin2").read_fraction > 0.75);
        assert!(by_name("Prxy_0").write_fraction > 0.9);
        assert!(by_name("Usr_0").avg_request_kib > 15.0);
        assert!(by_name("Fin1").avg_request_kib < 8.0);
    }

    #[test]
    fn presets_are_bursty_and_idle() {
        for p in TracePreset::ALL {
            let s = WorkloadStats::from_trace(&p.generate(180.0, 9));
            assert!(s.burstiness > 1.5, "{}: burstiness {}", s.name, s.burstiness);
        }
        // The enterprise volume shows pronounced idleness (Fig. 3b).
        let usr = WorkloadStats::from_trace(&TracePreset::Usr0.generate(180.0, 9));
        assert!(usr.idle_fraction > 0.2, "Usr_0 idle fraction {}", usr.idle_fraction);
    }
}
