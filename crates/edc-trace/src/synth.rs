//! Seeded synthetic workload generation with ON/OFF burstiness.
//!
//! The original Fin1/Fin2 (SPC) and Usr_0/Prxy_0 (MSR Cambridge) trace
//! files are not redistributable, so the reproduction generates synthetic
//! traces matching their published gross characteristics: read/write mix,
//! request-size distribution, average intensity, and — critical for EDC —
//! the alternation of bursty and idle periods that Fig. 3 of the paper
//! shows (Golding et al.'s "idleness is not sloth" behaviour, Riska &
//! Riedel's enterprise measurements).
//!
//! The arrival process is a two-state Markov-modulated Poisson process:
//! exponentially distributed ON (burst) and OFF (idle) phases, each with
//! its own Poisson arrival rate. Addresses follow a sequential-run model —
//! with probability `seq_prob` a request continues where the previous one
//! ended (which exercises EDC's Sequentiality Detector), otherwise it jumps
//! uniformly. Real trace files, when available, can be parsed with
//! [`crate::spc`]/[`crate::msr`] instead; everything downstream consumes
//! the same [`Trace`] type.

use crate::{OpType, Request, Trace};
use edc_datagen::Rng64;

/// Configuration of the synthetic workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Trace length in seconds.
    pub duration_s: f64,
    /// Poisson arrival rate during bursts (requests/s).
    pub on_rate: f64,
    /// Poisson arrival rate during idle phases (requests/s, may be 0).
    pub off_rate: f64,
    /// Mean burst duration (s), exponentially distributed.
    pub mean_on_s: f64,
    /// Mean idle duration (s), exponentially distributed.
    pub mean_off_s: f64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Request-size distribution as `(bytes, weight)` pairs.
    pub size_dist: Vec<(u32, f64)>,
    /// Probability that a write continues sequentially after the previous
    /// request (drives the Sequentiality Detector's merge opportunities).
    pub seq_prob: f64,
    /// Addressable volume size in bytes.
    pub volume_bytes: u64,
    /// Mean arrival-batch size (geometric, ≥ 1). Upper layers (DRAM
    /// buffering, I/O schedulers) cluster requests, so "the I/Os seen at
    /// the lower level are usually bursty and clustered" (paper §II-C):
    /// each Poisson arrival event emits a whole batch of back-to-back
    /// requests. The request *rate* stays `on_rate`/`off_rate`; only the
    /// clustering changes.
    pub batch_mean: f64,
}

impl SynthConfig {
    /// Mean request size implied by `size_dist`, in bytes.
    pub fn mean_request_bytes(&self) -> f64 {
        let total_w: f64 = self.size_dist.iter().map(|&(_, w)| w).sum();
        self.size_dist.iter().map(|&(s, w)| f64::from(s) * w).sum::<f64>() / total_w
    }

    /// Long-run average arrival rate (requests/s) implied by the ON/OFF
    /// phase parameters.
    pub fn mean_rate(&self) -> f64 {
        let cycle = self.mean_on_s + self.mean_off_s;
        (self.on_rate * self.mean_on_s + self.off_rate * self.mean_off_s) / cycle
    }

    /// Generate the trace.
    pub fn generate(&self, name: &str, seed: u64) -> Trace {
        assert!(self.duration_s > 0.0 && self.on_rate > 0.0);
        assert!(self.mean_on_s > 0.0 && self.mean_off_s >= 0.0);
        assert!((0.0..=1.0).contains(&self.read_fraction));
        assert!((0.0..=1.0).contains(&self.seq_prob));
        assert!(!self.size_dist.is_empty());
        let mut rng = Rng64::seed_from_u64(seed);
        let mut requests = Vec::new();
        let horizon = self.duration_s;
        let mut t = 0.0f64; // seconds
        let mut burst = true;
        let mut next_seq_offset: u64 = 0;
        // Exponential sample with mean `m`.
        let exp = move |rng: &mut Rng64, m: f64| -> f64 {
            if m <= 0.0 {
                return 0.0;
            }
            let u: f64 = rng.f64().max(1e-12);
            -u.ln() * m
        };
        let batch_mean = self.batch_mean.max(1.0);
        while t < horizon {
            let (rate, mean_phase) =
                if burst { (self.on_rate, self.mean_on_s) } else { (self.off_rate, self.mean_off_s) };
            let phase_len = exp(&mut rng, mean_phase);
            let phase_end = (t + phase_len).min(horizon);
            if rate > 0.0 {
                // Batch arrivals: events fire at rate / batch_mean, each
                // carrying a geometric number of back-to-back requests.
                let event_rate = rate / batch_mean;
                loop {
                    let gap = exp(&mut rng, 1.0 / event_rate);
                    if t + gap >= phase_end {
                        break;
                    }
                    t += gap;
                    let mut batch = 1usize;
                    while batch_mean > 1.0 && rng.chance(1.0 - 1.0 / batch_mean) {
                        batch += 1;
                        if batch >= 64 {
                            break;
                        }
                    }
                    for _ in 0..batch {
                        requests.push(self.one_request(&mut rng, t, &mut next_seq_offset));
                    }
                }
            }
            t = phase_end;
            burst = !burst;
        }
        Trace::new(name, requests)
    }

    fn one_request(&self, rng: &mut Rng64, t_s: f64, next_seq: &mut u64) -> Request {
        let op = if rng.chance(self.read_fraction) { OpType::Read } else { OpType::Write };
        let len = self.sample_size(rng);
        // A sequential chain that would run past the volume end restarts
        // with a fresh jump (real workloads wrap at file/extent ends).
        let sequential = *next_seq > 0
            && *next_seq + u64::from(len) <= self.volume_bytes
            && rng.chance(self.seq_prob);
        let offset = if sequential {
            *next_seq
        } else {
            // 4 KiB-aligned uniform jump, leaving room for the request.
            let max_block = (self.volume_bytes.saturating_sub(u64::from(len))) / 4096;
            rng.below(max_block + 1) * 4096
        };
        *next_seq = offset + u64::from(len);
        Request { arrival_ns: (t_s * 1e9) as u64, op, offset, len }
    }

    fn sample_size(&self, rng: &mut Rng64) -> u32 {
        let total: f64 = self.size_dist.iter().map(|&(_, w)| w).sum();
        let mut x = rng.f64() * total;
        for &(s, w) in &self.size_dist {
            if x < w {
                return s;
            }
            x -= w;
        }
        self.size_dist.last().expect("non-empty").0
    }
}

/// Presets matching the published characteristics of the paper's four
/// evaluation traces (Table II): read/write mix, request sizes, mean
/// intensity, burstiness.
///
/// ```
/// use edc_trace::TracePreset;
///
/// let trace = TracePreset::Fin1.generate(10.0, 42); // 10 s, seeded
/// assert!(!trace.requests.is_empty());
/// assert_eq!(trace, TracePreset::Fin1.generate(10.0, 42)); // reproducible
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracePreset {
    /// SPC "Financial1": OLTP, write-dominated (~77 % writes), small
    /// requests (~4 KiB), strongly bursty.
    Fin1,
    /// SPC "Financial2": OLTP, read-dominated (~82 % reads), small
    /// requests, moderately bursty.
    Fin2,
    /// MSR Cambridge `usr_0`: home-directory volume, ~60 % writes, large
    /// requests (tens of KiB), long idle stretches.
    Usr0,
    /// MSR Cambridge `prxy_0`: web-proxy volume, ~97 % writes, small
    /// requests, sustained high intensity.
    Prxy0,
}

impl TracePreset {
    /// All four paper traces in figure order.
    pub const ALL: [TracePreset; 4] =
        [TracePreset::Fin1, TracePreset::Fin2, TracePreset::Usr0, TracePreset::Prxy0];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            TracePreset::Fin1 => "Fin1",
            TracePreset::Fin2 => "Fin2",
            TracePreset::Usr0 => "Usr_0",
            TracePreset::Prxy0 => "Prxy_0",
        }
    }

    /// The generator configuration for this preset with a given duration.
    pub fn config(self, duration_s: f64) -> SynthConfig {
        match self {
            TracePreset::Fin1 => SynthConfig {
                duration_s,
                on_rate: 1600.0,
                off_rate: 15.0,
                mean_on_s: 1.0,
                mean_off_s: 9.0,
                read_fraction: 0.23,
                size_dist: vec![(2048, 0.10), (4096, 0.70), (8192, 0.15), (16384, 0.05)],
                seq_prob: 0.35,
                volume_bytes: 16 << 30,
                batch_mean: 4.0,
            },
            TracePreset::Fin2 => SynthConfig {
                duration_s,
                on_rate: 1400.0,
                off_rate: 25.0,
                mean_on_s: 1.5,
                mean_off_s: 8.0,
                read_fraction: 0.82,
                size_dist: vec![(2048, 0.25), (4096, 0.60), (8192, 0.15)],
                seq_prob: 0.25,
                volume_bytes: 16 << 30,
                batch_mean: 3.0,
            },
            TracePreset::Usr0 => SynthConfig {
                duration_s,
                on_rate: 450.0,
                off_rate: 4.0,
                mean_on_s: 2.0,
                mean_off_s: 16.0,
                read_fraction: 0.40,
                size_dist: vec![(4096, 0.35), (8192, 0.15), (16384, 0.15), (32768, 0.20), (65536, 0.15)],
                seq_prob: 0.55,
                volume_bytes: 64 << 30,
                batch_mean: 8.0,
            },
            TracePreset::Prxy0 => SynthConfig {
                duration_s,
                on_rate: 1500.0,
                off_rate: 60.0,
                mean_on_s: 2.0,
                mean_off_s: 5.0,
                read_fraction: 0.03,
                size_dist: vec![(4096, 0.75), (8192, 0.20), (16384, 0.05)],
                seq_prob: 0.50,
                volume_bytes: 32 << 30,
                batch_mean: 6.0,
            },
        }
    }

    /// Generate this preset's trace.
    pub fn generate(self, duration_s: f64, seed: u64) -> Trace {
        self.config(duration_s).generate(self.name(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requests_in_order() {
        let t = TracePreset::Fin1.generate(30.0, 1);
        assert!(!t.requests.is_empty());
        assert!(t.requests.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert!(t.duration_ns() <= 30_000_000_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TracePreset::Fin2.generate(20.0, 7);
        let b = TracePreset::Fin2.generate(20.0, 7);
        assert_eq!(a, b);
        let c = TracePreset::Fin2.generate(20.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn read_fraction_approximates_preset() {
        for (preset, want) in [
            (TracePreset::Fin1, 0.23),
            (TracePreset::Fin2, 0.82),
            (TracePreset::Usr0, 0.40),
            (TracePreset::Prxy0, 0.03),
        ] {
            let t = preset.generate(120.0, 3);
            let reads =
                t.requests.iter().filter(|r| r.op == OpType::Read).count() as f64;
            let got = reads / t.requests.len() as f64;
            assert!(
                (got - want).abs() < 0.05,
                "{}: read fraction {got:.3} vs {want}",
                preset.name()
            );
        }
    }

    #[test]
    fn mean_rate_matches_phase_math() {
        let cfg = TracePreset::Fin1.config(1.0);
        let expect = (1600.0 * 1.0 + 15.0 * 9.0) / 10.0;
        assert!((cfg.mean_rate() - expect).abs() < 1e-9);
    }

    #[test]
    fn batching_preserves_mean_rate() {
        // Long horizon so ON/OFF phase-sampling noise (~1/sqrt(phases))
        // does not mask the comparison.
        let mut cfg = TracePreset::Fin1.config(2400.0);
        cfg.batch_mean = 1.0;
        let unbatched = cfg.generate("x", 3).requests.len() as f64;
        cfg.batch_mean = 6.0;
        let batched = cfg.generate("x", 3).requests.len() as f64;
        let rel = (batched - unbatched).abs() / unbatched;
        assert!(rel < 0.15, "batching changed the rate by {:.0}%", rel * 100.0);
    }

    #[test]
    fn batches_arrive_back_to_back() {
        let t = TracePreset::Usr0.generate(60.0, 21);
        let same_instant = t
            .requests
            .windows(2)
            .filter(|w| w[0].arrival_ns == w[1].arrival_ns)
            .count();
        assert!(
            same_instant as f64 / t.requests.len() as f64 > 0.5,
            "batched preset must cluster arrivals, got {same_instant}/{}",
            t.requests.len()
        );
    }

    #[test]
    fn long_run_intensity_approximates_mean_rate() {
        let cfg = TracePreset::Prxy0.config(300.0);
        let t = cfg.generate("Prxy_0", 5);
        let got = t.requests.len() as f64 / 300.0;
        let want = cfg.mean_rate();
        assert!(
            (got - want).abs() / want < 0.25,
            "rate {got:.1} req/s vs expected {want:.1}"
        );
    }

    #[test]
    fn usr0_has_larger_requests_than_fin1() {
        let usr = TracePreset::Usr0.config(1.0).mean_request_bytes();
        let fin = TracePreset::Fin1.config(1.0).mean_request_bytes();
        assert!(usr > 3.0 * fin, "usr {usr:.0} vs fin {fin:.0}");
    }

    #[test]
    fn burstiness_visible_in_arrivals() {
        // Split into 1 s buckets; a bursty trace must have both hot and
        // near-idle seconds.
        let t = TracePreset::Fin1.generate(120.0, 11);
        let mut buckets = vec![0u32; 120];
        for r in &t.requests {
            let b = (r.arrival_ns / 1_000_000_000) as usize;
            if b < buckets.len() {
                buckets[b] += 1;
            }
        }
        let max = *buckets.iter().max().unwrap();
        let idle = buckets.iter().filter(|&&c| c < 30).count();
        assert!(max > 400, "expected bursts, max bucket {max}");
        assert!(idle > 20, "expected idle seconds, got {idle}");
    }

    #[test]
    fn sequential_runs_exist() {
        let t = TracePreset::Usr0.generate(60.0, 13);
        let seq = t
            .requests
            .windows(2)
            .filter(|w| w[1].offset == w[0].offset + u64::from(w[0].len))
            .count();
        assert!(
            seq as f64 / t.requests.len() as f64 > 0.3,
            "Usr_0 should be fairly sequential, got {seq}/{}",
            t.requests.len()
        );
    }

    #[test]
    fn offsets_stay_in_volume() {
        let cfg = TracePreset::Fin1.config(30.0);
        let t = cfg.generate("Fin1", 17);
        assert!(t
            .requests
            .iter()
            .all(|r| r.offset + u64::from(r.len) <= cfg.volume_bytes + 65536));
    }

    #[test]
    fn preset_names_match_paper() {
        let names: Vec<&str> = TracePreset::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["Fin1", "Fin2", "Usr_0", "Prxy_0"]);
    }
}
