//! Smoke tests for the async ring front-end: typed backpressure on a
//! depth-4 ring, and 8 real submitter threads pushing disjoint-block
//! writes through one [`Ring`] with no lost updates.

use edc_core::pipeline::PipelineConfig;
use edc_core::ring::{Ring, RingConfig, RingError};
use edc_core::shard::{ShardConfig, ShardedPipeline};
use edc_core::store::{Op, OpOutput};
use std::sync::atomic::{AtomicU64, Ordering};

const BB: u64 = 4096;
const THREADS: usize = 8;

/// A full 4 KiB block stamped with `(thread, block, round)` in every
/// lane, so provenance is checkable at any byte.
fn stamp(thread: usize, block: u64, round: u64) -> Vec<u8> {
    format!("t{thread:02} b{block:04} r{round:04} ring smoke payload lane ")
        .into_bytes()
        .into_iter()
        .cycle()
        .take(BB as usize)
        .collect()
}

fn store(shards: usize) -> ShardedPipeline {
    ShardedPipeline::new(
        shards as u64 * 4 * 1024 * 1024,
        ShardConfig { shards, extent_blocks: 2, pipeline: PipelineConfig::default() },
    )
}

/// Fill a depth-4 ring, hit the typed [`RingError::Full`], reap, refill.
/// Occupancy only frees at *reap* time, so the rejection is deterministic
/// no matter how fast the drainer runs.
#[test]
fn depth_four_ring_backpressures_then_reaps_then_refills() {
    let s = store(1);
    Ring::serve(&s, RingConfig { depth: 4, shards: 1 }, |ring| {
        let mut tickets = Vec::new();
        for i in 0..4u64 {
            tickets.push(
                ring.submit(i, Op::Read { offset: i * BB, len: BB }).expect("ring has room"),
            );
        }
        assert_eq!(
            ring.submit(4, Op::Read { offset: 0, len: BB }),
            Err(RingError::Full),
            "5th op must bounce off a depth-4 ring"
        );
        // Reap one → exactly one slot frees.
        let out = ring.wait(tickets.remove(0)).expect("first completion");
        assert!(matches!(out, OpOutput::Read { len, .. } if len == BB));
        let t = ring.submit(5, Op::Read { offset: 0, len: BB }).expect("slot freed by reap");
        tickets.push(t);
        assert_eq!(ring.submit(6, Op::Read { offset: 0, len: BB }), Err(RingError::Full));
        // Drain the rest and refill a full window.
        for t in tickets.drain(..) {
            ring.wait(t).expect("completion");
        }
        for i in 0..4u64 {
            tickets.push(
                ring.submit(7 + i, Op::Read { offset: i * BB, len: BB }).expect("refill"),
            );
        }
        let done = ring.drain();
        assert_eq!(done.len(), 4, "drain harvests the refilled window");
        let st = ring.stats();
        assert_eq!(st.rejected_full, 2);
        assert_eq!(st.submitted, 9);
        assert_eq!(st.completed, 9);
    });
}

/// 8 submitter threads, each owning a private block range, pump writes
/// through the ring with a 4-deep in-flight window per thread, then
/// verify through the ring; after shutdown every block holds its owner's
/// last stamp and the stats ledger adds up — no lost updates, no
/// double-counts.
#[test]
fn eight_submitters_disjoint_blocks_no_lost_updates() {
    const BLOCKS_PER_THREAD: u64 = 16;
    const ROUNDS: u64 = 3;
    const WINDOW: u64 = 4;
    let s = store(4);
    let clock = AtomicU64::new(0);
    Ring::serve(&s, RingConfig { depth: 64, shards: 4 }, |ring| {
        std::thread::scope(|sc| {
            for t in 0..THREADS {
                let (ring, clock) = (&*ring, &clock);
                sc.spawn(move || {
                    let base = t as u64 * BLOCKS_PER_THREAD;
                    for round in 0..ROUNDS {
                        // Window of WINDOW distinct blocks in flight at
                        // once (never two in-flight ops on one block).
                        for chunk in 0..BLOCKS_PER_THREAD / WINDOW {
                            let lo = base + chunk * WINDOW;
                            let tickets: Vec<_> = (lo..lo + WINDOW)
                                .map(|b| {
                                    let now =
                                        clock.fetch_add(1, Ordering::Relaxed) * 1_000_000;
                                    ring.submit(
                                        now,
                                        Op::Write { offset: b * BB, data: stamp(t, b, round) },
                                    )
                                    .expect("depth 64 never fills at window 4")
                                })
                                .collect();
                            for ticket in tickets {
                                match ring.wait(ticket).expect("write completion") {
                                    OpOutput::Writes(_) => {}
                                    other => panic!("write completed as {}", other.kind()),
                                }
                            }
                        }
                        // Read the whole range back through the ring.
                        for b in base..base + BLOCKS_PER_THREAD {
                            let now = clock.fetch_add(1, Ordering::Relaxed) * 1_000_000;
                            let ticket = ring
                                .submit(now, Op::Read { offset: b * BB, len: BB })
                                .expect("read submit");
                            let expect = stamp(t, b, round);
                            match ring.wait(ticket).expect("read completion") {
                                OpOutput::Read { len, checksum } => {
                                    assert_eq!(len, BB);
                                    assert_eq!(
                                        checksum,
                                        edc_compress::checksum64(&expect, BB),
                                        "thread {t} lost its round-{round} write to block {b}"
                                    );
                                }
                                other => panic!("read completed as {}", other.kind()),
                            }
                        }
                    }
                });
            }
        });
        let st = ring.stats();
        assert_eq!(st.submitted, st.completed, "everything submitted completed");
        assert_eq!(st.rejected_full, 0);
    });
    // Blocking read-back after shutdown: the ring's effects are ordinary
    // store state.
    let now = clock.load(Ordering::Relaxed) * 1_000_000 + 1;
    s.flush_all(now).expect("flush");
    for t in 0..THREADS {
        let base = t as u64 * BLOCKS_PER_THREAD;
        for b in 0..BLOCKS_PER_THREAD {
            let got = s.read(now + 1, (base + b) * BB, BB).expect("final read");
            assert_eq!(got, stamp(t, base + b, ROUNDS - 1));
        }
    }
    let stats = s.stats();
    let expected = THREADS as u64 * BLOCKS_PER_THREAD * ROUNDS * BB;
    assert_eq!(stats.logical_written, expected, "stats ledger must match the client ledger");
    assert_eq!(stats.mapped_blocks, THREADS as u64 * BLOCKS_PER_THREAD);
}
