//! Property tests over the record/replay subsystem, on the in-tree
//! harness (`edc_datagen::proptest`):
//!
//! 1. A random op schedule — writes, reads, flushes, scrubs,
//!    recompression passes, hints, fault plans, power cuts and
//!    recoveries — recorded through a [`Recorder`] replays bit-exactly
//!    from the saved `.edcrr` bytes, at 1 shard and at 8 shards, with
//!    and without injected faults.
//! 2. The replayed store ends in *exactly* the recorded store's state:
//!    identical [`PipelineStats`] and identical contents for every
//!    offset the schedule touched.
//! 3. Truncating a log anywhere inside a record is detected as a torn
//!    tail (never a panic), and the intact prefix still replays clean.

use edc_core::pipeline::PipelineStats;
use edc_core::store::{Op, Store};
use edc_core::{parse_edcrr, FileTypeHint, ManualClock, Recorder, Replayer, StoreSpec};
use edc_datagen::proptest::cases;
use edc_datagen::rng::Rng64;
use edc_flash::FaultPlan;

const BB: u64 = 4096;
/// Ranks are spaced 3 blocks apart so neighbouring runs never merge.
const RANKS: u64 = 12;

fn rank_offset(rank: u64) -> u64 {
    rank * 3 * BB
}

/// A 1–2 block payload: compressible (small alphabet) or incompressible.
fn gen_data(rng: &mut Rng64) -> Vec<u8> {
    let blocks = rng.range_u64(1, 3);
    let mut b = vec![0u8; (blocks * BB) as usize];
    if rng.chance(0.7) {
        for byte in &mut b {
            *byte = b'a' + rng.below(5) as u8;
        }
    } else {
        rng.fill_bytes(&mut b);
    }
    b
}

/// A random fault plan: mostly benign rates, occasionally a power cut
/// armed at a small program index.
fn gen_fault_plan(rng: &mut Rng64) -> FaultPlan {
    FaultPlan {
        seed: rng.next_u64(),
        read_error_rate: if rng.chance(0.5) { 0.05 } else { 0.0 },
        bit_rot_rate: if rng.chance(0.3) { 0.02 } else { 0.0 },
        read_retries: rng.below(3) as u32,
        power_cut_after_programs: rng.chance(0.3).then(|| rng.range_u64(1, 40)),
        ..FaultPlan::none()
    }
}

/// A random op schedule over the rank set. Power cuts are followed by a
/// recovery so later ops run against a powered store; every schedule
/// ends with a flush, a full read-back sweep and a stats snapshot, so
/// the recorded log pins the final state of every touched offset.
fn gen_schedule(rng: &mut Rng64, shards: u32) -> Vec<Op> {
    let n = rng.range_u64(15, 40);
    let mut ops: Vec<Op> = Vec::new();
    if rng.chance(0.5) {
        ops.push(Op::SetHint {
            offset: 0,
            len: RANKS * 3 * BB,
            hint: if rng.chance(0.5) { FileTypeHint::Text } else { FileTypeHint::Database },
        });
    }
    if rng.chance(0.5) {
        ops.push(Op::SetFaultPlan(gen_fault_plan(rng)));
    }
    for _ in 0..n {
        let roll = rng.below(100);
        let op = match roll {
            0..=39 => Op::Write { offset: rank_offset(rng.below(RANKS)), data: gen_data(rng) },
            40..=49 => Op::WriteBatch {
                writes: (0..rng.range_u64(1, 4))
                    .map(|_| (rank_offset(rng.below(RANKS)), gen_data(rng)))
                    .collect(),
            },
            50..=64 => Op::Read {
                offset: rank_offset(rng.below(RANKS)),
                len: rng.range_u64(1, 3) * BB,
            },
            65..=74 => Op::Flush,
            75..=79 => Op::Stats,
            80..=84 => Op::Scrub,
            85..=88 => Op::Verify,
            89..=92 => Op::RecompressPass {
                target: edc_compress::CodecId::Deflate,
                max_rewrites: rng.range_u64(1, 16),
            },
            93..=95 => Op::SetFaultPlan(gen_fault_plan(rng)),
            96..=97 => Op::TruncateJournal {
                shard: rng.below(u64::from(shards.max(1))) as u32,
                bytes: rng.range_u64(0, 128),
            },
            _ => Op::PowerCut,
        };
        let cut = matches!(op, Op::PowerCut);
        ops.push(op);
        if cut {
            ops.push(Op::Recover);
        }
    }
    ops.push(Op::Flush);
    for rank in 0..RANKS {
        ops.push(Op::Read { offset: rank_offset(rank), len: 2 * BB });
    }
    ops.push(Op::Stats);
    ops
}

/// Record the schedule against a fresh store built from `spec`; returns
/// the log bytes, the live store and its final stats.
fn record(spec: &StoreSpec, ops: &[Op]) -> (Vec<u8>, Box<dyn Store>, PipelineStats) {
    let mut store = spec.build();
    let mut rec = Recorder::new(*spec);
    let mut clock = ManualClock::new(0, 2_000_000);
    for op in ops {
        rec.apply(store.as_mut(), &mut clock, op);
    }
    let stats = store.stats();
    (rec.into_bytes(), store, stats)
}

/// The core property at one shard count.
fn check_round_trip(rng: &mut Rng64, shards: u32) {
    let spec = StoreSpec {
        capacity_bytes: 16 << 20,
        shards,
        extent_blocks: 8,
        workers: 1 + rng.below(2) as u32,
        cache_runs: if rng.chance(0.7) { 16 } else { 0 },
        parity: rng.chance(0.5),
        fault: if rng.chance(0.3) { gen_fault_plan(rng) } else { FaultPlan::none() },
        ..StoreSpec::default()
    };
    let ops = gen_schedule(rng, shards);
    let (bytes, mut original, original_stats) = record(&spec, &ops);

    // 1. The saved log replays bit-exactly against a fresh store.
    let log = parse_edcrr(&bytes).expect("recorded log parses");
    assert!(!log.torn_tail, "recorder produced a torn log");
    let mut fresh = log.spec.build();
    let report = Replayer::replay_against(fresh.as_mut(), &log);
    assert!(
        report.is_exact(),
        "replay diverged ({} of {} ops): {:?}",
        report.divergences.len(),
        report.ops,
        report.divergences.first()
    );

    // 2. The replayed store ends in the recorded store's exact state:
    // same aggregate stats, same contents at every touched offset.
    assert_eq!(fresh.stats(), original_stats, "replayed stats differ");
    for rank in 0..RANKS {
        let now = u64::MAX / 2;
        let a = original.read(now, rank_offset(rank), 2 * BB).map_err(|e| e.to_string());
        let b = fresh.read(now, rank_offset(rank), 2 * BB).map_err(|e| e.to_string());
        assert_eq!(a, b, "rank {rank} contents differ after replay");
    }
}

#[test]
fn record_replay_round_trips_one_shard() {
    cases(24).run("record/replay, plain pipeline", |rng| check_round_trip(rng, 0));
}

#[test]
fn record_replay_round_trips_eight_shards() {
    cases(16).run("record/replay, 8 shards", |rng| check_round_trip(rng, 8));
}

#[test]
fn truncated_logs_are_torn_never_panic() {
    cases(16).run("torn-tail detection", |rng| {
        let spec = StoreSpec { capacity_bytes: 16 << 20, shards: 0, ..StoreSpec::default() };
        let ops = gen_schedule(rng, 0);
        let (bytes, _, _) = record(&spec, &ops);
        // Cut anywhere strictly inside the record stream.
        let header = edc_core::record::SPEC_BYTES + 16;
        let cut_at = header + rng.below((bytes.len() - header) as u64) as usize;
        match parse_edcrr(&bytes[..cut_at]) {
            Ok(log) => {
                assert!(log.torn_tail, "truncated log parsed as complete");
                // The intact prefix still replays clean (divergence-free;
                // the report itself flags the tear).
                let report = Replayer::replay(&bytes[..cut_at]).expect("prefix replays");
                assert!(report.divergences.is_empty(), "intact prefix diverged");
                assert!(report.torn_tail);
            }
            // Cutting inside the header itself is a hard parse error.
            Err(_) => assert!(cut_at < edc_core::record::SPEC_BYTES + 16),
        }
    });
}
