//! Concurrency smoke test for the sharded front-end: real `std::thread`
//! clients driving one [`ShardedPipeline`] through its `&self` entry
//! points.
//!
//! Phase 1 (disjoint): every thread owns a private block range; after the
//! join each block must hold exactly what its owner wrote last, and the
//! aggregated stats must add up to the client-side ledger.
//!
//! Phase 2 (overlapping): all threads hammer the same small range; block
//! writes are atomic under the shard lock, so every block must read back
//! as exactly *one* thread's complete 4 KiB pattern — a mixed-provenance
//! block would be a torn write.

use edc_core::pipeline::PipelineConfig;
use edc_core::shard::{ShardConfig, ShardedPipeline};
use std::sync::atomic::{AtomicU64, Ordering};

const BB: u64 = 4096;
const THREADS: usize = 8;

/// A full 4 KiB block stamped with `(thread, block, round)` in every
/// 64-byte lane, so provenance is checkable at any byte.
fn stamp(thread: usize, block: u64, round: u64) -> Vec<u8> {
    format!("t{thread:02} b{block:04} r{round:04} concurrency smoke payload lane ")
        .into_bytes()
        .into_iter()
        .cycle()
        .take(BB as usize)
        .collect()
}

fn store(shards: usize) -> ShardedPipeline {
    ShardedPipeline::new(
        shards as u64 * 4 * 1024 * 1024,
        ShardConfig { shards, extent_blocks: 2, pipeline: PipelineConfig::default() },
    )
}

#[test]
fn disjoint_ranges_no_lost_updates_and_stats_add_up() {
    const BLOCKS_PER_THREAD: u64 = 16;
    const ROUNDS: u64 = 3;
    let s = store(4);
    let clock = AtomicU64::new(0);
    std::thread::scope(|sc| {
        for t in 0..THREADS {
            let (s, clock) = (&s, &clock);
            sc.spawn(move || {
                let base = t as u64 * BLOCKS_PER_THREAD;
                for round in 0..ROUNDS {
                    for b in 0..BLOCKS_PER_THREAD {
                        let now = clock.fetch_add(1, Ordering::Relaxed) * 1_000_000;
                        s.write(now, (base + b) * BB, &stamp(t, base + b, round))
                            .expect("disjoint write");
                    }
                    // Interleave reads with other threads' writes: a
                    // thread's own range must always reflect its own last
                    // write, no matter what the rest of the fleet does.
                    for b in 0..BLOCKS_PER_THREAD {
                        let now = clock.fetch_add(1, Ordering::Relaxed) * 1_000_000;
                        let got = s.read(now, (base + b) * BB, BB).expect("disjoint read");
                        assert_eq!(
                            got,
                            stamp(t, base + b, round),
                            "thread {t} lost its round-{round} write to block {}",
                            base + b
                        );
                    }
                }
            });
        }
    });
    let now = clock.load(Ordering::Relaxed) * 1_000_000;
    s.flush_all(now).expect("flush");
    for t in 0..THREADS {
        let base = t as u64 * BLOCKS_PER_THREAD;
        for b in 0..BLOCKS_PER_THREAD {
            let got = s.read(now + 1, (base + b) * BB, BB).expect("final read");
            assert_eq!(got, stamp(t, base + b, ROUNDS - 1));
        }
    }
    // The aggregated stats must equal the client-side ledger exactly: no
    // write was lost, none double-counted.
    let stats = s.stats();
    let expected = THREADS as u64 * BLOCKS_PER_THREAD * ROUNDS * BB;
    assert_eq!(stats.logical_written, expected, "aggregated logical_written");
    assert_eq!(stats.mapped_blocks, THREADS as u64 * BLOCKS_PER_THREAD);
    let per_shard: u64 = (0..s.shard_count())
        .map(|i| s.with_shard(i, |p| p.stats().logical_written))
        .sum();
    assert_eq!(per_shard, expected, "per-shard counters must sum to the aggregate");
    assert!(stats.journal_records > 0);
}

#[test]
fn overlapping_range_blocks_are_never_torn() {
    const HOT_BLOCKS: u64 = 6;
    const ROUNDS: u64 = 8;
    let s = store(3);
    let clock = AtomicU64::new(0);
    std::thread::scope(|sc| {
        for t in 0..THREADS {
            let (s, clock) = (&s, &clock);
            sc.spawn(move || {
                for round in 0..ROUNDS {
                    for b in 0..HOT_BLOCKS {
                        let now = clock.fetch_add(1, Ordering::Relaxed) * 1_000_000;
                        s.write(now, b * BB, &stamp(t, b, round)).expect("hot write");
                        // Concurrent reads must always see *some* thread's
                        // complete pattern, never a mix.
                        let now = clock.fetch_add(1, Ordering::Relaxed) * 1_000_000;
                        let got = s.read(now, b * BB, BB).expect("hot read");
                        assert!(
                            is_whole_stamp(&got, b),
                            "mid-run read of hot block {b} returned a torn mix"
                        );
                    }
                }
            });
        }
    });
    let now = clock.load(Ordering::Relaxed) * 1_000_000;
    s.flush_all(now).expect("flush");
    for b in 0..HOT_BLOCKS {
        let got = s.read(now + 1, b * BB, BB).expect("final hot read");
        assert!(
            is_whole_stamp(&got, b),
            "hot block {b} settled as a torn mix of two writers"
        );
    }
}

/// `data` equals one single `(thread, round)` stamp of `block`, in full.
fn is_whole_stamp(data: &[u8], block: u64) -> bool {
    (0..THREADS).any(|t| {
        (0..8u64).any(|round| data == stamp(t, block, round).as_slice())
    })
}
