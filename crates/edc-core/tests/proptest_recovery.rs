//! Property tests over the fault-injection + crash-recovery subsystem,
//! on the in-tree harness (`edc_datagen::proptest`):
//!
//! 1. A power cut at *any* page-program index loses no journaled run —
//!    `recover()` restores exactly the committed state, and the store is
//!    writable again afterwards.
//! 2. Arbitrary read-fault plans (transient read errors, bit rot, tiny
//!    retry budgets) surface as typed `ReadError`s and never panic.

use edc_core::error::{EdcError, WriteError};
use edc_core::pipeline::{EdcPipeline, PipelineConfig, WriteResult};
use edc_datagen::proptest::cases;
use edc_datagen::rng::Rng64;
use edc_flash::FaultPlan;
use std::collections::HashMap;

const BB: u64 = 4096;

/// A 4 KiB block: compressible (small alphabet) or incompressible
/// (arbitrary bytes), so runs exercise both codec and write-through paths.
fn gen_block(rng: &mut Rng64) -> Vec<u8> {
    let mut b = vec![0u8; BB as usize];
    if rng.chance(0.7) {
        for byte in &mut b {
            *byte = b'a' + rng.below(6) as u8;
        }
    } else {
        rng.fill_bytes(&mut b);
    }
    b
}

/// Rounds of (block_index, payload) writes. Each block is written at most
/// once per round, and every round ends in `flush_all`, so the model below
/// never races a buffered rewrite.
fn gen_workload(rng: &mut Rng64) -> Vec<Vec<(u64, Vec<u8>)>> {
    let n = rng.range_u64(4, 12);
    let stride = rng.range_u64(1, 4);
    let round1: Vec<(u64, Vec<u8>)> = (0..n).map(|i| (i * stride, gen_block(rng))).collect();
    // Round 2 rewrites a random subset with fresh payloads.
    let mut round2 = Vec::new();
    for i in 0..n {
        if rng.chance(0.5) {
            round2.push((i * stride, gen_block(rng)));
        }
    }
    vec![round1, round2]
}

/// Record a committed run in the model: every block it covers is durable
/// with the value most recently written to it.
fn commit(
    committed: &mut HashMap<u64, Vec<u8>>,
    latest: &HashMap<u64, Vec<u8>>,
    r: &WriteResult,
) {
    for b in r.start_block..r.start_block + u64::from(r.blocks) {
        if let Some(v) = latest.get(&b) {
            committed.insert(b, v.clone());
        }
    }
}

/// Drive the workload, maintaining the written/committed model. Stops at
/// the first typed error (the power cut, when one is armed).
fn drive(
    p: &mut EdcPipeline,
    workload: &[Vec<(u64, Vec<u8>)>],
    latest: &mut HashMap<u64, Vec<u8>>,
    committed: &mut HashMap<u64, Vec<u8>>,
) -> Result<(), EdcError> {
    let mut t = 0u64;
    for round in workload {
        for (block, data) in round {
            latest.insert(*block, data.clone());
            if let Some(r) = p.write(t, block * BB, data)? {
                commit(committed, latest, &r);
            }
            t += 1_000_000;
        }
        for r in p.flush_all(t)? {
            commit(committed, latest, &r);
        }
    }
    Ok(())
}

/// Power cut at an arbitrary program index: everything journaled reads
/// back exactly; un-journaled blocks are their prior committed value or
/// zeros; the store accepts writes again after `recover()`.
#[test]
fn power_cut_anywhere_recovers_every_journaled_run() {
    cases(24).run("power_cut_anywhere_recovers_every_journaled_run", |rng| {
        let workload = gen_workload(rng);

        // Clean run: learn the total page-program count for this workload.
        let mut clean = EdcPipeline::new(8 << 20, PipelineConfig::default());
        let (mut latest, mut committed) = (HashMap::new(), HashMap::new());
        drive(&mut clean, &workload, &mut latest, &mut committed).expect("clean run");
        let total_programs = clean.stats().programs;
        assert!(total_programs > 0, "workload must program pages");

        // Faulted run: cut at a random program index (possibly past the
        // end, i.e. no cut fires).
        let cut = rng.range_u64(0, total_programs + 2);
        let mut p = EdcPipeline::new(
            8 << 20,
            PipelineConfig {
                fault: FaultPlan {
                    power_cut_after_programs: Some(cut),
                    ..FaultPlan::none()
                },
                ..PipelineConfig::default()
            },
        );
        let (mut latest, mut committed) = (HashMap::new(), HashMap::new());
        match drive(&mut p, &workload, &mut latest, &mut committed) {
            Ok(()) => assert!(cut >= total_programs, "cut {cut} should have fired"),
            Err(EdcError::Write(WriteError::PowerCut { after_programs })) => {
                assert!(after_programs <= cut);
                let report = p.recover().expect("recover after cut");
                assert!(!report.torn_tail, "journal commits are atomic");
                assert_eq!(report.payload_mismatches, 0, "journaled runs lost payload");
            }
            Err(other) => panic!("unexpected error driving workload: {other:?}"),
        }

        // Every block we ever wrote must now read as: its committed value,
        // the latest written value (a run can commit inside the drain that
        // the cut aborted, after the model's last observed WriteResult),
        // or — if nothing for it was ever journaled — zeros.
        for (block, newest) in &latest {
            let got = p.read(u64::MAX / 2, block * BB, BB).expect("read after recover");
            let consistent = match committed.get(block) {
                Some(v) => got == *v || got == *newest,
                None => got.iter().all(|b| *b == 0) || got == *newest,
            };
            assert!(consistent, "block {block} recovered to an impossible value");
        }

        // The store must be fully writable again. (When the cut landed past
        // the workload's last program it is still armed — disarm it so the
        // usability check doesn't trip it.)
        p.set_fault_plan(FaultPlan::none());
        let fresh = gen_block(rng);
        p.write(u64::MAX / 2, 900 * BB, &fresh).expect("write after recover");
        p.flush_all(u64::MAX / 2).expect("flush after recover");
        assert_eq!(p.read(u64::MAX / 2, 900 * BB, BB).expect("read"), fresh);
    });
}

/// Random read-fault plans never panic: every read returns `Ok` bytes of
/// the right length or a typed `ReadError`.
#[test]
fn read_faults_never_panic_under_random_plans() {
    cases(24).run("read_faults_never_panic_under_random_plans", |rng| {
        let workload = gen_workload(rng);
        // cache_runs: 0 so every read touches the (faulty) device.
        let mut p = EdcPipeline::new(
            8 << 20,
            PipelineConfig { cache_runs: 0, ..PipelineConfig::default() },
        );
        let (mut latest, mut committed) = (HashMap::new(), HashMap::new());
        drive(&mut p, &workload, &mut latest, &mut committed).expect("clean write phase");

        p.set_fault_plan(FaultPlan {
            seed: rng.next_u64(),
            read_error_rate: rng.f64(),
            bit_rot_rate: rng.f64() * rng.f64(), // bias toward small rates
            read_retries: rng.below(3) as u32,
            allow_degraded_reads: rng.chance(0.3),
            ..FaultPlan::none()
        });

        let blocks: Vec<u64> = latest.keys().copied().collect();
        for i in 0..40u64 {
            let block = blocks[(i as usize * 7 + rng.below_usize(blocks.len())) % blocks.len()];
            match p.read(i, block * BB, BB) {
                Ok(data) => assert_eq!(data.len(), BB as usize),
                Err(e) => {
                    // Typed, descriptive, and non-panicking is the contract.
                    assert!(!format!("{e:?}").is_empty());
                }
            }
        }
    });
}
