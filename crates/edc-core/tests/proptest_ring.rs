//! Property tests for the async ring front-end.
//!
//! 1. **Ring ≡ blocking.** Under random schedules of single-extent
//!    writes and reads — with injected read faults and armed mid-drain
//!    power cuts, at 1 and 8 shards — every completion the ring posts is
//!    digest-identical to dispatching the same op through the blocking
//!    `Store` path on a control store, and after recovery the two
//!    stores' entire address spaces read back bit-identical. (Write
//!    outputs are only compared on cut-free schedules: a cut mid-way
//!    through a coalesced group fails the whole group, while the serial
//!    path fails ops individually — the *state* stays equivalent either
//!    way, which the final sweep checks.)
//!
//! 2. **Recorded ring replays bit-exactly.** A `Recorder` wrapped
//!    around the ring logs ops in drain order (per-op dispatch, no
//!    coalescing); the resulting `.edcrr` log — including a power cut
//!    firing mid-drain and the subsequent recovery — replays bit-exactly
//!    through the blocking `Store` path.

use edc_core::clock::Clock;
use edc_core::record::{Recorder, Replayer, StoreSpec};
use edc_core::ring::{Ring, RingConfig, RingError, Ticket};
use edc_core::shard::{ShardConfig, ShardedPipeline};
use edc_core::store::{Op, OpOutput, Store};
use edc_core::pipeline::PipelineConfig;
use edc_datagen::proptest::cases;
use edc_datagen::rng::Rng64;
use edc_flash::FaultPlan;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

const BB: u64 = 4096;
const SPACE_BLOCKS: u64 = 64;

/// A 4 KiB block, compressible or not.
fn gen_block(rng: &mut Rng64) -> Vec<u8> {
    let mut b = vec![0u8; BB as usize];
    if rng.chance(0.7) {
        for byte in &mut b {
            *byte = b'a' + rng.below(6) as u8;
        }
    } else {
        rng.fill_bytes(&mut b);
    }
    b
}

/// A random data-plane op whose footprint stays inside one extent, so
/// the ring accepts it (cross-extent ops are the caller's to split).
fn gen_ring_op(rng: &mut Rng64, extent_blocks: u64) -> Op {
    let extents = SPACE_BLOCKS / extent_blocks.min(SPACE_BLOCKS);
    let extent = rng.below(extents.max(1));
    let within = rng.below(extent_blocks);
    let max_blocks = extent_blocks - within;
    let blocks = rng.range_u64(1, max_blocks + 1);
    let block = extent * extent_blocks + within;
    let offset = block * BB;
    if rng.chance(0.65) {
        let data: Vec<u8> = (0..blocks).flat_map(|_| gen_block(rng)).collect();
        Op::Write { offset, data }
    } else {
        Op::Read { offset, len: blocks * BB }
    }
}

fn gen_plan(rng: &mut Rng64) -> FaultPlan {
    FaultPlan {
        seed: rng.next_u64(),
        read_error_rate: if rng.chance(0.4) { 0.15 } else { 0.0 },
        power_cut_after_programs: if rng.chance(0.5) {
            Some(rng.range_u64(1, 60))
        } else {
            None
        },
        ..FaultPlan::none()
    }
}

#[test]
fn ring_reads_bit_identical_to_blocking_under_faults_and_cuts() {
    cases(18).run("ring == blocking under faults and power cuts", |rng| {
        let shards = if rng.chance(0.5) { 1 } else { 8 };
        let extent_blocks = rng.range_u64(1, 9);
        let depth = rng.range_usize(2, 17);
        let mut pc = PipelineConfig::default();
        pc.dedup.enabled = rng.chance(0.3);
        let cfg = ShardConfig { shards, extent_blocks, pipeline: pc };
        let capacity = shards as u64 * 4 * 1024 * 1024;
        let mut ring_store = ShardedPipeline::new(capacity, cfg.clone());
        let mut ctrl = ShardedPipeline::new(capacity, cfg);
        let plan = gen_plan(rng);
        let cut_armed = plan.power_cut_after_programs.is_some();
        ring_store.set_fault_plan(plan);
        ctrl.set_fault_plan(plan);

        let n_ops = rng.range_usize(20, 61);
        let schedule: Vec<Op> = (0..n_ops).map(|_| gen_ring_op(rng, extent_blocks)).collect();
        let mut now = 0u64;

        Ring::serve(&ring_store, RingConfig { depth, shards }, |ring| {
            // ticket → (expected digest from the blocking control store,
            // whether the op was a read).
            let mut expected: HashMap<Ticket, (u64, bool)> = HashMap::new();
            let mut outstanding: VecDeque<Ticket> = VecDeque::new();
            let verify = |t: Ticket,
                          out: &OpOutput,
                          expected: &mut HashMap<Ticket, (u64, bool)>| {
                let (want, is_read) = expected.remove(&t).expect("unknown ticket completed");
                if is_read || !cut_armed {
                    assert_eq!(
                        out.digest(),
                        want,
                        "shard {} seq {} diverged from the blocking path \
                         ({shards} shards, extent {extent_blocks}, depth {depth})",
                        t.shard(),
                        t.seq()
                    );
                }
            };
            for op in &schedule {
                now += 500_000;
                let is_read = matches!(op, Op::Read { .. });
                let want = ctrl.dispatch(now, op).digest();
                loop {
                    match ring.submit(now, op.clone()) {
                        Ok(t) => {
                            expected.insert(t, (want, is_read));
                            outstanding.push_back(t);
                            break;
                        }
                        Err(RingError::Full) => {
                            let t = outstanding.pop_front().expect("full ring has tickets");
                            let out = ring.wait(t).expect("completion");
                            verify(t, &out, &mut expected);
                        }
                        Err(e) => panic!("submit refused a valid single-extent op: {e}"),
                    }
                }
                // Opportunistic harvesting keeps the window honest.
                if rng.chance(0.3) {
                    if let Some((t, out)) = ring.try_reap() {
                        outstanding.retain(|o| *o != t);
                        verify(t, &out, &mut expected);
                    }
                }
            }
            while let Some(t) = outstanding.pop_front() {
                let out = ring.wait(t).expect("completion");
                verify(t, &out, &mut expected);
            }
            assert!(expected.is_empty(), "every submission must complete");
        });

        // The two stores must agree on power state; recover both and
        // sweep the whole space — bit-identical bytes, or the identical
        // typed error under the shared fault stream.
        now += 500_000;
        assert_eq!(ring_store.powered(), ctrl.powered(), "power state diverged");
        let a = Store::dispatch(&mut ring_store, now, &Op::Recover);
        let b = ctrl.dispatch(now, &Op::Recover);
        assert_eq!(a.digest(), b.digest(), "recovery reports diverged");
        now += 500_000;
        let sweep = Op::Read { offset: 0, len: SPACE_BLOCKS * BB };
        let a = Store::dispatch(&mut ring_store, now, &sweep);
        let b = ctrl.dispatch(now, &sweep);
        assert_eq!(
            a.digest(),
            b.digest(),
            "final sweep diverged ({shards} shards, extent {extent_blocks}, depth {depth}, \
             cut {cut_armed})"
        );
    });
}

/// Monotonic shared clock: the ring driver and the blocking record
/// phases draw from the same stream, so timestamps in the log are
/// consistent no matter which side drew them.
struct SharedClock<'a>(&'a AtomicU64);

impl Clock for SharedClock<'_> {
    fn now_ns(&mut self) -> u64 {
        self.0.fetch_add(500_000, Ordering::Relaxed) + 500_000
    }
}

#[test]
fn recorded_ring_replays_bit_exact_including_mid_drain_power_cut() {
    cases(12).run("recorded ring replays bit-exactly", |rng| {
        let shards = if rng.chance(0.5) { 1u32 } else { 8 };
        let extent_blocks = rng.range_u64(1, 9);
        let depth = rng.range_usize(2, 17);
        let spec = StoreSpec {
            capacity_bytes: 32 << 20,
            shards,
            extent_blocks,
            workers: rng.range_usize(1, 3) as u32,
            dedup: rng.chance(0.3),
            ..StoreSpec::default()
        };
        let mut store = ShardedPipeline::new(
            spec.capacity_bytes,
            ShardConfig {
                shards: shards as usize,
                extent_blocks,
                pipeline: spec.pipeline_config(),
            },
        );
        let time = AtomicU64::new(0);
        let mut clock = SharedClock(&time);
        let mut rec = Recorder::new(spec);
        // Arm a power cut that fires mid-drain, through the recorded
        // surface so replay arms the identical plan.
        let plan = FaultPlan {
            seed: rng.next_u64(),
            read_error_rate: if rng.chance(0.3) { 0.1 } else { 0.0 },
            power_cut_after_programs: Some(rng.range_u64(1, 40)),
            ..FaultPlan::none()
        };
        rec.apply(&mut store, &mut clock, &Op::SetFaultPlan(plan));

        let n_ops = rng.range_usize(20, 61);
        let schedule: Vec<Op> =
            (0..n_ops).map(|_| gen_ring_op(rng, extent_blocks)).collect();
        let rec_cell = std::sync::Mutex::new(rec);
        Ring::serve_recorded(
            &store,
            RingConfig { depth, shards: shards as usize },
            &rec_cell,
            |ring| {
                let mut outstanding: VecDeque<Ticket> = VecDeque::new();
                for op in &schedule {
                    let now = time.fetch_add(500_000, Ordering::Relaxed) + 500_000;
                    loop {
                        match ring.submit(now, op.clone()) {
                            Ok(t) => {
                                outstanding.push_back(t);
                                break;
                            }
                            Err(RingError::Full) => {
                                let t = outstanding.pop_front().expect("tickets exist");
                                ring.wait(t).expect("completion");
                            }
                            Err(e) => panic!("submit refused a valid op: {e}"),
                        }
                    }
                }
                ring.drain();
            },
        );
        let mut rec = rec_cell.into_inner().expect("recorder intact");

        // Blocking epilogue, recorded through the same log: recover the
        // cut store, sweep the space, snapshot the counters.
        rec.apply(&mut store, &mut clock, &Op::Recover);
        rec.apply(&mut store, &mut clock, &Op::Read { offset: 0, len: SPACE_BLOCKS * BB });
        rec.apply(&mut store, &mut clock, &Op::Stats);

        let report = Replayer::replay(rec.bytes()).expect("log parses");
        assert!(
            report.is_exact(),
            "replay diverged ({shards} shards, extent {extent_blocks}, depth {depth}): \
             {:?}",
            report.divergences.first()
        );
    });
}
