//! Property test: a [`ShardedPipeline`] with *any* shard count and extent
//! size is observationally identical to a single serial [`EdcPipeline`]
//! over randomized interleaved schedules of writes, reads, flushes and
//! power-cut/recover cycles — every read returns bit-identical bytes.
//!
//! The cut point in the schedule flushes both stores first, so the
//! journaled state is complete on both sides and equality is exact (a
//! mid-flight cut may legitimately lose *buffered* data differently per
//! shard; that nondeterministic case is covered by the shard-level unit
//! tests and the fault campaign).

use edc_core::pipeline::{EdcPipeline, PipelineConfig};
use edc_core::shard::{ShardConfig, ShardedPipeline};
use edc_datagen::proptest::cases;
use edc_datagen::rng::Rng64;

const BB: u64 = 4096;
/// Logical blocks the schedules address.
const SPACE_BLOCKS: u64 = 64;

/// A 4 KiB block: compressible (small alphabet) or incompressible
/// (arbitrary bytes), so schedules exercise codec and write-through paths.
fn gen_block(rng: &mut Rng64) -> Vec<u8> {
    let mut b = vec![0u8; BB as usize];
    if rng.chance(0.7) {
        for byte in &mut b {
            *byte = b'a' + rng.below(6) as u8;
        }
    } else {
        rng.fill_bytes(&mut b);
    }
    b
}

#[derive(Debug)]
enum Op {
    /// Write `data` at `block`.
    Write { block: u64, data: Vec<u8> },
    /// Read `blocks` blocks at `block` and compare both stores' bytes.
    Read { block: u64, blocks: u64 },
    /// Flush both stores.
    Flush,
    /// Flush both stores, then recover both from their journals (the
    /// deterministic power-cut point: everything journaled, nothing
    /// buffered).
    CutAndRecover,
}

fn gen_schedule(rng: &mut Rng64) -> Vec<Op> {
    let n = rng.range_usize(12, 40);
    (0..n)
        .map(|_| match rng.below(8) {
            0..=3 => {
                let blocks = rng.range_u64(1, 5);
                let block = rng.below(SPACE_BLOCKS - blocks + 1);
                let data: Vec<u8> =
                    (0..blocks).flat_map(|_| gen_block(rng)).collect();
                Op::Write { block, data }
            }
            4 | 5 => {
                let blocks = rng.range_u64(1, 9);
                Op::Read { block: rng.below(SPACE_BLOCKS - blocks + 1), blocks }
            }
            6 => Op::Flush,
            _ => Op::CutAndRecover,
        })
        .collect()
}

#[test]
fn sharded_reads_bit_identical_to_serial() {
    cases(24).run("sharded == serial under interleaved schedules", |rng| {
        let shards = rng.range_usize(1, 9);
        let extent_blocks = rng.range_u64(1, 9);
        let sharded = ShardedPipeline::new(
            shards as u64 * 4 * 1024 * 1024,
            ShardConfig { shards, extent_blocks, pipeline: PipelineConfig::default() },
        );
        let mut serial = EdcPipeline::new(4 * 1024 * 1024, PipelineConfig::default());
        let mut now = 0u64;
        for op in gen_schedule(rng) {
            now += rng.range_u64(10_000, 2_000_000);
            match op {
                Op::Write { block, data } => {
                    sharded.write(now, block * BB, &data).expect("sharded write");
                    serial.write(now, block * BB, &data).expect("serial write");
                }
                Op::Read { block, blocks } => {
                    let a = sharded.read(now, block * BB, blocks * BB).expect("sharded read");
                    let b = serial.read(now, block * BB, blocks * BB).expect("serial read");
                    assert_eq!(
                        a, b,
                        "read of blocks [{block}, {}) diverged with {shards} shard(s), \
                         extent {extent_blocks}",
                        block + blocks
                    );
                }
                Op::Flush => {
                    sharded.flush_all(now).expect("sharded flush");
                    serial.flush_all(now).expect("serial flush");
                }
                Op::CutAndRecover => {
                    sharded.flush_all(now).expect("sharded flush");
                    serial.flush_all(now).expect("serial flush");
                    let r = sharded.recover().expect("sharded recover");
                    serial.recover().expect("serial recover");
                    assert_eq!(r.payload_mismatches, 0);
                }
            }
        }
        // Final sweep: the entire address space must agree byte for byte.
        now += 1;
        sharded.flush_all(now).expect("sharded flush");
        serial.flush_all(now).expect("serial flush");
        let a = sharded.read(now, 0, SPACE_BLOCKS * BB).expect("sharded sweep");
        let b = serial.read(now, 0, SPACE_BLOCKS * BB).expect("serial sweep");
        assert_eq!(a, b, "final sweep diverged with {shards} shard(s), extent {extent_blocks}");
    });
}
