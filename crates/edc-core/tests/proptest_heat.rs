//! Property test: background recompression is observationally invisible.
//!
//! Two heat-enabled [`ShardedPipeline`]s replay the same randomized
//! schedule of writes, reads, flushes, overwrite churn (GC pressure),
//! idle gaps and power-cut/recover cycles; one additionally runs
//! budget-bounded [`ShardedPipeline::recompress`] passes wherever the
//! schedule says so, the other never does. Every read — and a final
//! whole-space sweep — must return bit-identical bytes: re-encoding cold
//! runs and demoting incompressible ones may change the physical layout,
//! never the logical contents.
//!
//! Run at 1 shard and at 8 shards, per the tentpole's sharded-safety
//! requirement. Cut points flush both stores first (the deterministic
//! power-cut pattern shared with `proptest_sharded`); cuts *inside* a
//! recompression pass are swept exhaustively by the pipeline unit tests
//! and the `bench-heat` campaign.

use edc_compress::CodecId;
use edc_core::pipeline::PipelineConfig;
use edc_core::shard::{ShardConfig, ShardedPipeline};
use edc_core::HeatConfig;
use edc_datagen::proptest::cases;
use edc_datagen::rng::Rng64;

const BB: u64 = 4096;
/// Logical blocks the schedules address.
const SPACE_BLOCKS: u64 = 64;
/// Heat half-life; idle gaps jump several of these so runs genuinely
/// cool and the recompressing arm has real work to do.
const HALF_LIFE_NS: u64 = 1_000_000_000;

/// A 4 KiB block: compressible (small alphabet) or incompressible
/// (arbitrary bytes), so recompression sees both gainful runs and
/// demotion candidates.
fn gen_block(rng: &mut Rng64) -> Vec<u8> {
    let mut b = vec![0u8; BB as usize];
    if rng.chance(0.7) {
        for byte in &mut b {
            *byte = b'a' + rng.below(6) as u8;
        }
    } else {
        rng.fill_bytes(&mut b);
    }
    b
}

#[derive(Debug)]
enum Op {
    /// Write `data` at `block` on both arms.
    Write { block: u64, data: Vec<u8> },
    /// Read `blocks` blocks at `block` and compare the arms' bytes.
    Read { block: u64, blocks: u64 },
    /// Overwrite churn: hammer one narrow range several times — the
    /// overwrite pressure that forces run supersession and space reuse.
    Churn { block: u64, versions: Vec<Vec<u8>> },
    /// Flush both arms.
    Flush,
    /// Jump the clock several half-lives, then run a budget-bounded
    /// recompression pass on the recompressing arm only.
    IdleRecompress { gap_half_lives: u64, budget: usize },
    /// Flush both arms, then power-cut/recover both (heat state resets;
    /// contents must not change).
    CutAndRecover,
}

fn gen_schedule(rng: &mut Rng64) -> Vec<Op> {
    let n = rng.range_usize(16, 48);
    (0..n)
        .map(|_| match rng.below(10) {
            0..=3 => {
                let blocks = rng.range_u64(1, 5);
                let block = rng.below(SPACE_BLOCKS - blocks + 1);
                let data: Vec<u8> = (0..blocks).flat_map(|_| gen_block(rng)).collect();
                Op::Write { block, data }
            }
            4 | 5 => {
                let blocks = rng.range_u64(1, 9);
                Op::Read { block: rng.below(SPACE_BLOCKS - blocks + 1), blocks }
            }
            6 => {
                let block = rng.below(SPACE_BLOCKS - 1);
                let versions = (0..rng.range_usize(2, 5)).map(|_| gen_block(rng)).collect();
                Op::Churn { block, versions }
            }
            7 => Op::Flush,
            8 => Op::IdleRecompress {
                gap_half_lives: rng.range_u64(1, 6),
                budget: rng.range_usize(1, 12),
            },
            _ => Op::CutAndRecover,
        })
        .collect()
}

fn heat_config(extent_blocks: u64) -> PipelineConfig {
    PipelineConfig {
        heat: HeatConfig {
            enabled: true,
            extent_blocks,
            half_life_ns: HALF_LIFE_NS,
            ..HeatConfig::default()
        },
        ..PipelineConfig::default()
    }
}

fn run_property(shards: usize) {
    cases(16).run("recompression never changes read bytes", |rng| {
        let extent_blocks = rng.range_u64(1, 9);
        let mk = || {
            ShardedPipeline::new(
                shards as u64 * 4 * 1024 * 1024,
                ShardConfig { shards, extent_blocks, pipeline: heat_config(extent_blocks) },
            )
        };
        let recompressing = mk();
        let control = mk();
        let mut now = 0u64;
        for op in gen_schedule(rng) {
            now += rng.range_u64(10_000, 2_000_000);
            match op {
                Op::Write { block, data } => {
                    recompressing.write(now, block * BB, &data).expect("recompressing write");
                    control.write(now, block * BB, &data).expect("control write");
                }
                Op::Read { block, blocks } => {
                    let a =
                        recompressing.read(now, block * BB, blocks * BB).expect("recomp read");
                    let b = control.read(now, block * BB, blocks * BB).expect("control read");
                    assert_eq!(
                        a, b,
                        "read of blocks [{block}, {}) diverged with {shards} shard(s), \
                         extent {extent_blocks}",
                        block + blocks
                    );
                }
                Op::Churn { block, versions } => {
                    for data in &versions {
                        now += rng.range_u64(10_000, 500_000);
                        recompressing.write(now, block * BB, data).expect("churn write");
                        control.write(now, block * BB, data).expect("churn write");
                    }
                }
                Op::Flush => {
                    recompressing.flush_all(now).expect("recompressing flush");
                    control.flush_all(now).expect("control flush");
                }
                Op::IdleRecompress { gap_half_lives, budget } => {
                    recompressing.flush_all(now).expect("pre-pass flush");
                    control.flush_all(now).expect("pre-pass flush");
                    now += gap_half_lives * HALF_LIFE_NS;
                    recompressing
                        .recompress(now, CodecId::Deflate, budget)
                        .expect("recompress pass");
                }
                Op::CutAndRecover => {
                    recompressing.flush_all(now).expect("recompressing flush");
                    control.flush_all(now).expect("control flush");
                    let r = recompressing.recover().expect("recompressing recover");
                    control.recover().expect("control recover");
                    assert_eq!(r.payload_mismatches, 0, "recovery replayed corrupt payloads");
                }
            }
        }
        // Final sweep: the entire address space must agree byte for byte,
        // and both stores must audit clean.
        now += 1;
        recompressing.flush_all(now).expect("recompressing flush");
        control.flush_all(now).expect("control flush");
        let a = recompressing.read(now, 0, SPACE_BLOCKS * BB).expect("recompressing sweep");
        let b = control.read(now, 0, SPACE_BLOCKS * BB).expect("control sweep");
        assert_eq!(a, b, "final sweep diverged with {shards} shard(s), extent {extent_blocks}");
        let audit = recompressing.verify().expect("audit");
        assert_eq!(audit.unrecoverable, 0, "recompressed store failed its integrity audit");
    });
}

#[test]
fn recompression_invisible_at_one_shard() {
    run_property(1);
}

#[test]
fn recompression_invisible_at_eight_shards() {
    run_property(8);
}
