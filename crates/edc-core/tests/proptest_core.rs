//! Property tests over EDC's decision components: allocator bounds, SD
//! partitioning, monitor window behaviour, hint-registry consistency.
//! Runs on the in-tree harness (`edc_datagen::proptest`).

use edc_core::hints::{FileTypeHint, HintRegistry};
use edc_core::{
    AllocPolicy, QuantizedAllocator, SdConfig, SequentialityDetector, WorkloadMonitor,
};
use edc_datagen::proptest::{cases, vec_of};
use edc_trace::{OpType, Request};

/// Quantized placement always allocates at least the payload, never
/// more than the original, and lands on a 25 % quantum.
#[test]
fn quantized_placement_bounds() {
    cases(96).run("quantized_placement_bounds", |rng| {
        let blocks = rng.range_u64(1, 17);
        let comp = rng.range_u64(1, 70_000);
        let original = blocks * 4096;
        let comp = comp.min(original + 100); // include slightly-expanded case
        let a = QuantizedAllocator::new(AllocPolicy::Quantized);
        let p = a.quantum_for(original, comp);
        assert!(p.allocated_bytes <= original);
        if p.compressed {
            assert!(p.allocated_bytes >= comp);
            let quarter = original.div_ceil(4);
            assert_eq!(p.allocated_bytes % quarter, 0, "not on a quantum");
        } else {
            assert_eq!(p.allocated_bytes, original);
            assert!(comp > 3 * original.div_ceil(4), "write-through only above 75%");
        }
    });
}

/// Exact-fit never allocates more than quantized for the same input.
#[test]
fn exact_fit_never_exceeds_quantized() {
    cases(96).run("exact_fit_never_exceeds_quantized", |rng| {
        let blocks = rng.range_u64(1, 17);
        let comp = rng.range_u64(1, 70_000);
        let original = blocks * 4096;
        let comp = comp.min(original);
        let q = QuantizedAllocator::new(AllocPolicy::Quantized).quantum_for(original, comp);
        let e = QuantizedAllocator::new(AllocPolicy::ExactFit).quantum_for(original, comp);
        assert!(e.allocated_bytes <= q.allocated_bytes);
    });
}

/// The SD partitions writes: every submitted block appears in exactly
/// one flushed run, in order, with the right arrival count.
#[test]
fn sd_partitions_writes() {
    cases(96).run("sd_partitions_writes", |rng| {
        let ops = vec_of(rng, 1, 200, |r| (r.below(64), 1 + r.below(3) as u32));
        let cap = rng.range_u64(2, 32) as u32;
        let mut sd = SequentialityDetector::new(SdConfig {
            max_merge_blocks: cap,
            timeout_ns: u64::MAX,
        });
        let mut runs = Vec::new();
        let mut submitted_blocks = 0u64;
        let mut submitted_reqs = 0usize;
        for (i, (start, span)) in ops.iter().enumerate() {
            submitted_blocks += u64::from(*span);
            submitted_reqs += 1;
            if let Some(run) = sd.on_write(*start, *span, i as u64) {
                runs.push(run);
            }
        }
        if let Some(run) = sd.drain() {
            runs.push(run);
        }
        let total_blocks: u64 = runs.iter().map(|r| u64::from(r.blocks)).sum();
        let total_reqs: usize = runs.iter().map(|r| r.arrivals_ns.len()).sum();
        assert_eq!(total_blocks, submitted_blocks, "blocks lost or duplicated");
        assert_eq!(total_reqs, submitted_reqs, "requests lost or duplicated");
        for run in &runs {
            assert!(run.blocks <= cap + 3, "run exceeds cap by more than one request span");
            // Arrivals within a run are ordered.
            assert!(run.arrivals_ns.windows(2).all(|w| w[0] <= w[1]));
        }
    });
}

/// The monitor's reading is bounded by the page-units fed in, and
/// evicting the window empties it.
#[test]
fn monitor_window_bounds() {
    cases(96).run("monitor_window_bounds", |rng| {
        let reqs = vec_of(rng, 1, 100, |r| {
            (r.below(2_000_000_000), 1 + r.below(65_535) as u32)
        });
        let mut m = WorkloadMonitor::new(1_000_000_000);
        let mut sorted = reqs;
        sorted.sort_by_key(|&(t, _)| t);
        let mut total_pages = 0u64;
        let mut last_t = 0;
        for &(t, len) in &sorted {
            let r = Request { arrival_ns: t, op: OpType::Write, offset: 0, len };
            total_pages += u64::from(r.page_units());
            m.record(&r);
            last_t = t;
        }
        let now_reading = m.calculated_iops(last_t);
        assert!(now_reading <= total_pages as f64 + 1e-9);
        assert!(now_reading >= 0.0);
        // Far in the future the window must be empty.
        assert_eq!(m.calculated_iops(last_t + 10_000_000_000), 0.0);
    });
}

/// The hint registry agrees with a naive per-block model under
/// arbitrary overlapping registrations.
#[test]
fn hint_registry_matches_naive_model() {
    cases(96).run("hint_registry_matches_naive_model", |rng| {
        let sets = vec_of(rng, 1, 40, |r| {
            (r.below(200), 1 + r.below(49), r.below(4) as u8)
        });
        let hints = [
            FileTypeHint::Precompressed,
            FileTypeHint::Text,
            FileTypeHint::Database,
            FileTypeHint::VmImage,
        ];
        let mut registry = HintRegistry::new();
        let mut naive = vec![None; 260];
        for (start, blocks, h) in sets {
            let hint = hints[h as usize];
            registry.set(start, blocks, hint);
            for b in start..(start + blocks).min(260) {
                naive[b as usize] = Some(hint);
            }
        }
        for b in 0..260u64 {
            assert_eq!(registry.lookup(b), naive[b as usize], "block {b}");
        }
    });
}
