//! Property test for the slot store's central safety invariant: no two
//! live slots ever overlap in device space. (A violation of this is
//! exactly the aliasing bug the pipeline's checksums once caught — see
//! `SlotStore::release_block_ref`.)

use edc_core::SlotStore;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a run of (bytes, blocks).
    Alloc { size_class: u8, blocks: u8 },
    /// Drop one block reference from the i-th oldest live run.
    Release { pick: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 1u8..9).prop_map(|(size_class, blocks)| Op::Alloc { size_class, blocks }),
        (any::<u8>()).prop_map(|pick| Op::Release { pick }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn live_slots_never_overlap(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut store = SlotStore::new(64 << 20);
        // Live runs we still hold references to: (offset, bytes, refs_left).
        let mut live: Vec<(u64, u64, u32)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc { size_class, blocks } => {
                    let bytes = 1024u64 << size_class; // 1 KiB .. 32 KiB
                    let blocks = u32::from(blocks);
                    let off = store.alloc_run(bytes, blocks);
                    // Invariant: the new slot must not overlap any live slot.
                    for &(o, b, _) in &live {
                        prop_assert!(
                            off + bytes <= o || o + b <= off,
                            "slot [{off}, {}) overlaps live [{o}, {})",
                            off + bytes,
                            o + b
                        );
                    }
                    live.push((off, bytes, blocks));
                }
                Op::Release { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = usize::from(pick) % live.len();
                    store.release_block_ref(live[i].0);
                    live[i].2 -= 1;
                    if live[i].2 == 0 {
                        live.remove(i);
                    }
                }
            }
        }
        // Live-byte accounting must match what we still hold.
        let held: u64 = live.iter().map(|&(_, b, _)| b).sum();
        prop_assert_eq!(store.live_bytes(), held);
    }
}
