//! Property test for the slot store's central safety invariant: no two
//! live slots ever overlap in device space. (A violation of this is
//! exactly the aliasing bug the pipeline's checksums once caught — see
//! `SlotStore::release_block_ref`.) Runs on the in-tree harness.

use edc_core::SlotStore;
use edc_datagen::proptest::{cases, vec_of};
use edc_datagen::Rng64;

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a run of (bytes, blocks).
    Alloc { size_class: u8, blocks: u8 },
    /// Drop one block reference from a live run.
    Release { pick: u8 },
}

fn random_op(rng: &mut Rng64) -> Op {
    if rng.chance(0.5) {
        Op::Alloc { size_class: rng.below(6) as u8, blocks: 1 + rng.below(8) as u8 }
    } else {
        Op::Release { pick: rng.next_u64() as u8 }
    }
}

#[test]
fn live_slots_never_overlap() {
    cases(64).run("live_slots_never_overlap", |rng| {
        let ops = vec_of(rng, 1, 300, random_op);
        let mut store = SlotStore::new(64 << 20);
        // Live runs we still hold references to: (offset, bytes, refs_left).
        let mut live: Vec<(u64, u64, u32)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc { size_class, blocks } => {
                    let bytes = 1024u64 << size_class; // 1 KiB .. 32 KiB
                    let blocks = u32::from(blocks);
                    let off = store.alloc_run(bytes, blocks);
                    // Invariant: the new slot must not overlap any live slot.
                    for &(o, b, _) in &live {
                        assert!(
                            off + bytes <= o || o + b <= off,
                            "slot [{off}, {}) overlaps live [{o}, {})",
                            off + bytes,
                            o + b
                        );
                    }
                    live.push((off, bytes, blocks));
                }
                Op::Release { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = usize::from(pick) % live.len();
                    store.release_block_ref(live[i].0);
                    live[i].2 -= 1;
                    if live[i].2 == 0 {
                        live.remove(i);
                    }
                }
            }
        }
        // Live-byte accounting must match what we still hold.
        let held: u64 = live.iter().map(|&(_, b, _)| b).sum();
        assert_eq!(store.live_bytes(), held);
    });
}
