//! Property test: the dedup front-end is observationally invisible.
//!
//! Two [`ShardedPipeline`]s replay the same randomized schedule of
//! writes (with a heavy, recency-biased duplicate fraction), reads,
//! overwrite churn, flushes, idle recompression passes and
//! power-cut/recover cycles; one runs with the content-defined dedup
//! front-end enabled, the other with it disabled. Every read — and a
//! final whole-space sweep — must return bit-identical bytes: sharing
//! physical runs between logical writers may change the layout and the
//! flash traffic, never the logical contents.
//!
//! Run at 1 shard and at 8 shards per the tentpole's sharded-safety
//! requirement. After every recovery and at the end, the dedup arm's
//! refcount ledger must pass its two-way mapping cross-check
//! ([`ShardedPipeline::verify_dedup`]). Cut points flush both arms
//! first (the deterministic cut pattern shared with `proptest_heat`);
//! cuts *inside* dedup-hit writes and shared-run relocation are swept
//! exhaustively by the `bench-dedup` power-cut campaign.

use edc_compress::CodecId;
use edc_core::dedup::DedupConfig;
use edc_core::pipeline::PipelineConfig;
use edc_core::shard::{ShardConfig, ShardedPipeline};
use edc_core::HeatConfig;
use edc_datagen::proptest::cases;
use edc_datagen::rng::Rng64;

const BB: u64 = 4096;
/// Logical blocks the schedules address.
const SPACE_BLOCKS: u64 = 64;
/// Heat half-life; idle gaps jump several of these so cold shared runs
/// become relocation candidates for the recompression pass.
const HALF_LIFE_NS: u64 = 1_000_000_000;

/// A fresh 4 KiB block: compressible (small alphabet) or incompressible
/// (arbitrary bytes), so shared runs land on both sides of the
/// keep-raw-if-not-smaller decision.
fn fresh_block(rng: &mut Rng64) -> Vec<u8> {
    let mut b = vec![0u8; BB as usize];
    if rng.chance(0.7) {
        for byte in &mut b {
            *byte = b'a' + rng.below(6) as u8;
        }
    } else {
        rng.fill_bytes(&mut b);
    }
    b
}

/// A block payload that is, with probability ~0.5, a byte-exact copy of
/// an earlier payload from `pool` (recency-biased) — the repetition that
/// makes the dedup arm actually share runs.
fn pooled_block(rng: &mut Rng64, pool: &mut Vec<Vec<u8>>) -> Vec<u8> {
    if !pool.is_empty() && rng.chance(0.5) {
        let n = pool.len();
        let back = rng.below(n.min(8) as u64) as usize;
        return pool[n - 1 - back].clone();
    }
    let b = fresh_block(rng);
    pool.push(b.clone());
    b
}

#[derive(Debug)]
enum Op {
    /// Write `data` at `block` on both arms.
    Write { block: u64, data: Vec<u8> },
    /// Read `blocks` blocks at `block` and compare the arms' bytes.
    Read { block: u64, blocks: u64 },
    /// Overwrite churn: hammer one narrow range several times — the
    /// refcount-release pressure that frees shared runs back to unique
    /// (and unique runs back to the allocator).
    Churn { block: u64, versions: Vec<Vec<u8>> },
    /// Flush both arms.
    Flush,
    /// Jump the clock several half-lives, then run a budget-bounded
    /// recompression pass on both arms — in the dedup arm this is where
    /// cold *shared* runs relocate and re-point their referrers.
    IdleRecompress { gap_half_lives: u64, budget: usize },
    /// Flush both arms, then power-cut/recover both (the dedup arm's
    /// refcount ledger is rebuilt from the journal; contents and ledger
    /// consistency must survive).
    CutAndRecover,
}

fn gen_schedule(rng: &mut Rng64, pool: &mut Vec<Vec<u8>>) -> Vec<Op> {
    let n = rng.range_usize(16, 48);
    (0..n)
        .map(|_| match rng.below(10) {
            0..=3 => {
                let blocks = rng.range_u64(1, 5);
                let block = rng.below(SPACE_BLOCKS - blocks + 1);
                let data: Vec<u8> =
                    (0..blocks).flat_map(|_| pooled_block(rng, pool)).collect();
                Op::Write { block, data }
            }
            4 | 5 => {
                let blocks = rng.range_u64(1, 9);
                Op::Read { block: rng.below(SPACE_BLOCKS - blocks + 1), blocks }
            }
            6 => {
                let block = rng.below(SPACE_BLOCKS - 1);
                let versions =
                    (0..rng.range_usize(2, 5)).map(|_| pooled_block(rng, pool)).collect();
                Op::Churn { block, versions }
            }
            7 => Op::Flush,
            8 => Op::IdleRecompress {
                gap_half_lives: rng.range_u64(1, 6),
                budget: rng.range_usize(1, 12),
            },
            _ => Op::CutAndRecover,
        })
        .collect()
}

fn config(extent_blocks: u64, dedup: bool) -> PipelineConfig {
    PipelineConfig {
        dedup: DedupConfig { enabled: dedup, ..DedupConfig::default() },
        heat: HeatConfig {
            enabled: true,
            extent_blocks,
            half_life_ns: HALF_LIFE_NS,
            ..HeatConfig::default()
        },
        ..PipelineConfig::default()
    }
}

fn run_property(shards: usize) {
    let mut total_hits = 0u64;
    cases(16).run("dedup never changes read bytes", |rng| {
        let extent_blocks = rng.range_u64(1, 9);
        let mk = |dedup: bool| {
            ShardedPipeline::new(
                shards as u64 * 4 * 1024 * 1024,
                ShardConfig { shards, extent_blocks, pipeline: config(extent_blocks, dedup) },
            )
        };
        let deduped = mk(true);
        let control = mk(false);
        let mut pool: Vec<Vec<u8>> = Vec::new();
        let mut now = 0u64;
        for op in gen_schedule(rng, &mut pool) {
            now += rng.range_u64(10_000, 2_000_000);
            match op {
                Op::Write { block, data } => {
                    deduped.write(now, block * BB, &data).expect("deduped write");
                    control.write(now, block * BB, &data).expect("control write");
                }
                Op::Read { block, blocks } => {
                    let a = deduped.read(now, block * BB, blocks * BB).expect("deduped read");
                    let b = control.read(now, block * BB, blocks * BB).expect("control read");
                    assert_eq!(
                        a, b,
                        "read of blocks [{block}, {}) diverged with {shards} shard(s), \
                         extent {extent_blocks}",
                        block + blocks
                    );
                }
                Op::Churn { block, versions } => {
                    for data in &versions {
                        now += rng.range_u64(10_000, 500_000);
                        deduped.write(now, block * BB, data).expect("churn write");
                        control.write(now, block * BB, data).expect("churn write");
                    }
                }
                Op::Flush => {
                    deduped.flush_all(now).expect("deduped flush");
                    control.flush_all(now).expect("control flush");
                }
                Op::IdleRecompress { gap_half_lives, budget } => {
                    deduped.flush_all(now).expect("pre-pass flush");
                    control.flush_all(now).expect("pre-pass flush");
                    now += gap_half_lives * HALF_LIFE_NS;
                    deduped.recompress(now, CodecId::Deflate, budget).expect("deduped pass");
                    control.recompress(now, CodecId::Deflate, budget).expect("control pass");
                }
                Op::CutAndRecover => {
                    deduped.flush_all(now).expect("deduped flush");
                    control.flush_all(now).expect("control flush");
                    let r = deduped.recover().expect("deduped recover");
                    control.recover().expect("control recover");
                    assert_eq!(r.payload_mismatches, 0, "recovery replayed corrupt payloads");
                    deduped.verify_dedup().expect("ledger consistent after recovery");
                }
            }
        }
        // Final sweep: the entire address space must agree byte for
        // byte, and the dedup arm must audit clean both ways.
        now += 1;
        deduped.flush_all(now).expect("deduped flush");
        control.flush_all(now).expect("control flush");
        let a = deduped.read(now, 0, SPACE_BLOCKS * BB).expect("deduped sweep");
        let b = control.read(now, 0, SPACE_BLOCKS * BB).expect("control sweep");
        assert_eq!(a, b, "final sweep diverged with {shards} shard(s), extent {extent_blocks}");
        let audit = deduped.verify().expect("audit");
        assert_eq!(audit.unrecoverable, 0, "deduped store failed its integrity audit");
        deduped.verify_dedup().expect("final ledger cross-check");
        total_hits += deduped.stats().dedup_hits;
    });
    // The schedules repeat themselves on purpose; the front-end must
    // actually have shared something or the property ran vacuously.
    assert!(total_hits > 0, "no schedule produced a single dedup hit");
}

#[test]
fn dedup_invisible_at_one_shard() {
    run_property(1);
}

#[test]
fn dedup_invisible_at_eight_shards() {
    run_property(8);
}
